"""Table 6: the burst gap model (r + m·Δg) vs measured runtimes.

Paper shape: the burst model (every message feels the added gap) tracks
the heavily communicating applications and, as anticipated,
*over-predicts* overall since not every message is sent inside a burst.
"""

from benchmarks.conftest import BENCH_SCALE, LARGE_NODES, run_once
from repro.harness.experiments import table6_gap_model

GAPS = (5.8, 15.0, 55.0, 105.0)
APPS = ("Radix", "EM3D(write)", "Sample", "NOW-sort", "Connect")


def test_table6(benchmark):
    table = run_once(benchmark, lambda: table6_gap_model(
        n_nodes=LARGE_NODES, scale=BENCH_SCALE, names=APPS, gaps=GAPS))
    print()
    print(table.render())

    # Heavily communicating apps: the model tracks within ~40% at our
    # scale (the paper's Table 6 is within ~10-20% at full scale).
    for app in ("Radix", "EM3D(write)", "Sample"):
        errors = table.prediction_error(app)
        assert all(abs(e) < 0.4 for e in errors), (app, errors)

    # The burst model never grossly under-predicts: at the top gap
    # point every prediction stays within ~40% below the measurement.
    # (The paper's Table 6 predictions mostly sit at or above measured;
    # our Radix falls short of that because its serialized histogram
    # phase also pays the gap along the ring — the same serial term the
    # overhead model misses in Table 5.)
    high_rows = [r for r in table.rows() if r["g (us)"] == GAPS[-1]]
    for row in high_rows:
        assert row["predicted_us"] >= 0.6 * row["measured_us"], row
