"""Figure 5: sensitivity to overhead on 16 and 32 nodes.

Paper shape: the four most frequently communicating applications
(Radix, EM3D write/read, Sample) show the strongest, essentially linear
slowdown — up to tens of times at o ≈ 103 µs on 32 nodes; lightly
communicating apps (NOW-sort, Radb, Connect) only slow by small
factors.  Radix is *more* sensitive on 32 nodes than on 16 (the
serialization effect of its histogram phase); the other apps are about
equally sensitive at both sizes.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, LARGE_NODES, SMALL_NODES, \
    run_once
from repro.harness.experiments import figure5_overhead

OVERHEADS = (2.9, 12.9, 52.9, 102.9)


@pytest.fixture(scope="module")
def figures():
    return {
        SMALL_NODES: figure5_overhead(n_nodes=SMALL_NODES,
                                      scale=BENCH_SCALE,
                                      overheads=OVERHEADS),
        LARGE_NODES: figure5_overhead(n_nodes=LARGE_NODES,
                                      scale=BENCH_SCALE,
                                      overheads=OVERHEADS),
    }


def test_figure5(benchmark, figures):
    figs = run_once(benchmark, lambda: figures)
    fig16, fig32 = figs[SMALL_NODES], figs[LARGE_NODES]
    print()
    print(fig32.render())

    max32 = {name: fig32.max_slowdown(name) for name in fig32.sweeps}

    # Heavy communicators slow down by large factors at o = 103.
    for chatty in ("Radix", "EM3D(write)", "EM3D(read)", "Sample"):
        assert max32[chatty] > 10.0, f"{chatty}: {max32[chatty]}"
    # Light communicators shrug (NOW-sort ~1.25x in the paper; the
    # paper notes even lightly communicating apps suffer 3-5x).  Radb's
    # histogram serialization weighs more at reduced key counts, so its
    # bound is looser, but it must stay far below per-key Radix.
    assert max32["NOW-sort"] < 2.5
    assert max32["Radb"] < 10.0
    assert max32["Radix"] > 3.0 * max32["Radb"]
    assert max32["Connect"] < 8.0
    # The frequent communicators are the most sensitive overall.
    chattiest = max(max32, key=max32.get)
    assert chattiest in ("Radix", "EM3D(write)", "EM3D(read)", "Sample")

    # Linearity: for Radix, successive slopes stay within ~35%.
    series = fig32.sweeps["Radix"].series()
    slopes = [(y2 - y1) / (x2 - x1)
              for (x1, y1), (x2, y2) in zip(series, series[1:])]
    assert max(slopes) < 1.5 * min(slopes)

    # Serialization effect: the paper quantifies it as the 2·m·Δo
    # model under-predicting Radix, increasingly so as P grows (the
    # histogram phase's serial length is ∝ radix × P, invisible to the
    # busiest-processor model).  At our reduced key counts the absolute
    # slowdown ratio does not flip (the distribution term shrinks with
    # keys/proc faster than the paper's), but the model residual must
    # grow with P.
    from repro.models import OverheadModel

    def model_residual(figure):
        sweep = figure.sweeps["Radix"]
        base = sweep.baseline.result
        model = OverheadModel(
            base_runtime_us=base.runtime_us,
            max_messages_per_proc=base.stats.max_messages_per_node)
        top = sweep.points[-1]
        delta_o = top.value - sweep.points[0].value
        return top.runtime_us / model.predict_runtime(delta_o)

    residual16 = model_residual(fig16)
    residual32 = model_residual(fig32)
    assert residual32 > 1.1, residual32          # under-predicted at 32n
    assert residual32 > residual16, (residual16, residual32)

    # Everything else is roughly equally sensitive at both sizes
    # (within ~2x either way, per Figure 5a vs 5b).
    for name in ("Sample", "EM3D(write)", "NOW-sort"):
        ratio = figs[LARGE_NODES].max_slowdown(name) \
            / figs[SMALL_NODES].max_slowdown(name)
        assert 0.5 < ratio < 2.0, (name, ratio)
