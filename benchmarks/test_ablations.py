"""Ablations of the apparatus's design choices (beyond the paper).

The paper's Table 2 exposes one implementation artifact — the fixed
flow-control window couples L to the effective gap.  These ablations
quantify the two design choices behind it:

1. **window size** — the L=105 µs effective gap tracks RTT/window;
2. **window scope** — GAM's per-destination windows are why the paper's
   *applications* tolerate latency even though the pairwise
   microbenchmark is throttled: share one global window instead and a
   write-based all-to-all program becomes latency-bound too.

3. **burstiness** — the Section 5.2 model dichotomy, demonstrated with
   two synthetic programs: one sending at regular intervals wider than
   the dialed gap (the uniform model predicts no slowdown), one sending
   maximal-rate bursts (the burst model's m·Δg).
"""

import pytest

from benchmarks.conftest import run_once
from repro import Cluster, TuningKnobs
from repro.apps import RadixSort
from repro.apps.base import Application
from repro.calibrate.calibration import calibrate_machine


def test_window_size_sets_latency_gap_coupling(benchmark):
    def sweep():
        effective = {}
        for window in (4, 8, 16):
            rows = calibrate_machine("L", (105.0,), window=window)
            effective[window] = rows[0].measured.gap
        return effective

    effective = run_once(benchmark, sweep)
    print()
    for window, gap in effective.items():
        expected = 2 * 105.5 / window
        print(f"window={window:3d}: effective g = {gap:6.2f} us "
              f"(RTT/window = {expected:.2f})")
        assert gap == pytest.approx(expected, rel=0.2)
    # Bigger windows fill the pipe: effective gap shrinks.
    assert effective[16] < effective[8] < effective[4]


class _AllToAllWriter(Application):
    """Maximal-rate pipelined writes spread round-robin over all peers
    — the communication pattern of the sorts' distribution phases."""

    name = "AllToAllWriter"

    def __init__(self, messages_per_rank: int = 256):
        self.messages_per_rank = messages_per_rank

    def register_handlers(self, table) -> None:
        if "ablation_sink" not in table:
            table.register("ablation_sink", lambda am, pkt: None)

    def run_rank(self, proc):
        peers = [r for r in range(proc.n_ranks) if r != proc.rank]
        for i in range(self.messages_per_rank):
            yield from proc.am.send_request(
                peers[i % len(peers)], "ablation_sink", i)
        yield from proc.am.drain()


def test_window_scope_explains_latency_tolerance(benchmark):
    """With one *global* window, even write-based all-to-all traffic is
    throttled to ~RTT/window at large L; per-destination windows (GAM,
    the paper) keep the aggregate pipe full, which is why the paper's
    write-based applications tolerate latency."""
    app = _AllToAllWriter(messages_per_rank=256)
    latency = TuningKnobs.added_latency(100.0)

    def measure():
        out = {}
        for scope in ("per-destination", "global"):
            base = Cluster(n_nodes=8, seed=3, window_scope=scope)
            dialed = base.with_knobs(latency)
            out[scope] = (dialed.run(app).runtime_us
                          / base.run(app).runtime_us)
        return out

    slowdown = run_once(benchmark, measure)
    print()
    print(f"  per-destination windows: {slowdown['per-destination']:.2f}x"
          f" at +100us L")
    print(f"  one global window:       {slowdown['global']:.2f}x")
    assert slowdown["per-destination"] < 1.5
    assert slowdown["global"] > 2.0 * slowdown["per-destination"]


class _Sender(Application):
    """Synthetic traffic generator: n messages to a ring neighbour,
    either paced at a fixed interval or in one maximal-rate burst."""

    def __init__(self, n_messages: int, interval_us: float):
        self.n_messages = n_messages
        self.interval_us = interval_us
        self.name = ("Paced" if interval_us else "Burst") + "Sender"

    def register_handlers(self, table) -> None:
        if "ablation_sink" not in table:
            table.register("ablation_sink", lambda am, pkt: None)

    def run_rank(self, proc):
        peer = (proc.rank + 1) % proc.n_ranks
        for i in range(self.n_messages):
            if self.interval_us:
                yield from proc.compute(self.interval_us)
            yield from proc.am.send_request(peer, "ablation_sink", i)
        yield from proc.am.drain()


def test_burst_vs_uniform_traffic_under_gap(benchmark):
    """The two gap models bracket real behaviour (Section 5.2): paced
    traffic with interval > g_total ignores the dial entirely; bursty
    traffic pays ~m·Δg."""
    delta_g = 100.0
    n_messages = 64

    def measure():
        out = {}
        # Note: every request is matched by an ack through the same
        # NIC, so staying under the dialed rate needs an interval above
        # 2 x g_total (two packets traverse the transmit context per
        # application message).
        for label, interval in (("paced", 250.0), ("burst", 0.0)):
            app = _Sender(n_messages, interval)
            base = Cluster(n_nodes=4, seed=1)
            dialed = base.with_knobs(TuningKnobs.added_gap(delta_g))
            out[label] = (dialed.run(app).runtime_us
                          / base.run(app).runtime_us)
        return out

    slowdown = run_once(benchmark, measure)
    print()
    print(f"  paced (I=250us > 2g): {slowdown['paced']:.2f}x   "
          f"burst: {slowdown['burst']:.2f}x")
    # Uniform model: no slowdown while the interval exceeds the gap.
    assert slowdown["paced"] < 1.2
    # Burst model: every message feels the added gap.
    assert slowdown["burst"] > 3.0
