"""The overhead × gap interaction surface (extension).

For a CPU-bound short-message program, overhead and gap throttle the
*same* messages: once ``o`` exceeds ``g`` the processor is the
bottleneck and added gap mostly hides behind it, so the combined
slowdown falls short of the independent-axes sum (negative interaction
excess).  The surface must also be monotone in both dials.
"""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.harness.surface import overhead_gap_surface


def test_overhead_gap_surface(benchmark):
    surface = run_once(benchmark, lambda: overhead_gap_surface(
        app_name="Sample", n_nodes=16, values=(25.0, 100.0),
        scale=BENCH_SCALE))
    print()
    print(surface.render())

    assert surface.is_monotone()

    # Overhead is the stronger axis (the paper's headline): a pure-o
    # point beats the equal pure-g point.
    assert surface.at(100.0, 0.0) > surface.at(0.0, 100.0)

    # Redundancy: at the far corner the two dials overlap — the
    # measured slowdown is below the additive composition.
    excess = surface.interaction_excess(100.0, 100.0)
    independent = (surface.at(100.0, 0.0) + surface.at(0.0, 100.0)
                   - 1.0)
    print(f"corner measured {surface.at(100.0, 100.0):.1f}x vs "
          f"additive {independent:.1f}x (excess {excess:+.1f})")
    assert excess < 0.0
