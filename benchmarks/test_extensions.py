"""Extension studies beyond the paper's plotted figures.

1. Scaling: for a program with a serial phase (Radix), speedup erodes
   as overhead grows (Section 5.1's parallel-efficiency remark).
2. Investment: halving (o, g) beats doubling the CPUs for a
   communication-intensive app (Section 5.5's closing trade-off).
3. Occupancy: the Flash study's parameter hits at least as hard as the
   same host overhead, because it both lengthens round trips and rate-
   limits each interface (Section 6's comparison).
"""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.harness.extensions import (investment_study, occupancy_study,
                                      scaling_study)


def test_scaling_serial_residual_grows_with_p(benchmark):
    study = run_once(benchmark, lambda: scaling_study(
        app_name="Radix", node_counts=(16, 32), delta_o=100.0,
        scale=BENCH_SCALE))
    print()
    print(study.render())
    # The serialization effect, quantified between the paper's two
    # cluster sizes: the busiest-processor model's residual grows with
    # P (the histogram chain is ∝ P), eroding parallel efficiency under
    # overhead exactly as Section 5.1 analyses.
    residual16 = study.serial_residual(16)
    residual32 = study.serial_residual(32)
    assert residual32 > 1.1, residual32
    assert residual32 > residual16, (residual16, residual32)
    # Both configurations still slow by an order of magnitude.
    for n_nodes in (16, 32):
        assert study.slowdown(n_nodes) > 10.0


def test_investment_communication_beats_cpu(benchmark):
    study = run_once(benchmark, lambda: investment_study(
        app_name="Sample", n_nodes=16, scale=BENCH_SCALE))
    print()
    print(study.render())
    assert study.speedup("1/2 o and g") > study.speedup("2x cpu")
    assert study.speedup("2x cpu") > 1.0


def test_occupancy_at_least_as_harmful_as_overhead(benchmark):
    study = run_once(benchmark, lambda: occupancy_study(
        app_name="EM3D(read)", n_nodes=16,
        values=(0.0, 10.0, 25.0, 50.0), scale=BENCH_SCALE))
    print()
    print(study.render())
    occ = study.slowdowns("occupancy")
    ovh = study.slowdowns("overhead")
    # Both monotone...
    assert occ == sorted(occ) and ovh == sorted(ovh)
    # ...and occupancy is no gentler than overhead at the top value
    # (it adds latency AND serialises the interfaces, while sharing the
    # per-message magnitude).
    assert occ[-1] > 0.75 * ovh[-1]
    assert occ[-1] > 3.0
