"""Simulator engine throughput (not a paper artifact).

Tracks the discrete-event kernel's performance so regressions in the
simulation substrate are caught: a full LogGP sweep is ~10^7 events, so
event throughput directly bounds experiment wall-clock.

Reference numbers live in the committed ``BENCH_6.json`` at the repo
root, regenerated with ``python scripts/run_benchmarks.py`` (one forked
interpreter per measurement, tiers interleaved, best of 5x7): it records
events/second for both storms below across the ``naive`` (pre-§7
kernel shape), ``heap`` (inlined reference loop), and ``calendar``
(raw-speed tier) configurations, plus the speedup matrix.  Treat a
drop below ~1.3x of the committed naive numbers as a regression; the
CI ``bench-smoke`` job enforces the calendar tier's floor on the event
storm and bit-identical event counts on both storms.
"""

from repro.sim import Simulator


def run_event_storm(n_processes: int = 200, hops: int = 50) -> int:
    """A ping chain workload exercising timeouts, events and processes."""
    sim = Simulator()

    def bouncer(index):
        for _hop in range(hops):
            yield sim.timeout(1.0 + (index % 7) * 0.1)

    for index in range(n_processes):
        sim.process(bouncer(index))
    sim.run()
    return sim.events_processed


def run_am_storm() -> int:
    """An AM-layer workload: 4 endpoints exchanging request storms."""
    from repro.am.layer import AmLayer, HandlerTable
    from repro.am.tuning import TuningKnobs
    from repro.network.loggp import LogGPParams
    from repro.network.wire import Wire

    sim = Simulator()
    params = LogGPParams.berkeley_now()
    wire = Wire(sim, params.latency)
    table = HandlerTable()
    table.register("storm", lambda am, pkt: None)
    ams = []
    for node in range(4):
        am = AmLayer(sim, node, params, TuningKnobs(), wire, table)
        am.host = None
        ams.append(am)

    def sender(am, peer):
        for i in range(250):
            yield from am.send_request(peer, "storm", i)
        yield from am.drain()

    procs = [sim.process(sender(am, (node + 1) % 4))
             for node, am in enumerate(ams)]
    sim.run(stop_event=sim.all_of(procs))
    return sim.events_processed


def test_engine_event_throughput(benchmark):
    events = benchmark(run_event_storm)
    assert events >= 200 * 50


def test_am_layer_throughput(benchmark):
    events = benchmark(run_am_storm)
    # 1000 requests + 1000 acks, several events each.
    assert events > 4000


def test_storm_counts_identical_across_engines():
    """Both storms process the exact same number of events on every
    scheduling tier (the bit-identity contract, at benchmark scale)."""
    from repro.sim import set_default_engine
    counts = {}
    for engine in ("heap", "calendar"):
        previous = set_default_engine(engine)
        try:
            counts[engine] = (run_event_storm(), run_am_storm())
        finally:
            set_default_engine(previous)
    assert counts["calendar"] == counts["heap"]
