"""Table 4: the communication summary of all ten applications.

Shape assertions from the paper's table: communication frequency spans
orders of magnitude with the sorts/EM3D at the top and NOW-sort at the
bottom; EM3D(read)/P-Ray/Connect are read-dominated while the sorts are
pure writes; P-Ray/Barnes/NOW-sort/Radb use bulk transfers while
Radix/Sample/EM3D send only short messages.
"""

from benchmarks.conftest import BENCH_SCALE, LARGE_NODES, run_once
from repro.harness.experiments import table4_comm_summary


def test_table4(benchmark):
    table = run_once(benchmark, lambda: table4_comm_summary(
        n_nodes=LARGE_NODES, scale=BENCH_SCALE))
    print()
    print(table.render())

    summaries = {name: result.summary()
                 for name, result in table.results.items()}
    assert len(summaries) == 10

    freq = {name: s.messages_per_proc_per_ms
            for name, s in summaries.items()}
    # Frequency ordering: frequent communicators clearly above the
    # infrequent ones; NOW-sort is the least communication-intensive.
    for chatty in ("Radix", "EM3D(write)", "EM3D(read)", "Sample"):
        assert freq[chatty] > 5 * freq["NOW-sort"]
    assert freq["NOW-sort"] == min(freq.values())
    assert max(freq, key=freq.get) in ("Radix", "EM3D(write)", "Sample")

    reads = {name: s.percent_reads for name, s in summaries.items()}
    for read_app in ("EM3D(read)", "P-Ray", "Connect"):
        assert reads[read_app] > 40.0
    for write_app in ("Radix", "EM3D(write)", "Sample", "Murphi",
                      "NOW-sort"):
        assert reads[write_app] < 1.0

    bulk = {name: s.percent_bulk for name, s in summaries.items()}
    for bulk_app in ("P-Ray", "NOW-sort", "Radb", "Barnes"):
        assert bulk[bulk_app] > 10.0
    for short_app in ("Radix", "EM3D(write)", "EM3D(read)", "Sample",
                      "Connect"):
        assert bulk[short_app] < 1.0

    # Barnes and EM3D(write) barrier relatively frequently; NOW-sort
    # barriers only between its two phases.
    barrier = {name: s.barrier_interval_ms
               for name, s in summaries.items()}
    assert barrier["EM3D(write)"] < barrier["NOW-sort"]

    # Bulk bandwidth: the bulk-using apps move real bulk data; the
    # short-message apps essentially none (Table 4's KB/s columns).
    bulk_bw = {name: s.bulk_kb_per_s for name, s in summaries.items()}
    for bulk_app in ("NOW-sort", "P-Ray", "Barnes"):
        assert bulk_bw[bulk_app] > 50.0, (bulk_app, bulk_bw[bulk_app])
    for short_app in ("EM3D(write)", "EM3D(read)", "Sample"):
        assert bulk_bw[short_app] < 10.0, (short_app,
                                           bulk_bw[short_app])
