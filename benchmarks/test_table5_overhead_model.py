"""Table 5: the 2·m·Δo overhead model vs measured runtimes.

Paper shape: the model tracks the frequently communicating,
well-parallelised apps closely (Sample, EM3D(write)); it consistently
*under-predicts* apps with serial phases or retry amplification (Radix,
P-Ray, Murphi) — the serialization effect.
"""

from benchmarks.conftest import BENCH_SCALE, LARGE_NODES, run_once
from repro.harness.experiments import table5_overhead_model

OVERHEADS = (2.9, 12.9, 52.9, 102.9)
APPS = ("Radix", "EM3D(write)", "Sample", "NOW-sort", "Radb")


def test_table5(benchmark):
    table = run_once(benchmark, lambda: table5_overhead_model(
        n_nodes=LARGE_NODES, scale=BENCH_SCALE, names=APPS,
        overheads=OVERHEADS))
    print()
    print(table.render())

    # The model is exact at the baseline point for every app.
    for app in APPS:
        first = next(r for r in table.rows() if r["app"] == app)
        assert first["measured_us"] == first["predicted_us"]

    # Sample and EM3D(write): the paper's showcase fits — prediction
    # within ~35% of measurement across the sweep at our scale.
    for app in ("Sample", "EM3D(write)"):
        errors = table.prediction_error(app)
        assert all(abs(e) < 0.35 for e in errors), (app, errors)

    # Radix: the serialization effect — the model under-predicts the
    # high-overhead points (measured exceeds predicted).
    radix_rows = [r for r in table.rows()
                  if r["app"] == "Radix" and r["o (us)"] == OVERHEADS[-1]]
    assert radix_rows[0]["measured_us"] > radix_rows[0]["predicted_us"]
