"""Figure 3: the LogP signature with g dialed to 14 µs.

The paper's annotated plot shows: send overhead ~1.8 µs at short
bursts, a steady-state interval ~12.8 µs (the dialed gap, read slightly
low), the Δ=10 curve levelling at o_send + o_recv + Δ ≈ 15.8 µs, and a
21 µs round trip.
"""

from benchmarks.conftest import run_once
from repro.calibrate import round_trip_time
from repro.am.tuning import TuningKnobs
from repro.harness.experiments import figure3_signature


def test_figure3(benchmark):
    signature = run_once(benchmark, lambda: figure3_signature(14.0))
    print()
    print(signature.render())

    # Short bursts expose the send overhead (paper: Osend = 1.8 us).
    assert abs(signature.send_overhead() - 1.8) < 0.2

    # Long Δ=0 bursts approach the dialed gap (paper reads 12.8 for a
    # desired 14 — finite bursts under-read).
    steady = signature.steady_state(0.0)
    assert 11.0 < steady <= 14.2

    # With Δ=10 the processor is the bottleneck:
    # o_send + o_recv + Δ = 1.8 + 4.0 + 10 = 15.8 us.
    busy = signature.steady_state(10.0)
    assert abs(busy - 15.8) < 0.8

    # Curves rise monotonically from overhead toward steady state.
    series = signature.intervals[0.0]
    bursts = sorted(series)
    values = [series[m] for m in bursts]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    # Round trip ~21 us (the figure's annotation).
    rtt = round_trip_time(knobs=TuningKnobs.added_gap(14.0 - 5.8))
    assert abs(rtt - 21.6) < 1.0
