"""Table 3: the ten applications and their 16/32-node base runtimes.

The paper runs each fixed input on 16 and on 32 nodes; most programs
parallelise well (32-node runtime clearly below 16-node).  Absolute
seconds are testbed-specific; asserted here: every app completes with a
validated result, and the well-parallelised apps speed up when doubling
the nodes.
"""

from benchmarks.conftest import BENCH_SCALE, LARGE_NODES, SMALL_NODES, \
    run_once
from repro.harness.experiments import table3_baseline_runtimes

#: Apps whose dominant phases are data-parallel; the paper's Table 3
#: shows all of these running ~1.4-2x faster on 32 nodes.  Radix is
#: excluded: at the benchmark's reduced input its serialized histogram
#: phase (proportional to radix x P, not keys) caps the speedup — the
#: very effect Section 5.1 analyses.
WELL_PARALLELISED = ["EM3D(write)", "EM3D(read)", "Sample", "NOW-sort"]


def test_table3(benchmark):
    table = run_once(benchmark, lambda: table3_baseline_runtimes(
        node_counts=(SMALL_NODES, LARGE_NODES), scale=BENCH_SCALE))
    print()
    print(table.render())

    assert len(table.runtimes) == 10
    for app_name, by_nodes in table.runtimes.items():
        assert by_nodes[SMALL_NODES] > 0
        assert by_nodes[LARGE_NODES] > 0

    for app_name in WELL_PARALLELISED:
        by_nodes = table.runtimes[app_name]
        speedup = by_nodes[SMALL_NODES] / by_nodes[LARGE_NODES]
        assert speedup > 1.15, (
            f"{app_name} should speed up from 16 to 32 nodes "
            f"(got {speedup:.2f}x)")

    # Relative magnitudes that hold in Table 3: the read-based EM3D is
    # the slower variant, and the bulk radix crushes per-key radix.
    runtimes_32 = {name: by_nodes[LARGE_NODES]
                   for name, by_nodes in table.runtimes.items()}
    assert runtimes_32["EM3D(read)"] > runtimes_32["EM3D(write)"]
    assert runtimes_32["Radb"] < runtimes_32["Radix"]
