"""simsan overhead (not a paper artifact).

Tracks the host-side cost of running under the sanitizer so the
observe-don't-perturb contract stays cheap enough to leave on during
development.  Reference point (same container, Radix at 256 keys/proc
on 8 nodes, best of 3): ~0.28 s plain vs ~0.41 s sanitized, an
overhead factor of **~1.5x** wall-clock — vector-clock piggybacking on
every host-level packet plus one shadow-memory check per GlobalArray
element access.  Simulated time is identical by construction (the
sanitizer schedules no events); treat an overhead factor above ~4x as
a regression in the monitor hot path.
"""

import time

from repro.apps import RadixSort
from repro.cluster.machine import Cluster

from .conftest import run_once

N_NODES = 8
KEYS_PER_PROC = 256
SEED = 11


def _run(sanitize):
    app = RadixSort(keys_per_proc=KEYS_PER_PROC)
    return Cluster(n_nodes=N_NODES, seed=SEED, sanitize=sanitize).run(app)


def _best_of(n, fn):
    best = None
    for _round in range(n):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_sanitizer_overhead(benchmark):
    plain = _run(sanitize=False)
    sanitized = run_once(benchmark, lambda: _run(sanitize=True))
    # Observe, never perturb: simulated results are bit-identical.
    assert sanitized.runtime_us == plain.runtime_us
    assert sanitized.events_processed == plain.events_processed
    report = sanitized.sanitizer
    assert report.clean
    assert report.accesses_checked > 0


def test_sanitizer_overhead_factor_stays_bounded():
    baseline = _best_of(3, lambda: _run(sanitize=False))
    sanitized = _best_of(3, lambda: _run(sanitize=True))
    factor = sanitized / baseline
    print(f"\nsimsan overhead factor: {factor:.2f}x "
          f"({baseline:.3f}s -> {sanitized:.3f}s)")
    assert factor < 4.0
