"""Table 2: desired vs observed LogGP parameters, one dial at a time.

Shape requirements taken from the paper's table: each dial hits its
target; ``o`` and ``L`` dials leave the others flat except for the two
documented couplings (large ``o`` makes the processor the gap
bottleneck; large ``L`` raises effective ``g`` through the fixed
flow-control window).
"""

from benchmarks.conftest import run_once
from repro.calibrate.calibration import render_calibration
from repro.harness.experiments import table2_calibration

DESIRED_O = (2.9, 12.9, 52.9, 102.9)
DESIRED_G = (5.8, 15.0, 55.0, 105.0)
DESIRED_L = (5.0, 15.0, 55.0, 105.0)


def test_table2(benchmark):
    table = run_once(benchmark, lambda: table2_calibration(
        desired_o=DESIRED_O, desired_g=DESIRED_G, desired_L=DESIRED_L))
    print()
    print(render_calibration(table.rows_))

    by_dial = {}
    for row in table.rows_:
        by_dial.setdefault(row.dialed, []).append(row)

    # o dial: measured o within 1% of desired (paper matches to 0.1 us);
    # L unaffected; g rises to ~2o once the CPU is the bottleneck.
    for row in by_dial["o"]:
        assert abs(row.measured.overhead - row.desired) \
            < 0.02 * row.desired
        assert abs(row.measured.latency - 5.0) < 2.0
    high_o = by_dial["o"][-1]
    assert abs(high_o.measured.gap - 2 * high_o.desired) \
        < 0.08 * 2 * high_o.desired

    # g dial: o and L unaffected; measured g tracks desired (slightly
    # low, as in the paper: 99 observed for 105 desired).
    for row in by_dial["g"]:
        assert 0.8 * row.desired <= row.measured.gap \
            <= 1.05 * row.desired
        assert abs(row.measured.overhead - 2.9) < 0.2
        assert abs(row.measured.latency - 5.0) < 1.0

    # L dial: o unaffected; L within 0.5 us; effective g rises at very
    # large L (paper: 27.7 at L=105 with window 8).
    for row in by_dial["L"]:
        assert abs(row.measured.latency - row.desired) < 0.6
        assert abs(row.measured.overhead - 2.9) < 0.2
    high_L = by_dial["L"][-1]
    assert high_L.measured.gap > 3 * 5.8
    assert abs(high_L.measured.gap - 2 * 105.5 / 8) < 5.0
