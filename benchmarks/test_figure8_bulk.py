"""Figure 8: sensitivity to bulk-transfer bandwidth.

Paper shape: the suite barely cares about bulk bandwidth.  No
application slows more than ~3x even at 1 MB/s; nothing reacts until
bandwidth drops to ~15 MB/s; and NOW-sort is *disk-limited* — flat
until the network is slower than one 5.5 MB/s disk.
"""

from benchmarks.conftest import BENCH_SCALE, LARGE_NODES, run_once
from repro.harness.experiments import figure8_bulk

BANDWIDTHS = (38.0, 15.0, 10.0, 5.5, 1.0)


def test_figure8(benchmark):
    figure = run_once(benchmark, lambda: figure8_bulk(
        n_nodes=LARGE_NODES, scale=BENCH_SCALE, bandwidths=BANDWIDTHS))
    print()
    print(figure.render())

    # Nothing slows by more than ~3x even at 1 MB/s (paper's headline).
    for name in figure.sweeps:
        peak = figure.max_slowdown(name)
        assert peak < 3.5, (name, peak)

    # Insensitive until ~15 MB/s: at that point every app is within
    # ~25% of its baseline.
    for name, sweep in figure.sweeps.items():
        at_15 = dict(sweep.series())[15.0]
        assert at_15 < 1.25, (name, at_15)

    # NOW-sort: flat while the network outruns one disk (5.5 MB/s),
    # visibly slower only at 1 MB/s.
    nowsort = dict(figure.sweeps["NOW-sort"].series())
    assert nowsort[5.5] < 1.3
    assert nowsort[1.0] > 1.5
    assert nowsort[1.0] == max(nowsort.values())

    # Short-message apps are essentially flat everywhere (the dial only
    # slows bulk fragments).
    for name in ("Radix", "Sample", "EM3D(write)", "EM3D(read)",
                 "Connect"):
        assert figure.max_slowdown(name) < 1.2, name
