"""Figure 4: communication-balance matrices for all ten applications.

Shape assertions per the paper's plates:
(a) Radix — a dark ring line off the diagonal (the pipelined cyclic
    shift of the histogram) over a balanced grey background;
(b/c) EM3D — traffic concentrated in a swath near the diagonal;
(d) Sample — unbalanced columns (different receivers get different
    loads);
(f) P-Ray — hot columns (hot objects);
(i) NOW-sort — a nearly solid, balanced all-to-all square.
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE, LARGE_NODES, run_once
from repro.harness.experiments import figure4_balance


def test_figure4(benchmark):
    figure = run_once(benchmark, lambda: figure4_balance(
        n_nodes=LARGE_NODES, scale=BENCH_SCALE))
    print()
    for name in ("Radix", "NOW-sort"):
        print(figure.results[name].render_balance())
        print()
    matrices = figure.matrices()
    n = LARGE_NODES

    assert len(matrices) == 10
    for name, matrix in matrices.items():
        assert matrix.shape == (n, n)
        assert np.all(np.diag(matrix) == 0), f"{name}: self-messages"

    # (a) Radix: the ring next-neighbour line (cyclic shift) is darker
    # than the all-to-all background — uniformly so, which is what makes
    # it visible as a line in the greyscale plot.  (At the paper's 16M
    # keys the contrast is stronger; the scaled input keeps the same
    # structure at lower contrast.)
    radix = matrices["Radix"]
    ring = np.array([radix[i, (i + 1) % n] for i in range(n)])
    off_ring = radix.copy()
    for i in range(n):
        off_ring[i, (i + 1) % n] = 0
        off_ring[i, i] = 0
    background = off_ring.sum() / (n * (n - 2))
    assert ring.mean() > 1.3 * background
    assert ring.min() > background

    # (b) EM3D(write): locality — the near-diagonal swath (ring
    # distance <= 2) is far denser than the rest of the matrix (which
    # carries only barrier/collective traffic).
    em3d = matrices["EM3D(write)"]
    near_cells = [(i, j) for i in range(n) for j in range(n)
                  if 0 < min((i - j) % n, (j - i) % n) <= 2]
    far_cells = [(i, j) for i in range(n) for j in range(n)
                 if min((i - j) % n, (j - i) % n) > 2]
    near_mean = np.mean([em3d[c] for c in near_cells])
    far_mean = np.mean([em3d[c] for c in far_cells])
    assert near_mean > 3.0 * far_mean

    # (d) Sample: receiver imbalance — column sums vary.
    sample_cols = matrices["Sample"].sum(axis=0)
    assert sample_cols.max() > 1.3 * sample_cols.min()

    # (f) P-Ray: hot columns.
    pray_cols = matrices["P-Ray"].sum(axis=0)
    assert pray_cols.max() > 1.3 * pray_cols.mean()

    # (i) NOW-sort: balanced all-to-all — every pair communicates, and
    # the per-pair message counts are roughly uniform (low dispersion;
    # at reduced input the counts are small, so some noise remains).
    nowsort = matrices["NOW-sort"]
    off_diag = nowsort[~np.eye(n, dtype=bool)]
    assert np.all(off_diag > 0)
    assert off_diag.std() / off_diag.mean() < 0.75
