"""Figure 7: sensitivity to latency.

Paper shape: most applications are surprisingly tolerant of latency,
and the sensitivity *ordering is different* from overhead/gap — it
follows read frequency, not message frequency.  EM3D(read), the
worst-case blocking reader, tops the chart (~9x at L=105); the
write-based apps largely ignore added latency apart from the small tail
effect of the fixed window raising effective gap.
"""

from benchmarks.conftest import BENCH_SCALE, LARGE_NODES, run_once
from repro.harness.experiments import figure7_latency

LATENCIES = (5.0, 15.0, 55.0, 105.0)


def test_figure7(benchmark):
    figure = run_once(benchmark, lambda: figure7_latency(
        n_nodes=LARGE_NODES, scale=BENCH_SCALE, latencies=LATENCIES))
    print()
    print(figure.render())

    peak = {name: figure.max_slowdown(name) for name in figure.sweeps}

    # EM3D(read) is the most latency-sensitive application (paper ~9x).
    assert peak["EM3D(read)"] == max(peak.values())
    assert peak["EM3D(read)"] > 4.0

    # Read-based apps feel latency; the write-based sorts barely do.
    assert peak["EM3D(read)"] > 2.0 * peak["EM3D(write)"]
    for write_app in ("Radix", "Sample", "NOW-sort", "Radb", "Murphi"):
        assert peak[write_app] < 3.0, (write_app, peak[write_app])

    # The ordering is NOT the message-frequency ordering: Radix (the
    # most frequent communicator) sits below the read-based apps.
    assert peak["Radix"] < peak["EM3D(read)"]
    assert peak["Radix"] < peak["Connect"]

    # Latency sensitivity is much weaker than overhead sensitivity:
    # nothing slows down more than ~12x even at L = 105 us.
    assert max(peak.values()) < 12.0
