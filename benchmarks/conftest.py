"""Shared configuration for the table/figure regeneration benchmarks.

Every benchmark regenerates one artifact of the paper's evaluation
section at a reduced input scale and asserts its qualitative shape
(who wins, roughly by what factor, where crossovers fall).  Absolute
numbers are not expected to match the 1997 testbed.

Environment knobs:

* ``REPRO_BENCH_SCALE`` -- input scale factor (default 0.25); raise it
  for higher-fidelity regeneration at more wall-clock cost.
"""

import os

import pytest

#: Input scale for benchmark runs (1.0 = the library's default inputs).
#: 0.5 is the smallest scale at which no application hits its minimum
#: input-size floor, keeping total inputs truly fixed across 16/32 nodes.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

#: The two cluster sizes of the paper.
SMALL_NODES = 16
LARGE_NODES = 32


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
