"""Table 1: baseline LogGP parameters of the machine presets.

Paper values: NOW (o=2.9, g=5.8, L=5.0, 38 MB/s), Intel Paragon
(o=1.8, g=7.6, L=6.5, 141 MB/s), Meiko CS-2 (o=1.7, g=13.6, L=7.5,
47 MB/s) — all measured here with the same microbenchmarks.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import table1_baseline_params

PAPER = {
    "berkeley-now": {"o": 2.9, "g": 5.8, "L": 5.0, "MB/s": 38},
    "intel-paragon": {"o": 1.8, "g": 7.6, "L": 6.5, "MB/s": 141},
    "meiko-cs2": {"o": 1.7, "g": 13.6, "L": 7.5, "MB/s": 47},
}


def test_table1(benchmark):
    table = run_once(benchmark, table1_baseline_params)
    print()
    print(table.render())
    rows = {row["Platform"]: row for row in table.rows()}
    assert set(rows) == set(PAPER)
    for platform, expected in PAPER.items():
        measured = rows[platform]
        assert abs(measured["o (us)"] - expected["o"]) < 0.3
        # Finite bursts under-read g slightly, as in the paper.
        assert abs(measured["g (us)"] - expected["g"]) \
            < 0.15 * expected["g"] + 0.3
        assert abs(measured["L (us)"] - expected["L"]) < 0.5
        assert abs(measured["MB/s (1/G)"] - expected["MB/s"]) \
            < 0.08 * expected["MB/s"] + 1
    # Cross-machine ordering, as in Table 1: the Paragon has the most
    # bulk bandwidth, the Meiko the largest gap, the NOW the lowest L.
    assert rows["intel-paragon"]["MB/s (1/G)"] \
        > rows["meiko-cs2"]["MB/s (1/G)"] \
        > rows["berkeley-now"]["MB/s (1/G)"]
    assert rows["meiko-cs2"]["g (us)"] > rows["intel-paragon"]["g (us)"]
