"""Figure 6: sensitivity to gap.

Paper shape: reactions vary from "unaffected by 100 µs of gap" to ~16x.
The four most frequent communicators (Radix, both EM3Ds, Sample) suffer
the largest slowdowns; everything else stays under ~4x even at
g = 105 µs, because gap is only felt on messages sent faster than the
gap — overhead, by contrast, is always paid.
"""

from benchmarks.conftest import BENCH_SCALE, LARGE_NODES, run_once
from repro.harness.experiments import figure6_gap

GAPS = (5.8, 15.0, 55.0, 105.0)


def test_figure6(benchmark):
    figure = run_once(benchmark, lambda: figure6_gap(
        n_nodes=LARGE_NODES, scale=BENCH_SCALE, gaps=GAPS))
    print()
    print(figure.render())

    peak = {name: figure.max_slowdown(name) for name in figure.sweeps}

    # Frequent communicators hurt badly.
    for chatty in ("Radix", "EM3D(write)", "Sample"):
        assert peak[chatty] > 5.0, (chatty, peak[chatty])
    # Infrequent communicators tolerate gap (paper: <= ~4x).
    for light in ("NOW-sort", "Radb", "Connect", "Murphi"):
        assert peak[light] < 4.0, (light, peak[light])

    # The worst-hit app is one of the frequent communicators.
    worst = max(peak, key=peak.get)
    assert worst in ("Radix", "EM3D(write)", "EM3D(read)", "Sample")

    # Linear response (burst-model behaviour) for Radix.
    series = figure.sweeps["Radix"].series()
    slopes = [(y2 - y1) / (x2 - x1)
              for (x1, y1), (x2, y2) in zip(series, series[1:])]
    assert max(slopes) < 1.6 * min(slopes)
