"""Table 8: LogGP-model-driven collective algorithm selection.

Acceptance shape: across a (P, size, machine-scale) validation grid,
the closed-form model's pick must be the measured-cheapest algorithm —
or within 10% of it — for at least 80% of cells.  The grid dials bulk
bandwidth as the machine-scale axis because that is where the real
algorithm crossovers live (short packets cost o_s + L + o_r regardless
of declared size on this NIC model).
"""

import itertools

from benchmarks.conftest import run_once
from repro.am.tuning import TuningKnobs
from repro.cluster.machine import Cluster
from repro.coll.algorithms import eligible_algorithms
from repro.coll.bench import CollectiveBench
from repro.coll.model import estimate_cost
from repro.harness.experiments import table8_coll_tuner
from repro.network.loggp import LogGPParams

PRIMITIVES = ("broadcast", "allreduce", "allgather", "alltoall")
RANK_COUNTS = (4, 8, 16)
SIZES = (32, 4096, 65536)
#: Machine-scale axis: baseline wire vs a 10x slower bulk path.
BANDWIDTHS = (38.0, 4.0)


def _grid_agreement():
    """Fraction of validation cells where the model pick is within 10%
    of the measured-cheapest algorithm, plus the miss list."""
    params = LogGPParams.berkeley_now()
    total, within, misses = 0, 0, []
    for primitive, n_nodes, size, mb_s in itertools.product(
            PRIMITIVES, RANK_COUNTS, SIZES, BANDWIDTHS):
        knobs = TuningKnobs.bulk_bandwidth(mb_s, params)
        bulk = size > 64
        measured = {}
        for algo in eligible_algorithms(primitive, elementwise=True,
                                        dense=True, uniform=True):
            bench = CollectiveBench(primitive, algo=algo, size=size,
                                    bulk=bulk, iterations=2)
            result = Cluster(n_nodes, knobs=knobs, seed=9).run(bench)
            measured[algo] = result.runtime_us
        best_time = min(measured.values())
        model_pick = min(
            (estimate_cost(primitive, algo, n_nodes, size, params,
                           knobs=knobs, bulk=bulk), algo)
            for algo in measured)[1]
        total += 1
        if measured[model_pick] <= 1.10 * best_time:
            within += 1
        else:
            misses.append((primitive, n_nodes, size, mb_s, model_pick,
                           round(measured[model_pick] / best_time, 2)))
    return within / total, misses


def test_model_picks_measured_cheapest_on_validation_grid(benchmark):
    agreement, misses = run_once(benchmark, _grid_agreement)
    print(f"\nmodel-vs-measured agreement: {agreement:.0%}"
          f" (misses: {misses})")
    assert agreement >= 0.80, misses


def test_table8(benchmark):
    table = run_once(benchmark, lambda: table8_coll_tuner(
        n_nodes=16, sizes=(32, 1024, 16384, 65536), iterations=2))
    print()
    print(table.render())
    ok = [r for r in table.rows() if r["within_10pct"] == "ok"]
    assert len(ok) / len(table.rows()) >= 0.80
    # The size axis must actually flip at least one primitive's pick:
    # a tuner that never switches algorithms is not tuning.
    picks = {}
    for row in table.rows():
        picks.setdefault(row["primitive"], set()).add(row["model_pick"])
    assert any(len(algos) > 1 for algos in picks.values())
