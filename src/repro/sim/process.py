"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  The generator yields
:class:`~repro.sim.events.Event` objects (or other processes, which are
events themselves) to suspend; it resumes with the event's value via
``send`` or, on event failure, has the exception thrown into it.  The
process is itself an event that triggers when the generator returns.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.events import Event

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A running simulation process; also an event (its own completion)."""

    __slots__ = ("_generator", "_send", "_waiting_on")

    def __init__(self, sim: "Simulator",  # noqa: F821
                 generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"process body must be a generator, got {type(generator)!r};"
                " did you forget a 'yield'?")
        super().__init__(sim, name=name or getattr(
            generator, "__name__", "process"))
        self._generator = generator
        #: ``generator.send`` pre-bound: the engines resume via this
        #: slot, skipping a method lookup on every process wakeup.
        self._send = generator.send
        # Kick off on the next simulator step at the current time.  The
        # kickoff event doubles as the initial _waiting_on target so stray
        # wakeups can never resume the process.
        kickoff = Event(sim, name=f"init:{self.name}")
        self._waiting_on: Optional[Event] = kickoff
        kickoff.callbacks.append(self._resume)
        kickoff.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def waiting_on(self) -> Optional[Event]:
        """The event this process is currently suspended on, if any.

        Diagnostic surface for simsan's stall reports: a live process
        with a never-triggering target here is a blocked rank.
        """
        return self._waiting_on

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The interrupt wins over whatever event the process is currently
        waiting on; that event's eventual trigger is then ignored.
        Interrupting a finished process is an error.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished {self!r}")
        # Detach from the current wait so its wakeup is discarded.
        self._waiting_on = None
        bridge = Event(self.sim, name=f"interrupt:{self.name}")
        bridge.callbacks.append(lambda _e: self._throw(Interrupt(cause)))
        bridge.succeed(None)

    # -- stepping ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        # Hot path: runs once per process wakeup.  A processed event
        # always has ``_ok`` decided, so read the slot directly rather
        # than the raising ``ok`` property.
        if event is not self._waiting_on:
            # Stale wakeup from an event abandoned by an interrupt.
            return
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001
            # simlint: disable=broad-except - any generator death must
            # become a process failure, never a lost exception.
            self.fail(exc)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001
            # simlint: disable=broad-except - any generator death must
            # become a process failure, never a lost exception.
            self.fail(err)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            exc = TypeError(
                f"process {self.name!r} yielded non-event {target!r}")
            self._throw(exc)
            return
        if target.sim is not self.sim:
            self._throw(ValueError(
                "yielded event belongs to a different simulator"))
            return
        self._waiting_on = target
        callbacks = target.callbacks
        if callbacks is None:
            # Already processed: add_callback bridges via a fresh event.
            target.add_callback(self._resume)
        else:
            callbacks.append(self._resume)
