"""The raw-speed scheduling tier: a calendar-queue simulator.

:class:`CalendarSimulator` is a drop-in replacement for the reference
heap engine in :mod:`repro.sim.engine`, selected with
``Simulator(engine="calendar")`` (or ``"fast"``).  It must replay every
workload **bit-identically** — same event order, same ``now``, same
``events_processed``, same raised exceptions — which the differential
fuzz suite in ``tests/test_engine_equivalence.py`` enforces.  The speed
comes from four structural changes, none of which may alter semantics:

1. **Calendar queue instead of a binary heap.**  The NIC's schedule is
   mostly monotone and short-horizon (timeouts of ``o``, ``g``, ``L``,
   ``G*k`` dominate), so pending events are bucketed by
   ``int(when * inv_width)``.  Buckets are plain unsorted lists; when a
   bucket becomes current it is sorted *descending* once and drained
   with ``list.pop()`` from the tail, so the per-event cost is an
   append plus a pop instead of two ``O(log n)`` sift passes.  Events
   scheduled into the *currently draining* bucket go to a small side
   min-heap (``_pending``) that the drain loop merges by full-tuple
   comparison.  Far-future events degrade gracefully: the sparse bucket
   dict is keyed through a min-heap of bucket indices, so an event
   scheduled a million microseconds out costs one heap entry, not a
   million empty bucket scans.  Because the ``when -> index`` mapping
   is monotone and buckets drain in index order with a full
   ``(time, priority, sequence)`` sort, the global order is exactly the
   reference engine's.

2. **Timeout free-list.**  ``timeout()`` is called ~10^7 times per
   sweep.  Once a ``Timeout`` has been processed and provably has no
   outside references (``sys.getrefcount`` — at the check point only
   one loop local holds it), it is recycled instead of re-allocated.
   The refcount gate is what keeps this invisible: a timeout somebody
   still holds (to read ``.value`` later, or to re-yield) is never
   reused.  On interpreters without CPython refcounts the gate simply
   never fires and every timeout is freshly allocated.

3. **Inlined process resume.**  The dominant callback is a process
   waiting alone on a timeout; the run loop runs the generator ``send``
   inline, including the common "yielded a fresh same-sim Timeout" wait
   path, saving two Python frames per event.  When the inline path
   parks a waiter it stores the :class:`~repro.sim.process.Process`
   itself in the callback list (cheaper to re-recognise than a bound
   method); the loop and ``step`` translate such entries back to
   ``Process._resume`` semantics, and every uncommon case — including a
   process's very first wait, which arrives as the real bound method —
   falls back to the real methods, so behaviour is byte-for-byte the
   reference's.

4. **Timeouts cannot fail.**  A ``Timeout`` is born triggered-OK and
   ``succeed``/``fail`` refuse already-triggered events, so for the
   Timeout class the ``_ok`` branch, the unhandled-failure test, *and*
   the stop-event check are all skippable: a recycled timeout (refcount
   gate passed) cannot be the event that set ``_stop_requested``,
   because ``_stop_requested`` itself would hold a reference.

``benchmarks/test_engine_throughput.py`` and the committed
``BENCH_6.json`` track the resulting events/second (ARCHITECTURE.md
section 13 has the measured trajectory).

Internal invariants (the run loop's correctness hinges on these):

* ``_cur`` is sorted descending and drained from the tail; everything
  still in it sorts at-or-after every already-processed entry.
* ``_pending`` is a min-heap and ``_fifo`` an append-only deque, both
  holding only entries whose bucket index is ``_cur_index``.  Zero-delay
  NORMAL-priority schedules go to ``_fifo`` — ``now`` and the sequence
  counter are monotone, so those entries arrive already sorted and an
  O(1) append/popleft replaces two O(log n) heap passes; everything
  else lands in ``_pending``.  The drain loop takes the smallest of
  ``_cur[-1]`` / ``_fifo[0]`` / ``_pending[0]`` by full-tuple
  comparison and fully drains both side stores before refilling the
  next bucket.  All three stores must be parked back into the bucket
  dict together (see ``_park_current``).
* A bucket index present in ``_buckets`` is never the current bucket's
  index, so the membership probe doubles as the current-bucket test.
* New entries never sort before the drain point: schedules happen at
  ``now``, and ``when >= now`` holds for every insert.
* A ``Process`` object appears in an ``Event.callbacks`` list only for
  events owned by a :class:`CalendarSimulator`, which is also the only
  consumer of those lists (events never cross simulators).
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import count
from sys import getrefcount
from types import MethodType
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.engine import NORMAL, Simulator, StalledError, _reject_delay
from repro.sim.events import Event, Timeout
from repro.sim.process import Process

__all__ = ["CalendarSimulator"]

_INF = float("inf")

#: Shared overflow bucket for events so far out that ``when * inv_width``
#: does not fit an exact float product.  Collapsing them into one
#: (sorted-on-drain) bucket keeps the mapping monotone, which is all the
#: ordering proof needs.
_FAR_BUCKET = 1 << 62

#: The bound-method target the run loop inlines (see point 3 above).
_RESUME = Process._resume

#: Default bucket width in simulated microseconds.  LogGP overheads and
#: gaps are O(1) us, so sub-microsecond buckets stay small enough that
#: the drain-time sort is a handful of comparisons per event.  Any
#: positive width is correct; this only moves the constant factor.
_DEFAULT_WIDTH = 0.5


class CalendarSimulator(Simulator):
    """Calendar-queue drop-in for :class:`~repro.sim.engine.Simulator`.

    Constructed via ``Simulator(engine="calendar")`` (preferred, keeps
    call sites engine-agnostic) or directly.  ``width`` is the bucket
    width in microseconds (default :data:`_DEFAULT_WIDTH`).
    """

    engine = "calendar"

    def __init__(self, engine: Optional[str] = None,
                 width: Optional[float] = None) -> None:
        if width is None:
            width = _DEFAULT_WIDTH
        if not 0.0 < width < _INF:
            raise ValueError(f"bucket width must be finite and > 0: {width}")
        self._now = 0.0
        self._event_count = 0
        self._stop_requested: Optional[Event] = None
        self._width = width
        self._inv_width = 1.0 / width
        #: Future buckets: index -> unsorted entry list, sorted once on
        #: refill.
        self._buckets: Dict[int, List[Tuple[float, int, int, Event]]] = {}
        #: Min-heap of the indices present in ``_buckets``.
        self._bheap: List[int] = []
        #: The bucket currently draining: sorted descending, popped from
        #: the tail.
        self._cur: List[Tuple[float, int, int, Event]] = []
        self._cur_index: Optional[int] = None
        #: Min-heap of entries scheduled into the current bucket while
        #: it drains (see the module-docstring invariants).
        self._pending: List[Tuple[float, int, int, Event]] = []
        #: FIFO of *zero-delay* entries scheduled into the current
        #: bucket while it drains.  ``now`` and the sequence counter are
        #: both monotone and every zero-delay entry carries NORMAL
        #: priority, so appends arrive already sorted — an O(1) deque
        #: replaces two O(log n) heap passes for the wakeup/kickoff/
        #: bridge events that dominate cluster workloads.
        self._fifo: Any = deque()
        #: Recycled Timeout instances (point 2 in the module docstring).
        self._free: List[Timeout] = []
        #: Monotone tie-break counter; plays the reference engine's
        #: ``_seq`` role but as a C-level counter (only relative order
        #: matters, and nothing outside the engines reads ``_seq``).
        self._next_seq: Callable[[], int] = count(1).__next__
        # Shadow the class-level ``timeout`` with a closure holding the
        # stable scheduling state in cells (see ``_make_timeout``).
        self.timeout = self._make_timeout()

    # -- scheduling -------------------------------------------------------
    # The entry-filing logic below appears three times (here in
    # ``_schedule``, in ``_push``, and in the ``timeout`` closure)
    # rather than behind a shared ``_insert`` helper: these are the
    # per-event paths for *every* wire hop, NIC service slot and wakeup
    # in a sweep, and the extra call frame measurably costs cluster
    # workloads.  An entry whose bucket is the *currently draining* one
    # goes to the ``_pending`` side-heap — its time is >= ``now``, so
    # it can never land before the drain point.

    def _make_timeout(self) -> Callable[..., Timeout]:
        """Build this instance's ``timeout`` as a closure.

        ``timeout()`` is the hottest call in the whole repository
        (~10^7 per sweep), so the stable state — free list, sequence
        counter, bucket dict, bucket heap — lives in keyword-only
        parameter defaults (``LOAD_FAST``) instead of instance-dict
        attribute lookups, and the closure is bound as an *instance*
        attribute so the call skips method binding too.  Only the
        genuinely mutable fields (``_now``, ``_pending``,
        ``_cur_index``) still go through ``self``.
        """
        def timeout(delay: float, value: Any = None, *,
                    _free: Any = self._free,
                    _free_pop: Any = self._free.pop,
                    _next_seq: Any = self._next_seq,
                    _inv_width: float = self._inv_width,
                    _buckets: Any = self._buckets,
                    _bucket_get: Any = self._buckets.get,
                    _bheap: Any = self._bheap,
                    _new: Any = Timeout.__new__,
                    _cls: Any = Timeout,
                    _normal: int = NORMAL,
                    _push: Any = heappush) -> Timeout:
            """Create an event firing ``delay`` microseconds from now.

            Identical contract to the reference engine's ``timeout``;
            the body additionally recycles processed Timeouts and files
            into the calendar (``_insert`` inlined).  The keyword-only
            parameters are private pre-bound state — never pass them.
            """
            when = self._now + delay
            try:
                # ``int(nan)`` raises ValueError and ``int(inf)``
                # OverflowError, so the index computation doubles as
                # the non-finite check; only negatives need testing on
                # the fast path (NaN fails the try block first).
                index = int(when * _inv_width)
                if delay < 0.0:
                    _reject_delay("timeout delay", delay)
            except (OverflowError, ValueError):
                if not 0.0 <= delay < _INF:
                    _reject_delay("timeout delay", delay)
                index = _FAR_BUCKET  # huge but finite ``when``
            if _free:
                # Recycled: ``_ok``/``_scheduled``/``sim`` are
                # invariantly True/True/self for anything the run
                # loop's gate let in (``_defused`` may carry a stale
                # True, which is harmless for a Timeout: they are born
                # OK and can never fail, so nothing ever reads it), so
                # only the varying slots reset.
                event = _free_pop()
                event.name = ""
                event.callbacks = []
                event._value = value
                event.delay = delay
            else:
                event = _new(_cls)
                event.sim = self
                event.name = ""
                event.callbacks = []
                event._value = value
                event._ok = True
                event._scheduled = True
                event._defused = False
                event.delay = delay
            entry = (when, _normal, _next_seq(), event)
            bucket = _bucket_get(index)
            if bucket is not None:
                bucket.append(entry)
            elif index == self._cur_index:
                _push(self._pending, entry)
            else:
                _buckets[index] = [entry]
                _push(_bheap, index)
            return event

        return timeout

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        """Insert a triggered event into the calendar (internal API)."""
        if not 0.0 <= delay < _INF:
            _reject_delay("schedule delay", delay)
        if event._scheduled:
            raise RuntimeError(f"{event!r} is already scheduled")
        event._scheduled = True
        if delay == 0.0 and priority == NORMAL and \
                self._cur_index is not None:
            # Zero-delay during an active drain: ``now`` is the time of
            # the last entry popped from the current bucket and the
            # ``when -> index`` map is monotone, so the index is
            # provably ``_cur_index`` — skip the arithmetic, the dict
            # probe, and both heap passes.
            self._fifo.append((self._now, NORMAL, self._next_seq(), event))
            return
        when = self._now + delay
        entry = (when, priority, self._next_seq(), event)
        try:
            index = int(when * self._inv_width)
        except OverflowError:
            index = _FAR_BUCKET
        bucket = self._buckets.get(index)
        if bucket is not None:
            bucket.append(entry)
        elif index == self._cur_index:
            heappush(self._pending, entry)
        else:
            self._buckets[index] = [entry]
            heappush(self._bheap, index)

    def _push(self, event: Event, delay: float) -> None:
        if delay == 0.0 and self._cur_index is not None:
            # Same provably-current-bucket fast path as ``_schedule``.
            self._fifo.append((self._now, NORMAL, self._next_seq(), event))
            return
        when = self._now + delay
        entry = (when, NORMAL, self._next_seq(), event)
        try:
            index = int(when * self._inv_width)
        except OverflowError:
            index = _FAR_BUCKET
        bucket = self._buckets.get(index)
        if bucket is not None:
            bucket.append(entry)
        elif index == self._cur_index:
            heappush(self._pending, entry)
        else:
            self._buckets[index] = [entry]
            heappush(self._bheap, index)

    # -- execution --------------------------------------------------------
    def _refill(self) -> bool:
        """Promote the nearest future bucket to current.  False if none.

        Only called with ``_cur`` and ``_pending`` both empty.
        """
        if not self._bheap:
            return False
        index = heappop(self._bheap)
        cur = self._buckets.pop(index)
        # Full-tuple sort: compares (time, priority, sequence) exactly
        # like the reference heap (descending here — the tail is the
        # next event), and CPython's unsafe_tuple_compare makes the
        # common time-only comparison a raw float compare.
        cur.sort(reverse=True)
        self._cur = cur
        self._cur_index = index
        return True

    def _park_current(self) -> None:
        """Return the un-drained current bucket + side-heap to the dict.

        Needed when ``run(until=...)`` stops on the horizon: ``now`` is
        forced to ``until``, which may lie in an *earlier* bucket than
        the current one, and a later schedule from that earlier window
        must sort before the parked entries.  Bucket lists are unsorted
        by invariant (sorted on refill), so order here is irrelevant.
        """
        leftover = self._cur + self._pending + list(self._fifo)
        if leftover:
            # The index cannot collide: same-index schedules go to the
            # side stores instead of re-creating the dict bucket.
            self._buckets[self._cur_index] = leftover
            heappush(self._bheap, self._cur_index)
        self._cur = []
        self._pending = []
        self._fifo = deque()
        self._cur_index = None

    def _pop_next(self) -> Tuple[float, int, int, Event]:
        """Remove and return the globally next entry (helper for step).

        Raises RuntimeError when no events are pending.
        """
        cur = self._cur
        pending = self._pending
        fifo = self._fifo
        if cur:
            if fifo and fifo[0] < cur[-1]:
                if pending and pending[0] < fifo[0]:
                    return heappop(pending)
                return fifo.popleft()
            if pending and pending[0] < cur[-1]:
                return heappop(pending)
            return cur.pop()
        if fifo:
            if pending and pending[0] < fifo[0]:
                return heappop(pending)
            return fifo.popleft()
        if pending:
            return heappop(pending)
        if not self._refill():
            raise RuntimeError("no events to process")
        return self._pop_next()

    def step(self) -> None:
        """Process exactly one event (reference-identical semantics)."""
        when, _priority, _seq, event = self._pop_next()
        self._now = when
        self._event_count += 1
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        for callback in callbacks:
            if callback.__class__ is Process:
                callback._resume(event)
            else:
                callback(event)
        if event._ok is False and not event._defused:
            raise event.value

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none are pending."""
        best = _INF
        if self._cur:
            best = self._cur[-1][0]
        if self._fifo and self._fifo[0][0] < best:
            best = self._fifo[0][0]
        if self._pending and self._pending[0][0] < best:
            best = self._pending[0][0]
        if self._bheap:
            ahead = min(self._buckets[self._bheap[0]])[0]
            if ahead < best:
                best = ahead
        return best

    def run(self, until: Optional[float] = None,
            stop_event: Optional[Event] = None) -> Any:
        """Run until the calendar drains, ``until`` time, or ``stop_event``.

        Same contract, return values and exceptions as the reference
        engine's ``run``; see the module docstring for what is inlined.
        """
        if stop_event is not None:
            if stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
            stop_event._defused = True
            stop_event.add_callback(self._stop_callback)
        buckets = self._buckets
        bheap = self._bheap
        free_append = self._free.append
        count_ = self._event_count
        cur = self._cur
        cur_pop = cur.pop
        pending = self._pending
        fifo = self._fifo
        fifo_pop = fifo.popleft
        pop = heappop
        refcount = getrefcount
        method_type = MethodType
        resume = _RESUME
        timeout_class = Timeout
        process_class = Process
        # The loops below mirror the reference engine's two unrolled
        # loops; the structural additions are the bucket refill, the
        # pending-heap merge, the Timeout-specialised dispatch (points
        # 2-4 in the module docstring), and the inlined single-waiter
        # resume.  ``cur`` and ``pending`` stay valid locals across
        # callbacks: callback-driven inserts mutate them in place
        # (bucket dict / side-heap pushes) but never rebind the
        # attributes — the only rebinder is ``_park_current``, which is
        # immediately followed by the horizon break.
        try:
            if until is None:
                while True:
                    if cur:
                        if fifo and fifo[0] < cur[-1]:
                            if pending and pending[0] < fifo[0]:
                                entry = pop(pending)
                            else:
                                entry = fifo_pop()
                        elif pending and pending[0] < cur[-1]:
                            entry = pop(pending)
                        else:
                            entry = cur_pop()
                    elif fifo:
                        if pending and pending[0] < fifo[0]:
                            entry = pop(pending)
                        else:
                            entry = fifo_pop()
                    elif pending:
                        entry = pop(pending)
                    elif bheap:
                        index = pop(bheap)
                        cur = buckets.pop(index)
                        cur.sort(reverse=True)
                        cur_pop = cur.pop
                        self._cur = cur
                        self._cur_index = index
                        entry = cur_pop()
                    else:
                        break
                    when, _priority, _seq, event = entry
                    entry = None  # free the tuple for the recycle gate
                    self._now = when
                    count_ += 1
                    callbacks = event.callbacks
                    event.callbacks = None  # mark processed
                    if event.__class__ is timeout_class:
                        # Timeouts are born OK and can never fail: the
                        # ``_ok`` branch and the unhandled-failure test
                        # below are statically decided for this class.
                        if len(callbacks) == 1:
                            callback = callbacks[0]
                            if callback.__class__ is process_class:
                                # Inline Process._resume for the single
                                # parked waiter (_waiting_on is cleared
                                # lazily: the wait path overwrites it).
                                proc = callback
                                if event is proc._waiting_on:
                                    try:
                                        target = proc._send(event._value)
                                    except StopIteration as stop:
                                        proc._waiting_on = None
                                        proc.succeed(stop.value)
                                    except BaseException as exc:  # noqa: BLE001
                                        # simlint: disable=broad-except - any
                                        # generator death must become a
                                        # process failure, never a lost
                                        # exception.
                                        proc._waiting_on = None
                                        proc.fail(exc)
                                    else:
                                        if (target.__class__ is timeout_class
                                                and target.sim is self
                                                and target.callbacks
                                                is not None):
                                            # Inline _wait_on for the
                                            # dominant "yield sim.timeout()"
                                            # shape.  Parking the Process
                                            # object (not the bound method)
                                            # routes the next wakeup back
                                            # here.
                                            proc._waiting_on = target
                                            target.callbacks.append(proc)
                                        else:
                                            proc._waiting_on = None
                                            proc._wait_on(target)
                            elif (callback.__class__ is method_type
                                    and callback.__func__ is resume):
                                # A process's first wait parks the real
                                # bound method (the generic _wait_on did
                                # it); same inline body, and the wait
                                # path re-parks the Process object so
                                # every later wakeup takes the branch
                                # above.
                                proc = callback.__self__
                                if event is proc._waiting_on:
                                    try:
                                        target = proc._send(event._value)
                                    except StopIteration as stop:
                                        proc._waiting_on = None
                                        proc.succeed(stop.value)
                                    except BaseException as exc:  # noqa: BLE001
                                        # simlint: disable=broad-except - any
                                        # generator death must become a
                                        # process failure, never a lost
                                        # exception.
                                        proc._waiting_on = None
                                        proc.fail(exc)
                                    else:
                                        if (target.__class__ is timeout_class
                                                and target.sim is self
                                                and target.callbacks
                                                is not None):
                                            proc._waiting_on = target
                                            target.callbacks.append(proc)
                                        else:
                                            proc._waiting_on = None
                                            proc._wait_on(target)
                            else:
                                callback(event)
                        else:
                            for callback in callbacks:
                                if callback.__class__ is process_class:
                                    callback._resume(event)
                                else:
                                    callback(event)
                        if refcount(event) == 2:
                            # Only our local (plus getrefcount's argument)
                            # still references it: safe to recycle.  It
                            # also cannot be the event that just set
                            # _stop_requested (that slot would hold a
                            # reference), so skip the stop check.
                            free_append(event)
                            continue
                    else:
                        if len(callbacks) == 1:
                            callback = callbacks[0]
                            if callback.__class__ is process_class:
                                callback._resume(event)
                            else:
                                callback(event)
                        else:
                            for callback in callbacks:
                                if callback.__class__ is process_class:
                                    callback._resume(event)
                                else:
                                    callback(event)
                        if event._ok is False and not event._defused:
                            raise event.value
                    if self._stop_requested is not None:
                        stopped = self._stop_requested
                        self._stop_requested = None
                        if stopped._ok is False:
                            raise stopped.value
                        return stopped.value
            else:
                while True:
                    # Two-phase take: peek the next entry's source, test
                    # the horizon, then pop — a horizon break must leave
                    # the entry in place for a later run() to process.
                    # source: 0 = cur tail, 1 = pending heap, 2 = fifo
                    source = 0
                    if cur:
                        entry = cur[-1]
                        if fifo and fifo[0] < entry:
                            entry = fifo[0]
                            source = 2
                        if pending and pending[0] < entry:
                            entry = pending[0]
                            source = 1
                    elif fifo:
                        entry = fifo[0]
                        source = 2
                        if pending and pending[0] < entry:
                            entry = pending[0]
                            source = 1
                    elif pending:
                        entry = pending[0]
                        source = 1
                    elif bheap:
                        index = pop(bheap)
                        cur = buckets.pop(index)
                        cur.sort(reverse=True)
                        cur_pop = cur.pop
                        self._cur = cur
                        self._cur_index = index
                        entry = cur[-1]
                    else:
                        break
                    when = entry[0]
                    if when > until:
                        self._now = until
                        self._park_current()
                        cur = self._cur
                        break
                    if source == 0:
                        cur_pop()
                    elif source == 1:
                        pop(pending)
                    else:
                        fifo_pop()
                    event = entry[3]
                    entry = None  # free the tuple for the recycle gate
                    self._now = when
                    count_ += 1
                    callbacks = event.callbacks
                    event.callbacks = None  # mark processed
                    if event.__class__ is timeout_class:
                        if len(callbacks) == 1:
                            callback = callbacks[0]
                            if callback.__class__ is process_class:
                                proc = callback
                                if event is proc._waiting_on:
                                    try:
                                        target = proc._send(event._value)
                                    except StopIteration as stop:
                                        proc._waiting_on = None
                                        proc.succeed(stop.value)
                                    except BaseException as exc:  # noqa: BLE001
                                        # simlint: disable=broad-except - any
                                        # generator death must become a
                                        # process failure, never a lost
                                        # exception.
                                        proc._waiting_on = None
                                        proc.fail(exc)
                                    else:
                                        if (target.__class__ is timeout_class
                                                and target.sim is self
                                                and target.callbacks
                                                is not None):
                                            proc._waiting_on = target
                                            target.callbacks.append(proc)
                                        else:
                                            proc._waiting_on = None
                                            proc._wait_on(target)
                            elif (callback.__class__ is method_type
                                    and callback.__func__ is resume):
                                proc = callback.__self__
                                if event is proc._waiting_on:
                                    try:
                                        target = proc._send(event._value)
                                    except StopIteration as stop:
                                        proc._waiting_on = None
                                        proc.succeed(stop.value)
                                    except BaseException as exc:  # noqa: BLE001
                                        # simlint: disable=broad-except - any
                                        # generator death must become a
                                        # process failure, never a lost
                                        # exception.
                                        proc._waiting_on = None
                                        proc.fail(exc)
                                    else:
                                        if (target.__class__ is timeout_class
                                                and target.sim is self
                                                and target.callbacks
                                                is not None):
                                            proc._waiting_on = target
                                            target.callbacks.append(proc)
                                        else:
                                            proc._waiting_on = None
                                            proc._wait_on(target)
                            else:
                                callback(event)
                        else:
                            for callback in callbacks:
                                if callback.__class__ is process_class:
                                    callback._resume(event)
                                else:
                                    callback(event)
                        if refcount(event) == 2:
                            free_append(event)
                            continue
                    else:
                        if len(callbacks) == 1:
                            callback = callbacks[0]
                            if callback.__class__ is process_class:
                                callback._resume(event)
                            else:
                                callback(event)
                        else:
                            for callback in callbacks:
                                if callback.__class__ is process_class:
                                    callback._resume(event)
                                else:
                                    callback(event)
                        if event._ok is False and not event._defused:
                            raise event.value
                    if self._stop_requested is not None:
                        stopped = self._stop_requested
                        self._stop_requested = None
                        if stopped._ok is False:
                            raise stopped.value
                        return stopped.value
        finally:
            self._event_count = count_
        if stop_event is not None:
            if not (cur or self._fifo or self._pending or bheap):
                raise StalledError(
                    f"event heap drained at t={self._now} with "
                    f"{stop_event!r} still pending")
            raise TimeoutError(
                f"simulation ended at t={self._now} before "
                f"{stop_event!r} triggered")
        if until is not None and self._now < until:
            # Every store drained before the horizon: advance the clock
            # and drop the current-bucket claim — ``now`` may no longer
            # lie in that bucket, and the zero-delay fast paths in
            # ``_schedule``/``_push`` rely on ``_cur_index`` tracking it.
            self._now = until
            self._cur_index = None
        return None
