"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence in simulated time.  Processes
(generators) ``yield`` events to suspend until the event *triggers*.  Events
may succeed with a value or fail with an exception; a failed event re-raises
its exception inside every waiting process.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = ["Event", "Timeout", "AnyOf", "AllOf", "EventError"]


class EventError(RuntimeError):
    """Raised on misuse of an event (double trigger, reading too early)."""


_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.
    name:
        Optional label used in ``repr`` for debugging.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_scheduled",
                 "_defused")

    def __init__(self, sim: "Simulator", name: str = "") -> None:  # noqa: F821
        self.sim = sim
        self.name = name
        #: Callables invoked with this event once it is processed.
        self.callbacks: Optional[List[Callable[[Event], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        #: Set once a process has consumed this event's failure, so the
        #: simulator does not re-raise it as an unhandled error.
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (succeed/fail)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is fully in the past)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise EventError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception carried by the event."""
        if self._value is _PENDING:
            raise EventError(f"{self!r} has no value yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful and schedule callback processing.

        ``delay`` defers the event's occurrence into the simulated future.
        Returns self for chaining.
        """
        if self.triggered:
            raise EventError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; waiting processes see ``exception``."""
        if self.triggered:
            raise EventError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs when the event is processed.

        If the event has already been processed the callback fires on the
        next simulator step (never synchronously), preserving determinism.
        """
        if self.callbacks is None:
            # Already processed: deliver via a zero-delay bridge event so the
            # callback still runs from the event loop, never synchronously.
            bridge = Event(self.sim, name=f"late:{self.name}")
            bridge.callbacks.append(lambda _e: callback(self))
            bridge.succeed(None)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{self.__class__.__name__} {label} [{state}]>"


class Timeout(Event):
    """An event that fires ``delay`` simulated microseconds after creation.

    Timeouts are by far the most common event (every compute region,
    stall and wire hop is one), so construction stays lean: the label is
    derived in ``__repr__`` instead of eagerly formatted, and the
    already-validated event is pushed straight onto the heap rather than
    through the generic ``_schedule`` checks.  ``Simulator.timeout`` is
    a still-faster path that bypasses this constructor entirely; the two
    must stay behaviourally identical.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float,  # noqa: F821
                 value: Any = None, name: str = "") -> None:
        if not 0.0 <= delay < float("inf"):
            # Mirrors Simulator.timeout: NaN compares false against
            # everything, so a bare ``delay < 0`` let NaN through.
            sim._reject(delay)
        super().__init__(sim, name=name)
        self.delay = delay
        self._ok = True
        self._value = value
        self._scheduled = True
        sim._push(self, delay)

    def __repr__(self) -> str:
        label = self.name or f"timeout({self.delay})"
        state = "processed" if self.processed else "triggered"
        return f"<{self.__class__.__name__} {label} [{state}]>"


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf` composite events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator",  # noqa: F821
                 events: List[Event]) -> None:
        super().__init__(sim, name=self.__class__.__name__)
        self.events = list(events)
        self._pending_count = 0
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("events belong to a different simulator")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            # A *processed* child already happened; merely-triggered ones
            # (e.g. a Timeout, whose value is fixed at creation) are still
            # in the simulated future and deliver via callback.
            if event.processed:
                self._on_child(event)
            else:
                self._pending_count += 1
                event.add_callback(self._on_child)
        self._check_after_init()

    def _collect(self) -> dict:
        return {e: e.value for e in self.events if e.processed and e.ok}

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _check_after_init(self) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds when any child event succeeds; fails on the first failure."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(self._collect())
        else:
            # The failure is consumed here (re-raised through this
            # condition), so the engine must not treat the child as an
            # unhandled failed event.
            event._defused = True
            self.fail(event.value)

    def _check_after_init(self) -> None:
        # _on_child already handled any pre-triggered children.
        return


class AllOf(_Condition):
    """Succeeds when all child events have succeeded."""

    __slots__ = ("_remaining",)

    def __init__(self, sim: "Simulator", events: List[Event]) -> None:  # noqa: F821
        self._remaining = len(events)
        super().__init__(sim, events)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event._defused = True  # consumed: re-raised via this event
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())

    def _check_after_init(self) -> None:
        # Children that pre-triggered already decremented the counter via
        # _on_child; nothing further to do.
        return
