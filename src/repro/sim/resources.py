"""Shared resources for simulation processes.

Two primitives cover everything the cluster model needs:

* :class:`Resource` -- a counted, FCFS resource (e.g. a NIC transmit
  context, a disk arm).  ``request()`` returns an event that succeeds when
  a slot is granted; ``release()`` frees it.
* :class:`Store` -- an unbounded (or bounded) FIFO of items (e.g. a NIC
  receive queue).  ``put(item)`` and ``get()`` both return events.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.events import Event

__all__ = ["Resource", "Store", "ResourceError"]


class ResourceError(RuntimeError):
    """Raised on misuse of a resource (e.g. releasing more than held)."""


class Resource:
    """A counted FCFS resource.

    Typical use inside a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: "Simulator", capacity: int = 1,  # noqa: F821
                 name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._queue: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of slots currently granted."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Event:
        """Ask for a slot; the returned event succeeds when granted."""
        event = Event(self.sim, name=f"req:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(None)
        else:
            self._queue.append(event)
        return event

    def release(self) -> None:
        """Free one slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise ResourceError(f"release() on idle resource {self.name!r}")
        if self._queue:
            # Hand the slot straight to the next waiter; _in_use unchanged.
            self._queue.popleft().succeed(None)
        else:
            self._in_use -= 1

    def cancel(self, request: Event) -> bool:
        """Withdraw a pending request.  Returns False if already granted."""
        try:
            self._queue.remove(request)
        except ValueError:
            return False
        return True


class Store:
    """A FIFO buffer of items with event-based put/get.

    With ``capacity=None`` (default) the store is unbounded and ``put``
    always succeeds immediately.
    """

    def __init__(self, sim: "Simulator",  # noqa: F821
                 capacity: Optional[int] = None, name: str = "") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item) pairs

    def __len__(self) -> int:
        return len(self._items)

    @property
    def getters_waiting(self) -> int:
        return len(self._getters)

    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event succeeds once stored."""
        event = Event(self.sim, name=f"put:{self.name}")
        if self._getters:
            # Direct hand-off to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            event.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Remove the oldest item; the event succeeds with that item."""
        event = Event(self.sim, name=f"get:{self.name}")
        if self._items:
            event.succeed(self._items.popleft())
            if self._putters:
                putter, item = self._putters.popleft()
                self._items.append(item)
                putter.succeed(None)
        else:
            self._getters.append(event)
        return event

    def peek_items(self) -> tuple:
        """A snapshot of buffered items (diagnostic, oldest first)."""
        return tuple(self._items)
