"""Discrete-event simulation kernel.

A small, deterministic, generator-based discrete-event engine in the style
of SimPy, specialised for this project.  Simulated time is a ``float`` and
is interpreted as *microseconds* throughout the repository (matching the
units of the LogGP parameters in the paper).

Public surface:

* :class:`~repro.sim.engine.Simulator` -- the event loop.
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AnyOf`, :class:`~repro.sim.events.AllOf`.
* :class:`~repro.sim.process.Process`, :class:`~repro.sim.process.Interrupt`.
* :class:`~repro.sim.resources.Resource`, :class:`~repro.sim.resources.Store`.
"""

from repro.sim.engine import (ENGINES, Simulator, StalledError,
                              default_engine, set_default_engine)
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Interrupt, Process
from repro.sim.resources import Resource, Store

__all__ = [
    "Simulator",
    "StalledError",
    "ENGINES",
    "default_engine",
    "set_default_engine",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Process",
    "Interrupt",
    "Resource",
    "Store",
]
