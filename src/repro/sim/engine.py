"""The discrete-event simulator core loop.

The :class:`Simulator` owns the clock and the event heap.  Events are
processed in strict ``(time, priority, sequence)`` order, making every run
fully deterministic for a given seedable workload.

The event loop is the hot path of every experiment (a full LogGP sweep
is ~10^7 events), so :meth:`Simulator.run` inlines the per-event work
with the heap and bookkeeping hoisted into locals, and
:meth:`Simulator.timeout` builds the (overwhelmingly common) Timeout
event without going through the generic ``Event`` constructor.

This class is also the *reference tier* of a two-tier scheduler (see
ARCHITECTURE.md section 13): ``Simulator(engine="calendar")`` returns a
:class:`~repro.sim.fastengine.CalendarSimulator`, a faster drop-in that
must replay every workload bit-identically — same event order, same
``now``, same ``events_processed``.  ``benchmarks/test_engine_
throughput.py`` and the committed ``BENCH_6.json`` track events/second
for both tiers so regressions are caught.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Simulator", "StalledError", "ENGINES",
           "default_engine", "set_default_engine"]

_INF = float("inf")

#: The selectable scheduling tiers.  ``heap`` is this module's reference
#: engine; ``calendar`` is the raw-speed tier in
#: :mod:`repro.sim.fastengine` (``fast`` is an alias for it).
ENGINES = ("heap", "calendar")

_ENGINE_ALIASES = {"fast": "calendar"}

_default_engine = "heap"


def default_engine() -> str:
    """The engine name ``Simulator()`` resolves to when none is given."""
    return _default_engine


def set_default_engine(engine: str) -> str:
    """Set the process-wide default scheduling tier.

    Lets a driver (e.g. ``scripts/generate_experiments.py --engine``)
    switch every simulator it creates — including those built in forked
    sweep workers — without threading the knob through each call site.
    Returns the previous default.  Both tiers are bit-identical by
    contract, so the choice never changes results, cache keys, or
    artifacts; only wall-clock.
    """
    global _default_engine
    resolved = _ENGINE_ALIASES.get(engine, engine)
    if resolved not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {ENGINES}")
    previous = _default_engine
    _default_engine = resolved
    return previous


def _resolve_engine(engine: Optional[str]) -> str:
    resolved = _ENGINE_ALIASES.get(engine, engine)
    if resolved is None:
        return _default_engine
    if resolved not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {ENGINES}")
    return resolved


def _reject_delay(kind: str, delay: float) -> None:
    """Raise the ValueError for a delay outside ``[0, inf)``.

    Callers only land here after ``0.0 <= delay < _INF`` failed, i.e.
    the delay is negative, ``+inf``, or NaN.  NaN compares false against
    everything, so the previous ``delay < 0`` checks silently admitted
    NaN delays and corrupted the schedule order — non-finite values get
    their own explicit message; finite negatives keep the legacy text.
    """
    if delay != delay or delay in (_INF, -_INF):
        raise ValueError(
            f"non-finite {kind}: {delay!r} (delays must be finite and >= 0)")
    if kind == "timeout delay":
        raise ValueError(f"negative timeout delay: {delay}")
    raise ValueError(f"cannot schedule into the past: delay={delay}")


class StalledError(TimeoutError):
    """The event heap drained while a ``stop_event`` was still pending.

    Distinct from the plain :class:`TimeoutError` raised when the
    ``until`` horizon elapses with events still queued: a drained heap
    means no future event can ever trigger the stop condition -- the
    workload is deadlocked, not merely slow.  Subclasses
    :class:`TimeoutError` so existing "did not complete" handling keeps
    working.
    """

#: Default priority for scheduled events; lower runs first at equal times.
NORMAL = 1


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a float in *microseconds*.  Typical use::

        sim = Simulator()

        def ping():
            yield sim.timeout(5.0)
            return "pong"

        proc = sim.process(ping())
        sim.run()
        assert sim.now == 5.0

    ``engine`` selects the scheduling tier: ``"heap"`` (this class, the
    bit-identity reference) or ``"calendar"`` (the raw-speed tier;
    ``"fast"`` is an alias).  ``None`` resolves to the process-wide
    default set with :func:`set_default_engine` (``"heap"`` unless a
    driver changed it).
    """

    #: Which scheduling tier this instance is (``"heap"`` here).
    engine = "heap"

    def __new__(cls, engine: Optional[str] = None, **kwargs: Any):
        if cls is Simulator and _resolve_engine(engine) == "calendar":
            from repro.sim.fastengine import CalendarSimulator
            return object.__new__(CalendarSimulator)
        return object.__new__(cls)

    def __init__(self, engine: Optional[str] = None) -> None:
        # ``engine`` was consumed by __new__ (it picked this class);
        # kept in the signature so Simulator(engine=...) constructs.
        self._now = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._event_count = 0
        self._stop_requested: Optional[Event] = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events processed so far (diagnostic)."""
        return self._event_count

    # -- factories ----------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` microseconds from now.

        This is the dominant event type (every compute region, stall and
        wire hop is a timeout), so the event is assembled directly —
        pre-triggered and pre-scheduled — without the generic
        ``Event.__init__``/``_schedule`` machinery.
        """
        if not 0.0 <= delay < _INF:
            _reject_delay("timeout delay", delay)
        event = Timeout.__new__(Timeout)
        event.sim = self
        event.name = ""
        event.callbacks = []
        event._value = value
        event._ok = True
        event._scheduled = True
        event._defused = False
        event.delay = delay
        self._seq += 1
        heappush(self._heap, (self._now + delay, NORMAL, self._seq, event))
        return event

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Composite event succeeding when any of ``events`` succeeds."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Composite event succeeding when all of ``events`` succeed."""
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        """Insert a triggered event into the heap (internal API)."""
        if not 0.0 <= delay < _INF:
            _reject_delay("schedule delay", delay)
        if event._scheduled:
            raise RuntimeError(f"{event!r} is already scheduled")
        event._scheduled = True
        self._seq += 1
        heappush(self._heap, (self._now + delay, priority,
                              self._seq, event))

    def _reject(self, delay: float) -> None:
        """Raise for a bad timeout delay (hook for ``Timeout.__init__``,
        which cannot import this module's helpers — circular import)."""
        _reject_delay("timeout delay", delay)

    def _push(self, event: Event, delay: float) -> None:
        """Insert a pre-validated, pre-triggered event (the ``Timeout``
        constructor's path; engine tiers override the storage)."""
        self._seq += 1
        heappush(self._heap, (self._now + delay, NORMAL, self._seq, event))

    # -- execution --------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event from the heap."""
        if not self._heap:
            raise RuntimeError("no events to process")
        when, _priority, _seq, event = heappop(self._heap)
        self._now = when
        self._event_count += 1
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            # A failed event nobody waited on is a programming error:
            # surface it rather than letting it pass silently.
            raise event.value

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None,
            stop_event: Optional[Event] = None) -> Any:
        """Run until the heap drains, ``until`` time, or ``stop_event``.

        Returns the value of ``stop_event`` if given and triggered.
        Raises :class:`TimeoutError` if ``until`` elapses while
        ``stop_event`` is still pending.
        """
        if stop_event is not None:
            if stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
            stop_event._defused = True
            stop_event.add_callback(self._stop_callback)
        # The two loops below are step() unrolled with the heap and the
        # event counter in locals.  They must stay semantically identical
        # to step(); the only difference is the `until` horizon check.
        heap = self._heap
        pop = heappop
        count = self._event_count
        try:
            if until is None:
                while heap:
                    when, _priority, _seq, event = pop(heap)
                    self._now = when
                    count += 1
                    callbacks = event.callbacks
                    event.callbacks = None  # mark processed
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if event._ok is False and not event._defused:
                        raise event.value
                    if self._stop_requested is not None:
                        stopped = self._stop_requested
                        self._stop_requested = None
                        if stopped._ok is False:
                            raise stopped.value
                        return stopped.value
            else:
                while heap:
                    if heap[0][0] > until:
                        self._now = until
                        break
                    when, _priority, _seq, event = pop(heap)
                    self._now = when
                    count += 1
                    callbacks = event.callbacks
                    event.callbacks = None  # mark processed
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if event._ok is False and not event._defused:
                        raise event.value
                    if self._stop_requested is not None:
                        stopped = self._stop_requested
                        self._stop_requested = None
                        if stopped._ok is False:
                            raise stopped.value
                        return stopped.value
        finally:
            self._event_count = count
        if stop_event is not None:
            if not heap:
                raise StalledError(
                    f"event heap drained at t={self._now} with "
                    f"{stop_event!r} still pending")
            raise TimeoutError(
                f"simulation ended at t={self._now} before "
                f"{stop_event!r} triggered")
        if until is not None and self._now < until:
            self._now = until
        return None

    def _stop_callback(self, event: Event) -> None:
        self._stop_requested = event
