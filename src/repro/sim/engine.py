"""The discrete-event simulator core loop.

The :class:`Simulator` owns the clock and the event heap.  Events are
processed in strict ``(time, priority, sequence)`` order, making every run
fully deterministic for a given seedable workload.

The event loop is the hot path of every experiment (a full LogGP sweep
is ~10^7 events), so :meth:`Simulator.run` inlines the per-event work
with the heap and bookkeeping hoisted into locals, and
:meth:`Simulator.timeout` builds the (overwhelmingly common) Timeout
event without going through the generic ``Event`` constructor.
``benchmarks/test_engine_throughput.py`` tracks the resulting
events/second so regressions are caught.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Simulator", "StalledError"]


class StalledError(TimeoutError):
    """The event heap drained while a ``stop_event`` was still pending.

    Distinct from the plain :class:`TimeoutError` raised when the
    ``until`` horizon elapses with events still queued: a drained heap
    means no future event can ever trigger the stop condition -- the
    workload is deadlocked, not merely slow.  Subclasses
    :class:`TimeoutError` so existing "did not complete" handling keeps
    working.
    """

#: Default priority for scheduled events; lower runs first at equal times.
NORMAL = 1


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a float in *microseconds*.  Typical use::

        sim = Simulator()

        def ping():
            yield sim.timeout(5.0)
            return "pong"

        proc = sim.process(ping())
        sim.run()
        assert sim.now == 5.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._event_count = 0
        self._stop_requested: Optional[Event] = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events processed so far (diagnostic)."""
        return self._event_count

    # -- factories ----------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` microseconds from now.

        This is the dominant event type (every compute region, stall and
        wire hop is a timeout), so the event is assembled directly —
        pre-triggered and pre-scheduled — without the generic
        ``Event.__init__``/``_schedule`` machinery.
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        event = Timeout.__new__(Timeout)
        event.sim = self
        event.name = ""
        event.callbacks = []
        event._value = value
        event._ok = True
        event._scheduled = True
        event._defused = False
        event.delay = delay
        self._seq += 1
        heappush(self._heap, (self._now + delay, NORMAL, self._seq, event))
        return event

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Composite event succeeding when any of ``events`` succeeds."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Composite event succeeding when all of ``events`` succeed."""
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        """Insert a triggered event into the heap (internal API)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay}")
        if event._scheduled:
            raise RuntimeError(f"{event!r} is already scheduled")
        event._scheduled = True
        self._seq += 1
        heappush(self._heap, (self._now + delay, priority,
                              self._seq, event))

    # -- execution --------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event from the heap."""
        if not self._heap:
            raise RuntimeError("no events to process")
        when, _priority, _seq, event = heappop(self._heap)
        self._now = when
        self._event_count += 1
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            # A failed event nobody waited on is a programming error:
            # surface it rather than letting it pass silently.
            raise event.value

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None,
            stop_event: Optional[Event] = None) -> Any:
        """Run until the heap drains, ``until`` time, or ``stop_event``.

        Returns the value of ``stop_event`` if given and triggered.
        Raises :class:`TimeoutError` if ``until`` elapses while
        ``stop_event`` is still pending.
        """
        if stop_event is not None:
            if stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
            stop_event._defused = True
            stop_event.add_callback(self._stop_callback)
        # The two loops below are step() unrolled with the heap and the
        # event counter in locals.  They must stay semantically identical
        # to step(); the only difference is the `until` horizon check.
        heap = self._heap
        pop = heappop
        count = self._event_count
        try:
            if until is None:
                while heap:
                    when, _priority, _seq, event = pop(heap)
                    self._now = when
                    count += 1
                    callbacks = event.callbacks
                    event.callbacks = None  # mark processed
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if event._ok is False and not event._defused:
                        raise event.value
                    if self._stop_requested is not None:
                        stopped = self._stop_requested
                        self._stop_requested = None
                        if stopped._ok is False:
                            raise stopped.value
                        return stopped.value
            else:
                while heap:
                    if heap[0][0] > until:
                        self._now = until
                        break
                    when, _priority, _seq, event = pop(heap)
                    self._now = when
                    count += 1
                    callbacks = event.callbacks
                    event.callbacks = None  # mark processed
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if event._ok is False and not event._defused:
                        raise event.value
                    if self._stop_requested is not None:
                        stopped = self._stop_requested
                        self._stop_requested = None
                        if stopped._ok is False:
                            raise stopped.value
                        return stopped.value
        finally:
            self._event_count = count
        if stop_event is not None:
            if not heap:
                raise StalledError(
                    f"event heap drained at t={self._now} with "
                    f"{stop_event!r} still pending")
            raise TimeoutError(
                f"simulation ended at t={self._now} before "
                f"{stop_event!r} triggered")
        if until is not None and self._now < until:
            self._now = until
        return None

    def _stop_callback(self, event: Event) -> None:
        self._stop_requested = event
