"""The paper's experimental apparatus: independent LogGP dials.

Section 3.2 of the paper modifies the communication layer so that each
LogGP parameter can be raised independently of the others:

* ``delta_o`` -- a stall loop executed by the *host* processor on every
  message send and before every message reception.
* ``delta_g`` -- a stall in the NIC transmit context *after* a message is
  injected onto the wire (so latency and overhead are unaffected; the
  receive context keeps running thanks to the LANai's dual contexts).
* ``delta_L`` -- a receiver-side delay queue: an arriving message is
  deposited normally but only marked *valid* ``delta_L`` microseconds
  after its arrival, leaving ``o`` and ``g`` untouched.
* ``delta_G`` -- a transmit-context stall after injecting each bulk
  fragment, proportional to the fragment size.

All values are *additive* to the baseline machine's parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.network.loggp import LogGPParams

__all__ = ["TuningKnobs"]


@dataclass(frozen=True)
class TuningKnobs:
    """Additive adjustments to the four LogGP parameters (µs, µs/byte)."""

    #: Host stall added to every send and every reception (µs).  The
    #: effective ``o`` becomes ``o_base + delta_o``.
    delta_o: float = 0.0
    #: Transmit-context stall after each injection (µs); effective ``g``
    #: becomes ``g_base + delta_g``.
    delta_g: float = 0.0
    #: Receiver delay-queue hold time (µs); effective ``L`` becomes
    #: ``L_base + delta_L``.
    delta_L: float = 0.0
    #: Added transmit stall per bulk byte (µs/byte); effective ``G``
    #: becomes ``G_base + delta_G``.
    delta_G: float = 0.0
    #: NIC-context *occupancy* per message (µs), charged at both the
    #: sending and receiving interface.  Not one of the paper's four
    #: dials — it is the parameter of the Flash study the paper compares
    #: against in Section 6 ("occupancy is part of our latency as well
    #: as gap"): it adds to every round trip AND serialises the rate at
    #: which each interface can process messages.
    delta_occ: float = 0.0

    def __post_init__(self) -> None:
        for field_name in ("delta_o", "delta_g", "delta_L", "delta_G",
                           "delta_occ"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(
                    f"{field_name} must be >= 0 (the apparatus can only "
                    f"slow the machine down), got {value}")

    @property
    def is_baseline(self) -> bool:
        """True when no dial is turned (the unmodified machine)."""
        return (self.delta_o == 0 and self.delta_g == 0
                and self.delta_L == 0 and self.delta_G == 0
                and self.delta_occ == 0)

    def with_changes(self, **changes: float) -> "TuningKnobs":
        """Return a copy with the given dials replaced."""
        return replace(self, **changes)

    # -- convenience constructors mirroring the paper's sweeps ------------
    @classmethod
    def added_overhead(cls, delta_o: float) -> "TuningKnobs":
        """Dial only overhead up by ``delta_o`` µs (Figure 5 sweeps)."""
        return cls(delta_o=delta_o)

    @classmethod
    def added_gap(cls, delta_g: float) -> "TuningKnobs":
        """Dial only gap up by ``delta_g`` µs (Figure 6 sweeps)."""
        return cls(delta_g=delta_g)

    @classmethod
    def added_latency(cls, delta_L: float) -> "TuningKnobs":
        """Dial only latency up by ``delta_L`` µs (Figure 7 sweeps)."""
        return cls(delta_L=delta_L)

    @classmethod
    def added_occupancy(cls, delta_occ: float) -> "TuningKnobs":
        """Dial only NIC occupancy up by ``delta_occ`` µs (the Flash
        study's parameter; an extension beyond the paper's sweeps)."""
        return cls(delta_occ=delta_occ)

    @classmethod
    def bulk_bandwidth(cls, mb_per_s: float,
                       base: LogGPParams) -> "TuningKnobs":
        """Dial ``G`` so the bulk bandwidth becomes ``mb_per_s`` MB/s.

        Used for the Figure 8 sweep ("maximum available bulk transfer
        bandwidth").  Requesting more bandwidth than the baseline provides
        yields the baseline (the apparatus can only slow the machine).
        """
        if mb_per_s <= 0:
            raise ValueError(f"bandwidth must be > 0, got {mb_per_s}")
        target_G = 1.0 / mb_per_s
        return cls(delta_G=max(0.0, target_G - base.Gap))

    # -- effective parameters ---------------------------------------------
    def effective(self, base: LogGPParams) -> LogGPParams:
        """The LogGP parameters of the dialed machine (for reporting)."""
        return base.with_changes(
            latency=base.latency + self.delta_L,
            send_overhead=base.send_overhead + self.delta_o,
            recv_overhead=base.recv_overhead + self.delta_o,
            gap=base.gap + self.delta_g,
            Gap=base.Gap + self.delta_G,
        )

    def describe(self) -> str:
        """One-line summary of the non-zero dials."""
        parts = []
        if self.delta_o:
            parts.append(f"+o={self.delta_o}us")
        if self.delta_g:
            parts.append(f"+g={self.delta_g}us")
        if self.delta_L:
            parts.append(f"+L={self.delta_L}us")
        if self.delta_G:
            parts.append(f"+G={self.delta_G}us/B")
        if self.delta_occ:
            parts.append(f"+occ={self.delta_occ}us")
        return " ".join(parts) if parts else "baseline"
