"""A Generic-Active-Messages-style communication layer.

One :class:`AmLayer` exists per node.  Exactly one host process (the SPMD
program) drives it; the layer's operations are generators that the host
process ``yield from``'s, so every microsecond of overhead is charged to
the host processor that incurs it, exactly as in the paper's apparatus:

* every send costs ``send_overhead + delta_o`` of host time;
* every reception costs ``recv_overhead + delta_o`` of host time, paid
  when the host *polls* (GAM is polling-based: the layer polls on every
  communication operation and while waiting);
* request/reply pairing follows Split-C semantics -- every request is
  answered, either explicitly by its handler or by an automatic ack, so a
  processor pays ``2 o`` per message it sends (the paper's ``2 m o``
  overhead model);
* one-way messages (used by NOW-sort) are acknowledged at NIC level
  (a CREDIT) and cost the sender only one ``o``;
* a fixed window of :data:`DEFAULT_WINDOW` outstanding messages provides
  flow control.  The window is intentionally *constant*, independent of
  ``L`` and ``g`` -- the paper observes ("a notable effect of our
  implementation") that this makes the effective gap rise at very large
  latencies because the pipeline can no longer be filled.

Handlers are generator functions ``handler(am, packet)`` registered in a
:class:`HandlerTable`.  A request handler may call :meth:`AmLayer.reply`
(or :meth:`AmLayer.reply_bulk`) at most once; GAM's rule that handlers
must not issue new *requests* is enforced.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, Optional

from repro.am.tuning import TuningKnobs
from repro.network.loggp import LogGPParams
from repro.network.packet import (BULK_FRAGMENT_BYTES, Packet, PacketKind,
                                  SHORT_PACKET_BYTES, new_xfer_id)
from repro.sim import Simulator

__all__ = ["AmLayer", "HandlerTable", "DEFAULT_WINDOW", "AmError"]

#: Fixed number of outstanding (unacknowledged) messages per node.  Eight
#: reproduces the paper's Table 2 latency/gap coupling: at ``delta_L`` = 100
#: µs the effective gap observed there (~27.7 µs) matches RTT/8.
DEFAULT_WINDOW = 8


class AmError(RuntimeError):
    """Protocol misuse (double reply, request from handler, ...)."""


class HandlerTable:
    """Named Active Message handlers for one application."""

    def __init__(self) -> None:
        self._handlers: Dict[str, Callable] = {}

    def register(self, name: str, handler: Callable) -> None:
        """Register generator function ``handler(am, packet)``."""
        if name in self._handlers:
            raise AmError(f"handler {name!r} already registered")
        self._handlers[name] = handler

    def lookup(self, name: str) -> Callable:
        """Resolve a handler by name; AmError if unregistered."""
        try:
            return self._handlers[name]
        except KeyError:
            raise AmError(f"no handler registered under {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._handlers


class AmLayer:
    """The per-node Active Message endpoint."""

    def __init__(self, sim: Simulator, node_id: int, params: LogGPParams,
                 knobs: TuningKnobs, wire: "Wire",  # noqa: F821
                 handlers: HandlerTable,
                 window: int = DEFAULT_WINDOW,
                 window_scope: str = "per-destination",
                 stats: Optional["ClusterStats"] = None,
                 tracer: Optional["MessageTracer"] = None,  # noqa: F821
                 faults: Optional["FaultPlan"] = None,  # noqa: F821
                 sanitizer: Optional["Sanitizer"] = None,  # noqa: F821
                 recorder: Optional["DepRecorder"] = None) -> None:  # noqa: F821
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if window_scope not in ("per-destination", "global"):
            raise ValueError(f"unknown window scope {window_scope!r}")
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.knobs = knobs
        self.handlers = handlers
        self.window = window
        self.window_scope = window_scope
        self.stats = stats
        self.tracer = tracer
        self.sanitizer = sanitizer
        #: simcost dependency recorder (see :mod:`repro.cost.recorder`).
        #: Observation-only, like the tracer and sanitizer: its hooks
        #: charge no simulated time, so recorded runs stay bit-identical.
        self.recorder = recorder
        #: Flow control is per destination endpoint, as in GAM: ``window``
        #: outstanding requests per (src, dst) pair.  A single-partner
        #: exchange (the calibration microbenchmark) is throttled to
        #: RTT/window at large L — the paper's Table 2 coupling — while
        #: all-to-all application traffic is not.
        self._credits: Dict[int, int] = {}
        #: xfer_id -> destination, to return the right pair's credit.
        self._credit_owner: Dict[int, int] = {}
        self._rx_queue: Deque[Packet] = deque()
        self._wakeup = None
        #: Cached per-message host costs.  ``params`` and ``knobs`` are
        #: frozen dataclasses, so these cannot drift; caching keeps two
        #: attribute-chain walks off the per-message service path.
        self._send_cost = params.send_overhead + knobs.delta_o
        self._recv_cost = params.recv_overhead + knobs.delta_o
        #: xfer_id -> callable(payload) run when the pairing reply (or
        #: reply-bulk completion) is processed by the host.
        self._on_reply: Dict[int, Callable[[Any], None]] = {}
        self._current_request: Optional[Packet] = None
        self._current_replied = False
        # Imported here to keep the am <-> network import graph acyclic
        # (the NIC needs TuningKnobs from this package).
        from repro.network.nic import Nic
        self.nic = Nic(sim, node_id, params, knobs, wire,
                       deliver_to_host=self._host_deliver,
                       return_credit=self._credit_returned,
                       tracer=tracer, stats=stats, faults=faults)

    # -- effective per-event costs ----------------------------------------
    @property
    def send_cost(self) -> float:
        """Host time to send one message: ``o_send + delta_o`` µs."""
        return self._send_cost

    @property
    def recv_cost(self) -> float:
        """Host time to receive one message: ``o_recv + delta_o`` µs."""
        return self._recv_cost

    def credits_for(self, dst: int) -> int:
        """Unused window slots toward ``dst`` (diagnostic)."""
        return self._credits.get(self._credit_key(dst), self.window)

    @property
    def credits_available(self) -> int:
        """Unused window slots toward the busiest destination
        (diagnostic; equals ``window`` when nothing is outstanding)."""
        if not self._credits:
            return self.window
        return min(self._credits.values())

    @property
    def rx_pending(self) -> int:
        """Messages delivered by the NIC but not yet polled."""
        return len(self._rx_queue)

    # -- NIC callbacks ------------------------------------------------------
    def _host_deliver(self, packet: Packet) -> None:
        self._rx_queue.append(packet)
        self._kick()

    def _credit_returned(self, xfer_id: int) -> None:
        dst = self._credit_owner.pop(xfer_id, None)
        if dst is None:
            raise AmError(
                f"stray credit for xfer {xfer_id} on node {self.node_id}")
        if self._credits[dst] >= self.window:
            raise AmError(f"credit overflow on node {self.node_id}")
        self._credits[dst] += 1
        self._kick()

    # -- wakeup signalling ---------------------------------------------------
    def _kick(self) -> None:
        """Wake the host process if it is blocked in :meth:`wait_until`."""
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed(None)

    def kick(self) -> None:
        """Public wakeup: make a parked :meth:`wait_until` re-check its
        predicate *now*.  For simulator processes outside the rank set
        (e.g. the serving client tier) that change state a host loop is
        waiting on without sending it a message."""
        self._kick()

    def _arm_wakeup(self):
        self._wakeup = self.sim.event(name=f"am-wakeup[{self.node_id}]")
        return self._wakeup

    # -- polling and waiting --------------------------------------------------
    def poll(self) -> Generator:
        """Drain delivered messages, paying receive overhead per message
        and running handlers.  The workhorse of the layer; called from
        every communication operation and wait loop, as in GAM.  A
        same-tick backlog (back-to-back packet arrivals) is drained as
        one batch: every message is serviced via a single
        :meth:`_service` frame driven from this generator, rather than
        a fresh receive/dispatch frame chain per message."""
        rx = self._rx_queue
        while rx:
            yield from self._service(rx.popleft())

    def _service(self, packet: Packet) -> Generator:
        """Receive and dispatch one message in a single generator frame.

        This is the flattened union of what used to be five frames
        (service / dispatch / request-dispatch / auto-ack / send-charge)
        — one frame per message keeps the host-resume path shallow when
        a batch of same-tick arrivals is drained.  The simulated-time
        charges are identical to the unflattened code by construction:
        one ``recv_cost`` timeout per message, one ``send_cost`` timeout
        per (auto-)ack, in the same order.
        """
        yield self.sim.timeout(self._recv_cost)
        if self.stats is not None:
            self.stats.on_host_recv(self.node_id, packet)
        if self.sanitizer is not None and packet.clock is not None:
            # The happens-before edge of this delivery: join the
            # sender's piggybacked snapshot into this rank's clock.
            self.sanitizer.on_deliver(self.node_id, packet.clock)
        if self.recorder is not None:
            self.recorder.on_recv(self.node_id, packet, self.sim.now,
                                  self._recv_cost)
        if packet.kind is PacketKind.REQUEST or (
                packet.kind is PacketKind.BULK_FRAGMENT
                and not packet.is_reply):
            outer_request = self._current_request
            outer_replied = self._current_replied
            self._current_request = packet
            self._current_replied = False
            try:
                if packet.handler is not None:
                    result = self.handlers.lookup(packet.handler)(
                        self, packet)
                    if result is not None:
                        yield from result
                if not packet.one_way and not self._current_replied:
                    # Split-C semantics: every request is acknowledged,
                    # so the sender's window credit returns and the
                    # sender pays its second `o` receiving the ack.
                    self._current_replied = True
                    yield self.sim.timeout(self._send_cost)
                    ack = Packet(kind=PacketKind.REPLY, src=self.node_id,
                                 dst=packet.src, payload=None,
                                 size_bytes=SHORT_PACKET_BYTES,
                                 is_read=packet.is_read)
                    ack.xfer_id = packet.xfer_id
                    self._record_send(ack)
                    self.nic.enqueue(ack)
            finally:
                self._current_request = outer_request
                self._current_replied = outer_replied
        else:
            callback = self._on_reply.pop(packet.xfer_id, None)
            if packet.handler is not None and packet.handler in self.handlers:
                result = self.handlers.lookup(packet.handler)(self, packet)
                if result is not None:
                    yield from result
            if callback is not None:
                callback(packet.payload)
        if self.tracer is not None:
            self.tracer.record("handled", packet.xfer_id, self.sim.now)

    def wait_until(self, predicate: Callable[[], bool],
                   wait: Optional[tuple] = None) -> Generator:
        """Poll until ``predicate()`` holds, sleeping between arrivals.

        The predicate may only become true as a consequence of this node's
        own polling (handler/reply processing) or of NIC-level credit
        returns; both kick the wakeup event.  The predicate is re-checked
        after *every* serviced message — a continuously refilling receive
        queue (e.g. a storm of lock retries) must not starve the waiter
        whose reply has already been processed.

        ``wait`` is an optional ``(kind, peer_ranks, detail)`` annotation
        for simsan's wait-for graph; callers pass it only when the
        sanitizer is on (it is ignored otherwise), and the bookkeeping
        is a single push/pop around the whole wait, off the per-message
        resume path.
        """
        watched = wait is not None and self.sanitizer is not None
        if watched:
            self.sanitizer.on_wait_enter(self.node_id, *wait)
        try:
            while True:
                if predicate():
                    return
                if self._rx_queue:
                    yield from self._service(self._rx_queue.popleft())
                    continue
                if self.recorder is None:
                    yield self._arm_wakeup()
                else:
                    # Same yield, bracketed by two now-reads: the parked
                    # interval becomes the next event's blocked time.
                    parked_at = self.sim.now
                    yield self._arm_wakeup()
                    self.recorder.on_blocked(self.node_id,
                                             self.sim.now - parked_at)
        finally:
            if watched:
                self.sanitizer.on_wait_exit(self.node_id)

    # -- sending --------------------------------------------------------------
    def _credit_key(self, dst: int) -> int:
        """Which credit pool a destination draws from.

        ``per-destination`` (GAM-like, the default) gives each endpoint
        pair its own window; ``global`` shares one pool across all
        destinations — the ablation under which even all-to-all traffic
        is throttled to RTT/window at large L.
        """
        return dst if self.window_scope == "per-destination" else -1

    def _acquire_credit(self, dst: int) -> Generator:
        """Block (polling, like a stalled GAM sender) until a window slot
        toward ``dst`` is free, then take it."""
        key = self._credit_key(dst)
        if key not in self._credits:
            self._credits[key] = self.window
        wait = None if self.sanitizer is None else \
            ("credit", (dst,), f"window slot toward rank {dst}")
        yield from self.wait_until(lambda: self._credits[key] > 0,
                                   wait=wait)
        self._credits[key] -= 1

    def _note_outstanding(self, packet: Packet) -> None:
        self._credit_owner[packet.xfer_id] = self._credit_key(packet.dst)

    def _record_send(self, packet: Packet) -> None:
        if self.sanitizer is not None:
            # Every host-level send passes through here; piggyback the
            # vector-clock snapshot (stable across NIC retransmissions,
            # which reuse the Packet object).
            packet.clock = self.sanitizer.on_send(self.node_id)
        if self.stats is not None:
            self.stats.on_send(self.node_id, packet)
        if self.tracer is not None:
            self.tracer.record("sent", packet.xfer_id, self.sim.now,
                               src=packet.src, dst=packet.dst,
                               kind=packet.kind.value)
        if self.recorder is not None:
            self.recorder.on_send(self.node_id, packet, self.sim.now,
                                  self._send_cost)

    def _guard_not_in_handler(self, operation: str) -> None:
        if self._current_request is not None:
            raise AmError(
                f"{operation} issued from inside a request handler on node "
                f"{self.node_id}; GAM handlers may only reply")

    def send_request(self, dst: int, handler: str, payload: Any = None,
                     size: int = SHORT_PACKET_BYTES, is_read: bool = False,
                     on_reply: Optional[Callable[[Any], None]] = None,
                     ) -> Generator:
        """Issue a short request; returns its ``xfer_id``.

        Non-blocking beyond the send overhead and any window stall;
        ``on_reply(payload)`` runs when this node processes the pairing
        reply.  Use :meth:`rpc` for the common blocking pattern.
        """
        self._guard_not_in_handler("send_request")
        yield from self._acquire_credit(dst)
        yield self.sim.timeout(self._send_cost)
        packet = Packet(kind=PacketKind.REQUEST, src=self.node_id, dst=dst,
                        handler=handler, payload=payload, size_bytes=size,
                        is_read=is_read)
        if on_reply is not None:
            self._on_reply[packet.xfer_id] = on_reply
        self._note_outstanding(packet)
        self._record_send(packet)
        self.nic.enqueue(packet)
        return packet.xfer_id

    def rpc(self, dst: int, handler: str, payload: Any = None,
            size: int = SHORT_PACKET_BYTES, is_read: bool = False,
            ) -> Generator:
        """Blocking request/response; returns the reply payload.

        Costs the issuing processor ``2 o`` (send + receive of the reply)
        plus the round trip, and the serving processor ``2 o``.
        """
        box = _ReplyBox()
        yield from self.send_request(dst, handler, payload=payload,
                                     size=size, is_read=is_read,
                                     on_reply=box.set)
        wait = None if self.sanitizer is None else \
            ("reply", (dst,), f"reply to {handler!r}")
        yield from self.wait_until(box.arrived, wait=wait)
        return box.value

    def send_oneway(self, dst: int, handler: str, payload: Any = None,
                    size: int = SHORT_PACKET_BYTES) -> Generator:
        """Fire-and-forget short message (NIC-level ack; sender pays one
        ``o``).  Used by NOW-sort's one-way Active Messages."""
        self._guard_not_in_handler("send_oneway")
        yield from self._acquire_credit(dst)
        yield self.sim.timeout(self._send_cost)
        packet = Packet(kind=PacketKind.REQUEST, src=self.node_id, dst=dst,
                        handler=handler, payload=payload, size_bytes=size,
                        one_way=True)
        self._note_outstanding(packet)
        self._record_send(packet)
        self.nic.enqueue(packet)
        return packet.xfer_id

    # -- bulk transfers ---------------------------------------------------------
    @staticmethod
    def fragment_count(nbytes: int) -> int:
        """Number of ≤4 KB fragments a bulk transfer is split into."""
        return max(1, math.ceil(nbytes / BULK_FRAGMENT_BYTES))

    def _enqueue_fragments(self, dst: int, handler: Optional[str],
                           payload: Any, nbytes: int, one_way: bool,
                           is_reply: bool, xfer_id: Optional[int] = None,
                           is_read: bool = False) -> Packet:
        count = self.fragment_count(nbytes)
        xfer = xfer_id if xfer_id is not None else new_xfer_id()
        remaining = nbytes
        last_packet = None
        for index in range(count):
            size = min(BULK_FRAGMENT_BYTES, remaining)
            remaining -= size
            last = index == count - 1
            packet = Packet(kind=PacketKind.BULK_FRAGMENT, src=self.node_id,
                            dst=dst, handler=handler if last else None,
                            payload=payload if last else None,
                            size_bytes=max(1, size), one_way=one_way,
                            is_bulk=True, fragment=(index, count),
                            is_read=is_read, is_reply=is_reply,
                            xfer_id=xfer,
                            message_bytes=nbytes if last else None)
            self.nic.enqueue(packet)
            last_packet = packet
        return last_packet

    def bulk_store(self, dst: int, handler: str, payload: Any,
                   nbytes: int,
                   on_complete: Optional[Callable[[Any], None]] = None,
                   ) -> Generator:
        """Bulk transfer to ``dst``; the handler runs there on arrival.

        Counts as one logical message occupying one window slot; the
        destination acknowledges with a short reply whose processing
        triggers ``on_complete``.  Returns the ``xfer_id``.
        """
        self._guard_not_in_handler("bulk_store")
        if nbytes <= 0:
            raise ValueError(f"bulk transfer of {nbytes} bytes")
        yield from self._acquire_credit(dst)
        yield self.sim.timeout(self._send_cost)
        last = self._enqueue_fragments(dst, handler, payload, nbytes,
                                       one_way=False, is_reply=False)
        if on_complete is not None:
            self._on_reply[last.xfer_id] = on_complete
        self._note_outstanding(last)
        self._record_send(last)
        return last.xfer_id

    def bulk_store_blocking(self, dst: int, handler: str, payload: Any,
                            nbytes: int) -> Generator:
        """Bulk store that waits for the destination's acknowledgement."""
        box = _ReplyBox()
        yield from self.bulk_store(dst, handler, payload, nbytes,
                                   on_complete=box.set)
        wait = None if self.sanitizer is None else \
            ("reply", (dst,), f"bulk acknowledgement from {handler!r}")
        yield from self.wait_until(box.arrived, wait=wait)
        return box.value

    def bulk_oneway(self, dst: int, handler: str, payload: Any,
                    nbytes: int) -> Generator:
        """One-way bulk transfer (NIC-level credit; no host-level ack)."""
        self._guard_not_in_handler("bulk_oneway")
        if nbytes <= 0:
            raise ValueError(f"bulk transfer of {nbytes} bytes")
        yield from self._acquire_credit(dst)
        yield self.sim.timeout(self._send_cost)
        last = self._enqueue_fragments(dst, handler, payload, nbytes,
                                       one_way=True, is_reply=False)
        self._note_outstanding(last)
        self._record_send(last)
        return last.xfer_id

    def bulk_rpc(self, dst: int, handler: str, payload: Any = None,
                 size: int = SHORT_PACKET_BYTES) -> Generator:
        """Short request whose reply is a *bulk* transfer (a GAM ``get``).

        Returns ``(payload, nbytes)`` from the remote handler's
        :meth:`reply_bulk`.  Flagged as a read for instrumentation.
        """
        box = _ReplyBox()
        yield from self.send_request(dst, handler, payload=payload,
                                     size=size, is_read=True,
                                     on_reply=box.set)
        wait = None if self.sanitizer is None else \
            ("reply", (dst,), f"bulk reply to {handler!r}")
        yield from self.wait_until(box.arrived, wait=wait)
        return box.value

    # -- replying (only valid inside a handler) -----------------------------
    def _take_current_request(self, operation: str) -> Packet:
        if self._current_request is None:
            raise AmError(f"{operation} outside a request handler")
        if self._current_replied:
            raise AmError("handler already replied to this request")
        if self._current_request.one_way:
            raise AmError(f"{operation} to a one-way message")
        self._current_replied = True
        return self._current_request

    def reply(self, payload: Any = None, size: int = SHORT_PACKET_BYTES,
              handler: Optional[str] = None) -> Generator:
        """Send the short reply for the request being handled."""
        request = self._take_current_request("reply")
        yield self.sim.timeout(self._send_cost)
        packet = Packet(kind=PacketKind.REPLY, src=self.node_id,
                        dst=request.src, handler=handler, payload=payload,
                        size_bytes=size, is_read=request.is_read)
        packet.xfer_id = request.xfer_id
        self._record_send(packet)
        self.nic.enqueue(packet)

    def reply_bulk(self, payload: Any, nbytes: int,
                   handler: Optional[str] = None) -> Generator:
        """Answer the request being handled with a bulk transfer."""
        request = self._take_current_request("reply_bulk")
        if nbytes <= 0:
            raise ValueError(f"bulk reply of {nbytes} bytes")
        yield self.sim.timeout(self._send_cost)
        last = self._enqueue_fragments(
            request.src, handler, (payload, nbytes), nbytes,
            one_way=False, is_reply=True, xfer_id=request.xfer_id,
            is_read=request.is_read)
        self._record_send(last)

    # -- draining ------------------------------------------------------------
    def drain(self) -> Generator:
        """Wait until every window slot is back (all sends acknowledged)."""
        wait = None
        if self.sanitizer is not None:
            owed = tuple(sorted(
                key for key, credits in self._credits.items()
                if credits < self.window and key >= 0))
            wait = ("drain", owed, "outstanding acknowledgements")
        yield from self.wait_until(
            lambda: all(c == self.window for c in self._credits.values()),
            wait=wait)


class _ReplyBox:
    """Mutable cell capturing a reply payload for blocking operations."""

    __slots__ = ("value", "_arrived")

    def __init__(self) -> None:
        self.value: Any = None
        self._arrived = False

    def set(self, payload: Any) -> None:
        self.value = payload
        self._arrived = True

    def arrived(self) -> bool:
        return self._arrived
