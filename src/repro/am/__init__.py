"""The Active Message layer, including the paper's tuning apparatus.

* :mod:`repro.am.tuning` -- :class:`TuningKnobs`, the independent dials
  for added overhead, gap, latency, and per-byte Gap (Section 3.2 of the
  paper).
* :mod:`repro.am.layer` -- the Generic-Active-Messages-style communication
  layer: short request/reply messages, one-way messages, bulk transfers
  with 4 KB fragmentation, polling handler dispatch, and the fixed
  flow-control window.
"""

from repro.am.tuning import TuningKnobs
from repro.am.layer import AmLayer, HandlerTable, DEFAULT_WINDOW

__all__ = ["TuningKnobs", "AmLayer", "HandlerTable", "DEFAULT_WINDOW"]
