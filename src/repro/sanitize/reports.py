"""Structured findings produced by the simsan sanitizer.

Three report shapes exist:

* :class:`RaceReport` -- two accesses to the same :class:`~repro.gas.
  memory.GlobalArray` element that are unordered by happens-before,
  with both access sites, ranks, simulated timestamps and vector-clock
  ticks.
* :class:`DeadlockReport` -- a cycle in the wait-for graph (each edge a
  :class:`WaitEdge`), or the stuck frontier when the event heap drained
  without a cycle.
* :class:`SanitizerReport` -- the per-run aggregate attached to
  :class:`~repro.cluster.machine.RunResult` when ``sanitize=True``.

:class:`DeadlockError` subclasses :class:`TimeoutError` deliberately:
every pre-existing caller that treated a never-completing run as "ended
before done" keeps working, while the harness taxonomy can distinguish
``deadlock:`` from ``budget exceeded:`` by catching the subclass first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["AccessSite", "RaceReport", "WaitEdge", "DeadlockReport",
           "DeadlockError", "SanitizerReport"]


@dataclass(frozen=True)
class AccessSite:
    """One shared-memory access: who, what kind, where in the source."""

    rank: int
    #: Access class: ``put``/``bulk_put`` (stores), ``add``/``min``
    #: (atomic accumulates), ``read``/``bulk_get`` (loads).
    kind: str
    #: ``file.py:line`` of the issuing application frame.
    site: str
    #: Simulated time the access was issued, microseconds.
    time_us: float
    #: The issuing rank's own vector-clock component at issue time.
    tick: int

    def render(self) -> str:
        return (f"{self.kind} by rank {self.rank} at {self.site} "
                f"(t={self.time_us:.1f})")

    def to_dict(self) -> dict:
        return {"rank": self.rank, "kind": self.kind, "site": self.site,
                "time_us": self.time_us, "tick": self.tick}


@dataclass
class RaceReport:
    """Two happens-before-unordered conflicting accesses to one element.

    Reports are deduplicated by (array, site pair): ``occurrences``
    counts how many element/ordering instances collapsed into this one
    report; ``location`` pins the first element it was seen on.
    """

    array: str
    index: int
    location: str
    prior: AccessSite
    access: AccessSite
    occurrences: int = 1

    def render(self) -> str:
        text = (f"race on {self.location}: {self.prior.render()} is "
                f"unordered with {self.access.render()}")
        if self.occurrences > 1:
            text += f" [x{self.occurrences}]"
        return text

    def to_dict(self) -> dict:
        return {"array": self.array, "index": self.index,
                "location": self.location,
                "prior": self.prior.to_dict(),
                "access": self.access.to_dict(),
                "occurrences": self.occurrences}


@dataclass(frozen=True)
class WaitEdge:
    """One rank blocked on other rank(s) for a stated reason."""

    rank: int
    #: ``lock`` | ``reply`` | ``credit`` | ``barrier`` | ``collective``
    #: | ``sync`` | ``drain`` | ``unknown``
    kind: str
    #: The peer rank(s) that must act for this rank to make progress
    #: (empty when unknown).
    on: Tuple[int, ...]
    detail: str

    def render(self) -> str:
        peers = ",".join(str(peer) for peer in self.on)
        target = f"rank(s) {peers}" if peers else "unknown peers"
        return f"rank {self.rank} waits on {target} [{self.kind}: " \
               f"{self.detail}]"

    def to_dict(self) -> dict:
        return {"rank": self.rank, "kind": self.kind,
                "on": list(self.on), "detail": self.detail}


@dataclass
class DeadlockReport:
    """A wait-for cycle, or the stuck frontier when no cycle exists."""

    #: ``cycle`` (edges form a loop) or ``frontier`` (blocked ranks with
    #: no cycle among them -- e.g. waiting on a rank that exited).
    kind: str
    edges: Tuple[WaitEdge, ...]
    time_us: float = 0.0

    @property
    def ranks(self) -> Tuple[int, ...]:
        """The blocked ranks involved, ascending."""
        return tuple(sorted({edge.rank for edge in self.edges}))

    def describe(self) -> str:
        chain = "; ".join(edge.render() for edge in self.edges)
        if self.kind == "cycle":
            return (f"wait-for cycle among ranks {list(self.ranks)} "
                    f"at t={self.time_us:.1f}: {chain}")
        return (f"stuck frontier at t={self.time_us:.1f} (no runnable "
                f"events, no wait-for cycle): {chain}")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "time_us": self.time_us,
                "ranks": list(self.ranks),
                "edges": [edge.to_dict() for edge in self.edges]}


class DeadlockError(TimeoutError):
    """The run can never complete; carries the :class:`DeadlockReport`.

    Subclasses :class:`TimeoutError` so callers that only distinguish
    "completed" from "did not complete" keep working unchanged; the
    harness catches this subclass first to label points ``deadlock:``.
    """

    def __init__(self, report: DeadlockReport) -> None:
        super().__init__(report.describe())
        self.report = report


@dataclass
class SanitizerReport:
    """Per-run aggregate of everything simsan observed.

    This (not the live :class:`~repro.sanitize.monitor.Sanitizer`) is
    what :class:`~repro.cluster.machine.RunResult` carries, so results
    stay picklable across the harness's process pool.  It is *not*
    serialised into the run cache -- sanitized runs bypass the cache.
    """

    n_nodes: int
    races: Tuple[RaceReport, ...] = ()
    accesses_checked: int = 0
    messages_clocked: int = 0
    shadow_cells: int = 0

    @property
    def clean(self) -> bool:
        return not self.races

    def render(self) -> str:
        lines: List[str] = [race.render() for race in self.races]
        lines.append(
            f"simsan: {len(self.races)} race(s); "
            f"{self.accesses_checked} access(es) checked, "
            f"{self.messages_clocked} message(s) clocked, "
            f"{self.shadow_cells} shadow cell(s)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"n_nodes": self.n_nodes,
                "races": [race.to_dict() for race in self.races],
                "accesses_checked": self.accesses_checked,
                "messages_clocked": self.messages_clocked,
                "shadow_cells": self.shadow_cells}
