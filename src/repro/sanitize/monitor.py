"""The live simsan monitor wired into one :class:`Cluster` run.

One :class:`Sanitizer` instance is shared by every rank's
:class:`~repro.am.layer.AmLayer` and :class:`~repro.gas.runtime.Proc`.
It owns the vector clocks (advanced purely by host-level message
traffic, see :mod:`repro.sanitize.clocks`), the shadow memory (race
checks, see :mod:`repro.sanitize.shadow`), and the wait-state book
keeping the deadlock detector (:mod:`repro.sanitize.deadlock`) walks.

Every hook is O(small) and adds *zero simulated cost*: a sanitized run
produces bit-identical ``runtime_us``/``events_processed`` to the same
run with the flag off.  The flag-off case never reaches this module at
all -- call sites are gated on ``sanitizer is not None``.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sanitize.clocks import ClockSet
from repro.sanitize.reports import RaceReport, SanitizerReport, WaitEdge
from repro.sanitize.shadow import ShadowMemory

__all__ = ["Sanitizer", "call_site"]

_INTERNAL_FILES: Optional[frozenset] = None


def _internal_files() -> frozenset:
    """Filenames of the runtime layers to skip when attributing an
    access to application source.  Built lazily so importing this
    module never drags in the AM/GAS stack."""
    global _INTERNAL_FILES  # simlint: disable=module-mutable-state - memoised constant
    if _INTERNAL_FILES is None:
        import repro.am.layer
        import repro.gas.collectives
        import repro.gas.runtime
        import repro.gas.sync
        import repro.sanitize.clocks
        import repro.sanitize.shadow
        modules = (repro.am.layer, repro.gas.collectives,
                   repro.gas.runtime, repro.gas.sync,
                   repro.sanitize.clocks, repro.sanitize.shadow)
        files = {__file__}
        for module in modules:
            files.add(module.__file__)
        _INTERNAL_FILES = frozenset(files)
    return _INTERNAL_FILES


def call_site() -> str:
    """``file.py:line`` of the nearest application frame on the stack.

    Generator delegation (``yield from``) keeps the whole chain of
    application generators on the Python stack while runtime code
    executes, so walking past the runtime modules lands on the app
    statement that issued the access.
    """
    internal = _internal_files()
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename in internal:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"


class Sanitizer:
    """Happens-before race detector + wait-for bookkeeping for one run."""

    def __init__(self, n_nodes: int, sim: "Simulator",  # noqa: F821
                 granularity: int = 1) -> None:
        self.n_nodes = n_nodes
        self.sim = sim
        self.clocks = ClockSet(n_nodes)
        self.shadow = ShadowMemory(self.clocks, granularity=granularity)
        self.messages_clocked = 0
        #: Per-rank stack of structured wait annotations; the top entry
        #: is what the rank is blocked on right now (nested waits occur:
        #: an rpc inside a barrier round).
        self._wait_stacks: List[List[WaitEdge]] = [
            [] for _rank in range(n_nodes)]
        #: rank -> DistributedLock it is currently spinning on.
        self._pursuing: Dict[int, "DistributedLock"] = {}  # noqa: F821
        #: (home_rank, lock_id) -> rank that holds the lock.
        self._lock_holder: Dict[Tuple[int, int], int] = {}

    # -- message clock transport ------------------------------------------
    def on_send(self, rank: int) -> Tuple[int, ...]:
        """Snapshot ``rank``'s clock for an outgoing host-level packet."""
        self.messages_clocked += 1
        return self.clocks.tick(rank)

    def on_deliver(self, rank: int, snapshot: Sequence[int]) -> None:
        """Join a received packet's clock into the receiving rank."""
        self.clocks.join(rank, snapshot)

    # -- shared-memory accesses -------------------------------------------
    def on_access(self, rank: int, array: "GlobalArray",  # noqa: F821
                  index: int, kind: str) -> None:
        self.shadow.record(rank, array, index, kind, call_site(),
                           self.sim.now)

    def on_range(self, rank: int, array: "GlobalArray",  # noqa: F821
                 start: int, count: int, kind: str) -> None:
        self.shadow.record_range(rank, array, start, count, kind,
                                 call_site(), self.sim.now)

    # -- wait-state bookkeeping -------------------------------------------
    def on_wait_enter(self, rank: int, kind: str,
                      peers: Tuple[int, ...], detail: str) -> None:
        self._wait_stacks[rank].append(
            WaitEdge(rank=rank, kind=kind, on=peers, detail=detail))

    def on_wait_exit(self, rank: int) -> None:
        self._wait_stacks[rank].pop()

    def current_wait(self, rank: int) -> Optional[WaitEdge]:
        stack = self._wait_stacks[rank]
        return stack[-1] if stack else None

    # -- lock bookkeeping --------------------------------------------------
    def on_lock_wait(self, rank: int,
                     lock: "DistributedLock") -> None:  # noqa: F821
        self._pursuing[rank] = lock

    def on_lock_acquired(self, rank: int,
                         lock: "DistributedLock") -> None:  # noqa: F821
        self._pursuing.pop(rank, None)
        self._lock_holder[(lock.home_rank, lock.lock_id)] = rank

    def on_lock_released(self, rank: int,
                         lock: "DistributedLock") -> None:  # noqa: F821
        self._lock_holder.pop((lock.home_rank, lock.lock_id), None)

    def lock_pursuits(self) -> Dict[int, Tuple["DistributedLock",  # noqa: F821
                                               Optional[int]]]:
        """rank -> (lock it spins on, current holder rank or None)."""
        out = {}
        for rank in sorted(self._pursuing):
            lock = self._pursuing[rank]
            holder = self._lock_holder.get((lock.home_rank, lock.lock_id))
            out[rank] = (lock, holder)
        return out

    # -- results -----------------------------------------------------------
    @property
    def races(self) -> List[RaceReport]:
        return self.shadow.races

    def report(self) -> SanitizerReport:
        """Plain-data summary safe to pickle across the process pool."""
        return SanitizerReport(
            n_nodes=self.n_nodes,
            races=tuple(self.shadow.races),
            accesses_checked=self.shadow.accesses_checked,
            messages_clocked=self.messages_clocked,
            shadow_cells=self.shadow.cell_count)
