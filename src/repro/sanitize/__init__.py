"""simsan: a happens-before race & deadlock sanitizer for simulated runs.

Opt in with ``Cluster(..., sanitize=True)`` or ``run_sweep(...,
sanitize=True)``; run any suite app under it from the command line with
``python -m repro.sanitize``.  See ARCHITECTURE.md section 11.
"""

from repro.sanitize.monitor import Sanitizer, call_site
from repro.sanitize.reports import (AccessSite, DeadlockError,
                                    DeadlockReport, RaceReport,
                                    SanitizerReport, WaitEdge)

__all__ = ["Sanitizer", "call_site", "AccessSite", "RaceReport",
           "WaitEdge", "DeadlockReport", "DeadlockError",
           "SanitizerReport"]
