"""Per-rank vector clocks driven by message traffic.

The happens-before relation of an SPMD run on this simulator is exactly
the transitive closure of (a) program order within a rank and (b) every
host-level Active Message delivery.  Barriers, collectives, lock
grant/release chains and write acknowledgements are all *built from*
those messages, so piggybacking a clock snapshot on each host-level
send and joining at delivery captures the full relation with no
special-casing per synchronisation primitive.

The protocol (FastTrack-style, send-increment only):

* each rank ``r`` keeps a clock ``C_r`` of length ``n_ranks``;
* on every host-level send, ``r`` increments ``C_r[r]`` and attaches
  ``snapshot = C_r`` to the packet (epochs are 1-based: ``C_r[q] == 0``
  means "never heard from ``q``", distinct from "saw its first send");
* on every host-level delivery, the receiver joins the attached
  snapshot element-wise into its own clock.

A prior access by rank ``q`` at tick ``t`` (``t = C_q[q]`` when it was
issued, i.e. the number of sends ``q`` had made) happens-before rank
``r``'s current point iff ``C_r[q] > t``: the snapshot attached to
``q``'s next send carries ``t + 1``, so any message chain from after
the access carries the evidence — and nothing sent before it does.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["ClockSet"]


class ClockSet:
    """The vector clocks of every rank in one run."""

    __slots__ = ("n_ranks", "_clocks")

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = n_ranks
        self._clocks: List[List[int]] = [
            [0] * n_ranks for _rank in range(n_ranks)]

    def tick(self, rank: int) -> Tuple[int, ...]:
        """Advance ``rank``'s own component for an outgoing message,
        then snapshot (so receivers of this send happen-after every
        access ``rank`` made before it)."""
        clock = self._clocks[rank]
        clock[rank] += 1
        return tuple(clock)

    def join(self, rank: int, snapshot: Sequence[int]) -> None:
        """Element-wise max of ``rank``'s clock with a received
        snapshot (the happens-before edge of a message delivery)."""
        clock = self._clocks[rank]
        for peer, tick in enumerate(snapshot):
            if tick > clock[peer]:
                clock[peer] = tick

    def clock_of(self, rank: int) -> List[int]:
        """``rank``'s live clock (read-only by convention)."""
        return self._clocks[rank]

    def tick_of(self, rank: int) -> int:
        """``rank``'s own current component (its access epoch)."""
        return self._clocks[rank][rank]

    def ordered(self, observer: int, owner: int, tick: int) -> bool:
        """Whether a prior access by ``owner`` at ``tick`` happens-
        before ``observer``'s current program point."""
        return self._clocks[observer][owner] > tick
