"""Per-element shadow state for every :class:`GlobalArray`.

Each tracked element keeps the FastTrack-style minimum needed to detect
races without storing full access histories:

* the last *store* epoch (one ``(rank, tick, site, time, kind)``);
* the latest *load* per rank (a later load by the same rank supersedes
  an earlier one for race purposes: any access ordered after the later
  load that races the earlier one also races the later one);
* the latest *atomic accumulate* per rank, with its mode.

Access classes and what counts as a race:

===========  =========  ===============================================
prior        current    verdict
===========  =========  ===============================================
store        store      race when unordered
store        load       race when unordered
store        accum      race when unordered
load         store      race when unordered
accum        store      race when unordered
accum        accum      race only when *modes differ* (``add`` vs
                        ``min``); same-mode accumulates commute at the
                        owner (remote RMW), as Connect's monotone
                        ``min``-hooking relies on
accum        load       exempt: reading a monotonically-updated cell is
                        the sanctioned concurrent pattern (Connect's
                        pointer chasing)
load         load       never a race
===========  =========  ===============================================

Direct ``proc.local(array)`` numpy access is *not* tracked (documented
limitation): it is this rank's own partition, and the suite uses it
only in phases separated from remote traffic by barriers.

Shadow keys are ``(array_id, element // granularity)``; ``granularity``
> 1 trades precision for memory (adjacent elements share one cell, so
distinct-element accesses in one granule can report as a race), exactly
the per-block mode the memory-bounds discussion in ARCHITECTURE.md
covers.  Array ids are SPMD-consistent across ranks because allocation
is collective and in-order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sanitize.clocks import ClockSet
from repro.sanitize.reports import AccessSite, RaceReport

__all__ = ["ShadowMemory", "STORES", "ACCUMS", "LOADS"]

STORES = frozenset({"put", "bulk_put"})
ACCUMS = frozenset({"add", "min"})
LOADS = frozenset({"read", "bulk_get"})


class _ShadowCell:
    __slots__ = ("write", "reads", "accums")

    def __init__(self) -> None:
        #: Last store: (rank, tick, site, time_us, kind) or None.
        self.write: Optional[Tuple[int, int, str, float, str]] = None
        #: rank -> (tick, site, time_us) of that rank's latest load.
        self.reads: Dict[int, Tuple[int, str, float]] = {}
        #: rank -> (tick, site, time_us, mode) of the latest accumulate.
        self.accums: Dict[int, Tuple[int, str, float, str]] = {}


class ShadowMemory:
    """Shadow cells plus the deduplicated race reports they produce."""

    def __init__(self, clocks: ClockSet, granularity: int = 1) -> None:
        if granularity < 1:
            raise ValueError(f"granularity must be >= 1, got {granularity}")
        self._clocks = clocks
        self.granularity = granularity
        self._cells: Dict[Tuple[int, int], _ShadowCell] = {}
        #: canonical (array_id, site/kind pair) -> report, insertion
        #: ordered (deterministic: the simulator is).
        self._races: Dict[tuple, RaceReport] = {}
        self.accesses_checked = 0

    @property
    def races(self) -> List[RaceReport]:
        return list(self._races.values())

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    # -- recording ---------------------------------------------------------
    def record(self, rank: int, array: "GlobalArray",  # noqa: F821
               index: int, kind: str, site: str, time_us: float) -> None:
        """Check one element access against the shadow state, then fold
        it in.  ``kind`` is one of the access classes above."""
        self.accesses_checked += 1
        key = (array.array_id, index // self.granularity)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = _ShadowCell()
        clock = self._clocks.clock_of(rank)
        tick = clock[rank]
        access = AccessSite(rank=rank, kind=kind, site=site,
                            time_us=time_us, tick=tick)
        write = cell.write
        write_races = (write is not None and write[0] != rank
                       and clock[write[0]] <= write[1])
        if kind in LOADS:
            if write_races:
                self._report(array, index, write, access)
            cell.reads[rank] = (tick, site, time_us)
            return
        if kind in ACCUMS:
            if write_races:
                self._report(array, index, write, access)
            for peer in sorted(cell.accums):
                prior_tick, prior_site, prior_time, mode = cell.accums[peer]
                if peer != rank and mode != kind \
                        and clock[peer] <= prior_tick:
                    self._report(array, index,
                                 (peer, prior_tick, prior_site,
                                  prior_time, mode), access)
            cell.accums[rank] = (tick, site, time_us, kind)
            return
        # Stores conflict with every unordered prior access class.
        if write_races:
            self._report(array, index, write, access)
        for peer in sorted(cell.reads):
            prior_tick, prior_site, prior_time = cell.reads[peer]
            if peer != rank and clock[peer] <= prior_tick:
                self._report(array, index,
                             (peer, prior_tick, prior_site, prior_time,
                              "read"), access)
        for peer in sorted(cell.accums):
            prior_tick, prior_site, prior_time, mode = cell.accums[peer]
            if peer != rank and clock[peer] <= prior_tick:
                self._report(array, index,
                             (peer, prior_tick, prior_site, prior_time,
                              mode), access)
        cell.write = (rank, tick, site, time_us, kind)
        cell.reads.clear()
        cell.accums.clear()

    def record_range(self, rank: int, array: "GlobalArray",  # noqa: F821
                     start: int, count: int, kind: str, site: str,
                     time_us: float) -> None:
        """Record a contiguous bulk access element by element (granule
        by granule when ``granularity`` > 1)."""
        step = self.granularity
        index = start
        last = start + count - 1
        while index <= last:
            self.record(rank, array, index, kind, site, time_us)
            # Jump to the next granule boundary, not the next element.
            index = (index // step + 1) * step

    # -- reporting ---------------------------------------------------------
    def _report(self, array: "GlobalArray", index: int,  # noqa: F821
                prior: tuple, access: AccessSite) -> None:
        prior_rank, prior_tick, prior_site, prior_time, prior_kind = prior
        prior_access = AccessSite(rank=prior_rank, kind=prior_kind,
                                  site=prior_site, time_us=prior_time,
                                  tick=prior_tick)
        # Order-insensitive dedup: the same site pair observed in either
        # order (possible across elements) is one logical race.
        pair = tuple(sorted(((prior_access.kind, prior_access.site),
                             (access.kind, access.site))))
        key = (array.array_id, pair)
        known = self._races.get(key)
        if known is not None:
            known.occurrences += 1
            return
        self._races[key] = RaceReport(
            array=array.name, index=index,
            location=array.element_name(index),
            prior=prior_access, access=access)
