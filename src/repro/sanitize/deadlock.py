"""Wait-for-graph deadlock diagnosis.

Two entry points, both invoked by :meth:`Cluster.run` when a sanitized
run stops making progress:

* :func:`diagnose_stall` -- the event heap drained while rank drivers
  are still alive (:class:`~repro.sim.engine.StalledError`).  Build the
  wait-for graph from the sanitizer's structured wait annotations plus
  any lock pursuits and search it for a cycle; report the cycle, or the
  stuck frontier when there is none (e.g. a rank waiting on a peer that
  already exited).
* :func:`lock_cycle` -- the livelock budget tripped
  (:class:`~repro.gas.runtime.LivelockError`).  Lock acquisition spins,
  so the heap never drains; the only wait-for edges available are lock
  pursuits (rank -> current holder), which form a functional graph that
  is walked for a cycle.  Returns ``None`` when the livelock is not a
  lock cycle (genuine contention), in which case the original
  LivelockError stands.

Each rank contributes at most its *innermost* wait (top of the wait
stack) plus its lock pursuit, so the graph has O(ranks) edges and the
cycle search is a small DFS.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sanitize.monitor import Sanitizer
from repro.sanitize.reports import DeadlockReport, WaitEdge

__all__ = ["diagnose_stall", "lock_cycle"]


def _pursuit_edge(rank: int, lock: "DistributedLock",  # noqa: F821
                  holder: int) -> WaitEdge:
    return WaitEdge(
        rank=rank, kind="lock", on=(holder,),
        detail=f"lock {lock.lock_id}@{lock.home_rank} held by "
               f"rank {holder}")


def lock_cycle(san: Sanitizer) -> Optional[DeadlockReport]:
    """Walk rank -> lock-holder pursuit edges for a cycle."""
    edges: Dict[int, WaitEdge] = {}
    succ: Dict[int, int] = {}
    for rank, (lock, holder) in san.lock_pursuits().items():
        if holder is None or holder == rank:
            continue
        succ[rank] = holder
        edges[rank] = _pursuit_edge(rank, lock, holder)
    for start in sorted(succ):
        seen: List[int] = []
        rank = start
        while rank in succ and rank not in seen:
            seen.append(rank)
            rank = succ[rank]
        if rank in seen:
            cycle = seen[seen.index(rank):]
            return DeadlockReport(
                kind="cycle",
                edges=tuple(edges[member] for member in cycle),
                time_us=san.sim.now)
    return None


def _candidate_edges(san: Optional[Sanitizer],
                     drivers: Sequence["Process"],  # noqa: F821
                     alive: List[int]) -> Dict[int, List[WaitEdge]]:
    """Per blocked rank, the wait-for edges it might be stuck behind."""
    pursuits = san.lock_pursuits() if san is not None else {}
    out: Dict[int, List[WaitEdge]] = {}
    for rank in alive:
        candidates: List[WaitEdge] = []
        if san is not None:
            top = san.current_wait(rank)
            if top is not None:
                candidates.append(top)
            if rank in pursuits:
                lock, holder = pursuits[rank]
                if holder is not None and holder != rank:
                    candidates.append(_pursuit_edge(rank, lock, holder))
        if not candidates:
            event = drivers[rank].waiting_on
            name = repr(event) if event is not None else "nothing runnable"
            candidates.append(WaitEdge(rank=rank, kind="unknown", on=(),
                                       detail=f"blocked on {name}"))
        out[rank] = candidates
    return out


def _find_cycle(candidates: Dict[int, List[WaitEdge]]
                ) -> Optional[List[WaitEdge]]:
    """DFS over the multigraph of candidate edges; first cycle wins.

    Edges whose target already exited (not in ``candidates``) cannot
    close a cycle and are skipped; they still show in the frontier.
    """
    blocked = set(candidates)
    color: Dict[int, int] = {}  # absent=white, 1=on current path, 2=done

    def visit(rank: int,
              trail: List[Tuple[int, WaitEdge]]
              ) -> Optional[List[WaitEdge]]:
        color[rank] = 1
        for edge in candidates[rank]:
            for peer in edge.on:
                if peer not in blocked:
                    continue
                if color.get(peer) == 1:
                    # peer is an ancestor on the current path (or this
                    # very rank): the cycle is every trail edge from
                    # peer's departure onward, closed by this edge.
                    start = next((i for i, (step, _e) in enumerate(trail)
                                  if step == peer), len(trail))
                    cycle = [step_edge for _r, step_edge in trail[start:]]
                    cycle.append(edge)
                    return cycle
                if color.get(peer) is None:
                    trail.append((rank, edge))
                    found = visit(peer, trail)
                    trail.pop()
                    if found is not None:
                        return found
        color[rank] = 2
        return None

    for rank in sorted(candidates):
        if color.get(rank) is None:
            found = visit(rank, [])
            if found is not None:
                return found
    return None


def diagnose_stall(san: Optional[Sanitizer],
                   drivers: Sequence["Process"],  # noqa: F821
                   now: float) -> DeadlockReport:
    """Explain a drained event heap with live, blocked rank drivers."""
    alive = [rank for rank, drv in enumerate(drivers) if drv.is_alive]
    if not alive:
        # Defensive: StalledError with every driver finished should be
        # impossible (the stop event would have fired).
        return DeadlockReport(kind="frontier", edges=(), time_us=now)
    candidates = _candidate_edges(san, drivers, alive)
    cycle = _find_cycle(candidates)
    if cycle is not None:
        return DeadlockReport(kind="cycle", edges=tuple(cycle),
                              time_us=now)
    frontier = tuple(candidates[rank][0] for rank in sorted(candidates))
    return DeadlockReport(kind="frontier", edges=frontier, time_us=now)
