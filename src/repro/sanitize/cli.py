"""``python -m repro.sanitize`` — run an app under the simsan sanitizer.

Apps are named either by their suite name (``Radix``, ``Connect``, ...,
matched against :func:`repro.apps.default_suite`) or as
``path/to/file.py:ClassName`` for ad-hoc applications (the planted
fixtures use this form).  Exit codes mirror simlint: 0 clean, 1 races
or a deadlock, 2 usage errors.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.apps import SUITE_ORDER, default_suite
from repro.cluster.machine import Cluster
from repro.gas.runtime import LivelockError
from repro.sanitize.reports import DeadlockError

__all__ = ["main", "load_app"]


def load_app(spec: str, scale: float = 1.0):
    """Resolve an application named on the command line.

    ``spec`` is a suite app name, or ``file.py:ClassName`` to load an
    :class:`~repro.apps.base.Application` subclass from a file.
    """
    if ":" in spec:
        path_text, class_name = spec.rsplit(":", 1)
        path = Path(path_text)
        if not path.is_file():
            raise FileNotFoundError(f"no such file: {path}")
        module_spec = importlib.util.spec_from_file_location(
            f"_simsan_app_{path.stem}", path)
        module = importlib.util.module_from_spec(module_spec)
        module_spec.loader.exec_module(module)
        try:
            cls = getattr(module, class_name)
        except AttributeError:
            raise KeyError(
                f"{path} defines no class {class_name!r}") from None
        return cls()
    for app in default_suite(scale):
        if app.name == spec:
            return app
    known = ", ".join(SUITE_ORDER)
    raise KeyError(f"unknown app {spec!r}; suite apps are: {known}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="simsan: happens-before race & deadlock sanitizer")
    parser.add_argument("apps", nargs="*",
                        help="suite app names (see --all) or "
                        "path/to/app.py:ClassName specs")
    parser.add_argument("--all", action="store_true",
                        help="run the whole ten-app suite")
    parser.add_argument("--nodes", type=int, default=8,
                        help="cluster size (default: 8)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="suite input scale (default: 1.0)")
    parser.add_argument("--seed", type=int, default=11,
                        help="run seed (default: 11)")
    parser.add_argument("--run-limit-us", type=float, default=None,
                        help="simulated-time budget per run")
    parser.add_argument("--livelock-limit", type=int, default=200_000,
                        help="failed-lock budget per rank")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    return parser


def _sanitized_run(app, args: argparse.Namespace) -> dict:
    """Run one app under the sanitizer; never raises for findings."""
    cluster = Cluster(args.nodes, seed=args.seed,
                      run_limit_us=args.run_limit_us,
                      livelock_limit=args.livelock_limit,
                      sanitize=True)
    entry = {"app": app.name, "races": [], "deadlock": None,
             "failure": None}
    try:
        result = cluster.run(app)
    except DeadlockError as exc:
        entry["deadlock"] = exc.report.to_dict()
        entry["failure"] = str(exc)
        return entry
    except (LivelockError, TimeoutError) as exc:
        entry["failure"] = f"{type(exc).__name__}: {exc}"
        return entry
    report = result.sanitizer
    entry["races"] = [race.to_dict() for race in report.races]
    entry["report"] = report.to_dict()
    entry["runtime_us"] = result.runtime_us
    return entry


def _render_text(entries: List[dict]) -> str:
    lines: List[str] = []
    dirty = 0
    for entry in entries:
        findings = len(entry["races"]) \
            + (1 if entry["deadlock"] is not None else 0)
        if findings or entry["failure"]:
            dirty += 1
        for race in entry["races"]:
            prior, access = race["prior"], race["access"]
            lines.append(
                f"{entry['app']}: race on {race['location']}: "
                f"{prior['kind']} by rank {prior['rank']} at "
                f"{prior['site']} is unordered with {access['kind']} by "
                f"rank {access['rank']} at {access['site']} "
                f"[x{race['occurrences']}]")
        if entry["failure"]:
            lines.append(f"{entry['app']}: {entry['failure']}")
    lines.append(
        f"simsan: {dirty} finding(s) across {len(entries)} app(s)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.all:
        apps = default_suite(args.scale)
    else:
        if not args.apps:
            parser.print_usage(sys.stderr)
            print("simsan: name at least one app or pass --all",
                  file=sys.stderr)
            return 2
        try:
            apps = [load_app(spec, args.scale) for spec in args.apps]
        except (KeyError, FileNotFoundError) as exc:
            print(f"simsan: {exc.args[0]}", file=sys.stderr)
            return 2

    entries = [_sanitized_run(app, args) for app in apps]
    dirty = any(entry["races"] or entry["deadlock"] is not None
                or entry["failure"] for entry in entries)
    if args.format == "json":
        print(json.dumps({"version": 1, "apps": entries}, indent=2))
    else:
        print(_render_text(entries))
    return 1 if dirty else 0
