"""Entry point for ``python -m repro.sanitize``."""

import sys

from repro.sanitize.cli import main

if __name__ == "__main__":
    sys.exit(main())
