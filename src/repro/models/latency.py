"""The latency sensitivity model (Section 5.3).

Only operations that wait on a network round trip feel latency: blocking
reads (and synchronisation).  For an application performing ``n_reads``
blocking reads on its critical processor, each read's round trip grows
by ``2 ΔL``:

    r_pred = r_base + 2 · n_reads · ΔL

The paper notes this simple model is accurate only for EM3D(read) — the
worst-case application that does nothing to tolerate latency — while
applications with any latency tolerance fall below it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReadLatencyModel"]


@dataclass(frozen=True)
class ReadLatencyModel:
    """``r_base + 2 · reads · ΔL`` for blocking-read applications."""

    base_runtime_us: float
    #: Blocking read *operations* by the busiest processor.  Note a
    #: read operation is two messages (request + reply); Table 4's
    #: "% reads" counts messages, so reads ≈ max_msgs · pct_reads / 2.
    reads_per_proc: float

    def __post_init__(self) -> None:
        if self.base_runtime_us <= 0:
            raise ValueError("base_runtime_us must be > 0")
        if self.reads_per_proc < 0:
            raise ValueError("reads_per_proc must be >= 0")

    @classmethod
    def from_message_counts(cls, base_runtime_us: float,
                            max_messages_per_proc: int,
                            percent_reads: float) -> "ReadLatencyModel":
        """Build from Table 4 columns (messages and read percentage)."""
        reads = max_messages_per_proc * (percent_reads / 100.0) / 2.0
        return cls(base_runtime_us=base_runtime_us,
                   reads_per_proc=reads)

    def predict_runtime(self, delta_L_us: float) -> float:
        """Predicted runtime (µs) at added latency ``delta_L_us``."""
        if delta_L_us < 0:
            raise ValueError("delta_L_us must be >= 0")
        return (self.base_runtime_us
                + 2.0 * self.reads_per_proc * delta_L_us)

    def predict_slowdown(self, delta_L_us: float) -> float:
        """Predicted runtime over the baseline runtime."""
        return self.predict_runtime(delta_L_us) / self.base_runtime_us
