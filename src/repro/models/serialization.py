"""The serialization-corrected overhead model (Section 5.1's analysis).

The paper explains the simple ``r + 2·m·Δo`` model's under-prediction:
"If a processor Pn serializes the program in a phase n messages long,
when we increase o by Δo, then the serial phase will add to the overall
run time by n·Δo" — invisible to the busiest-processor term when the
serializing processor is not the busiest.  The corrected model is

    r_pred = r_orig + 2·m·Δo + 2·n_serial·Δo

where ``n_serial`` is the number of message events on the program's
serial chain (for Radix: the cyclic-shift histogram, length ∝ radix·P).
The model also quantifies the paper's parallel-efficiency observation:
speedup *decreases* as overhead increases for any program with a serial
portion, because ``n_serial`` grows with P while ``m`` shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.overhead import OverheadModel

__all__ = ["SerializedOverheadModel", "estimate_serial_messages"]


@dataclass(frozen=True)
class SerializedOverheadModel:
    """``r + 2·m·Δo + 2·n_serial·Δo``."""

    base_runtime_us: float
    max_messages_per_proc: int
    #: Message events on the serial chain beyond the busiest processor's
    #: own share.
    serial_messages: float

    def __post_init__(self) -> None:
        if self.base_runtime_us <= 0:
            raise ValueError("base_runtime_us must be > 0")
        if self.max_messages_per_proc < 0:
            raise ValueError("max_messages_per_proc must be >= 0")
        if self.serial_messages < 0:
            raise ValueError("serial_messages must be >= 0")

    def predict_runtime(self, delta_o_us: float) -> float:
        """Predicted runtime (µs) at added overhead ``delta_o_us``."""
        if delta_o_us < 0:
            raise ValueError("delta_o_us must be >= 0")
        return (self.base_runtime_us
                + 2.0 * self.max_messages_per_proc * delta_o_us
                + 2.0 * self.serial_messages * delta_o_us)

    def predict_slowdown(self, delta_o_us: float) -> float:
        """Predicted runtime over the baseline runtime."""
        return self.predict_runtime(delta_o_us) / self.base_runtime_us

    def simple_model(self) -> OverheadModel:
        """The uncorrected model, for side-by-side comparison."""
        return OverheadModel(
            base_runtime_us=self.base_runtime_us,
            max_messages_per_proc=self.max_messages_per_proc)

    def parallel_efficiency_ratio(self, delta_o_us: float,
                                  other: "SerializedOverheadModel"
                                  ) -> float:
        """This configuration's predicted runtime over another's at the
        same Δo — how the serial term erodes scaling as o grows."""
        return (self.predict_runtime(delta_o_us)
                / other.predict_runtime(delta_o_us))


def estimate_serial_messages(base_runtime_us: float,
                             max_messages_per_proc: int,
                             measured_runtime_us: float,
                             delta_o_us: float) -> float:
    """Back out ``n_serial`` from one measured high-overhead point.

    Solves the corrected model for the serial term; clamped at zero
    (measurements below the simple model imply overlap, not serial
    work).
    """
    if delta_o_us <= 0:
        raise ValueError("delta_o_us must be > 0 to estimate")
    simple = OverheadModel(base_runtime_us=base_runtime_us,
                           max_messages_per_proc=max_messages_per_proc)
    residual = measured_runtime_us - simple.predict_runtime(delta_o_us)
    return max(0.0, residual / (2.0 * delta_o_us))
