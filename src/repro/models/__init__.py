"""The paper's analytical sensitivity models (Section 5).

* :mod:`repro.models.overhead` -- ``r_pred = r_orig + 2 m Δo`` where
  ``m`` is the maximum number of messages sent by any processor
  (Table 5), plus the serialization-effect discussion.
* :mod:`repro.models.gap` -- the two bracketing gap models: *uniform*
  (slowdown only once the gap exceeds the average message interval) and
  *burst* (``r_pred = r_base + m Δg``; Table 6 -- the one the data
  follow, because communication is bursty).
* :mod:`repro.models.latency` -- the round-trip model for read-based
  applications (accurate only for EM3D(read), the worst-case blocking
  reader, as in the paper).
* :mod:`repro.models.serialization` -- the serialization-corrected
  overhead model implied by Section 5.1's analysis of Radix.
"""

from repro.models.overhead import OverheadModel
from repro.models.gap import BurstGapModel, UniformGapModel
from repro.models.latency import ReadLatencyModel
from repro.models.serialization import (SerializedOverheadModel,
                                        estimate_serial_messages)

__all__ = ["OverheadModel", "BurstGapModel", "UniformGapModel",
           "ReadLatencyModel", "SerializedOverheadModel",
           "estimate_serial_messages"]
