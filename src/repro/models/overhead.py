"""The overhead sensitivity model (Section 5.1).

Added overhead is paid on every send and every receive.  In Split-C all
communication events pair into request/response, so a processor that
sends ``m`` messages pays ``2 m Δo``:  for each request it sends it also
receives the paired response, and for each response it sends it already
received the paired request.  Assuming the application runs at the speed
of the processor that sends the most messages:

    r_pred(Δo) = r_orig + 2 · m_max · Δo

The model under-predicts applications with serial phases (Radix's global
histogram): a phase serialised on one processor adds ``n Δo`` that the
busiest-processor term does not capture, and the under-prediction grows
with P — the paper's *serialization effect*.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OverheadModel"]


@dataclass(frozen=True)
class OverheadModel:
    """Predicts runtime under added overhead for one application run.

    Parameters
    ----------
    base_runtime_us:
        Runtime with the unmodified machine.
    max_messages_per_proc:
        ``m``: the maximum number of messages sent by any processor
        during the baseline run (Table 4 column).
    """

    base_runtime_us: float
    max_messages_per_proc: int

    def __post_init__(self) -> None:
        if self.base_runtime_us <= 0:
            raise ValueError("base_runtime_us must be > 0")
        if self.max_messages_per_proc < 0:
            raise ValueError("max_messages_per_proc must be >= 0")

    def predict_runtime(self, delta_o_us: float) -> float:
        """``r_orig + 2 m Δo`` in microseconds."""
        if delta_o_us < 0:
            raise ValueError("delta_o_us must be >= 0")
        return (self.base_runtime_us
                + 2.0 * self.max_messages_per_proc * delta_o_us)

    def predict_slowdown(self, delta_o_us: float) -> float:
        """Predicted runtime over the baseline runtime."""
        return self.predict_runtime(delta_o_us) / self.base_runtime_us

    def sensitivity_us_per_us(self) -> float:
        """d(runtime)/d(Δo): the model's slope, ``2 m``."""
        return 2.0 * self.max_messages_per_proc
