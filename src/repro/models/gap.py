"""The two gap sensitivity models (Section 5.2).

Gap is only felt on messages the application tries to send faster than
the gap allows, so the prediction depends on the assumed inter-message
interval distribution:

* **uniform** -- every message is sent at the application's average
  interval ``I``; no effect until ``g > I``, then each of the busiest
  processor's ``m`` messages stalls ``g − I``:

      r_pred = r_base + m (g_total − I)   if g_total > I, else r_base

* **burst** -- all messages go in maximal-rate bursts, so every message
  feels the *added* gap in full:

      r_pred = r_base + m Δg

The paper finds the applications' linear response matches the burst
model (communication is bursty), with the expected over-prediction since
not every message is inside a burst.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BurstGapModel", "UniformGapModel"]


@dataclass(frozen=True)
class BurstGapModel:
    """``r_base + m Δg``: every message pays the added gap."""

    base_runtime_us: float
    max_messages_per_proc: int

    def __post_init__(self) -> None:
        if self.base_runtime_us <= 0:
            raise ValueError("base_runtime_us must be > 0")
        if self.max_messages_per_proc < 0:
            raise ValueError("max_messages_per_proc must be >= 0")

    def predict_runtime(self, delta_g_us: float) -> float:
        """Predicted runtime (µs) at added gap ``delta_g_us``."""
        if delta_g_us < 0:
            raise ValueError("delta_g_us must be >= 0")
        return (self.base_runtime_us
                + self.max_messages_per_proc * delta_g_us)

    def predict_slowdown(self, delta_g_us: float) -> float:
        """Predicted runtime over the baseline runtime."""
        return self.predict_runtime(delta_g_us) / self.base_runtime_us


@dataclass(frozen=True)
class UniformGapModel:
    """No effect until the total gap exceeds the average interval."""

    base_runtime_us: float
    max_messages_per_proc: int
    #: The application's average message interval ``I`` (Table 4).
    message_interval_us: float
    #: The machine's baseline gap (so ``g_total = g_base + Δg``).
    base_gap_us: float

    def __post_init__(self) -> None:
        if self.base_runtime_us <= 0:
            raise ValueError("base_runtime_us must be > 0")
        if self.message_interval_us <= 0:
            raise ValueError("message_interval_us must be > 0")

    def predict_runtime(self, delta_g_us: float) -> float:
        if delta_g_us < 0:
            raise ValueError("delta_g_us must be >= 0")
        total_gap = self.base_gap_us + delta_g_us
        if total_gap <= self.message_interval_us:
            return self.base_runtime_us
        stall = total_gap - self.message_interval_us
        return (self.base_runtime_us
                + self.max_messages_per_proc * stall)

    def predict_slowdown(self, delta_g_us: float) -> float:
        """Predicted runtime over the baseline runtime."""
        return self.predict_runtime(delta_g_us) / self.base_runtime_us
