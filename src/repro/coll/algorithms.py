"""The algorithm registry: >= 2 interchangeable schedules per primitive.

Every implementation is a generator with the same signature as its
primitive's dispatch entry point (see :mod:`repro.coll.api`) and
produces the same result on every rank — only the message schedule (and
therefore the simulated cost) differs.  Following Barchet-Estefanel &
Mounie, the winning schedule flips with message size, P, and the LogGP
parameters, which is what the tuner exploits.

The legacy ``gas.collectives`` schedules are registered under their
historical names (``dissemination`` barrier, ``binomial`` broadcast /
reduce / allreduce) and remain the fixed-policy defaults, so a cluster
that never asks for tuning is bit-identical to one predating this
package.

Eligibility: a few schedules require structural properties the caller
must declare (SPMD-uniformly) because they cannot be inferred from one
rank's arguments alone — ``allreduce``'s ring needs a sliceable vector
value with an elementwise ``op``; ``alltoall``'s Bruck schedule needs a
dense, uniform-size value set.  :func:`eligible_algorithms` encodes
those rules.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.coll.core import (TOKEN_BYTES, ceil_log2, recv_value,
                             send_value)
from repro.gas import collectives as legacy

__all__ = ["PRIMITIVES", "DEFAULT_ALGORITHMS", "registry",
           "algorithms_for", "get_algorithm", "eligible_algorithms",
           "CHAIN_SEGMENT_BYTES"]

#: Every primitive the subsystem dispatches.
PRIMITIVES = ("barrier", "broadcast", "reduce", "allreduce",
              "gather", "scatter", "allgather", "alltoall")

#: The fixed-policy default per primitive: the legacy schedule where one
#: exists (bit-identical to the pre-``repro.coll`` machine), otherwise
#: the simplest schedule.
DEFAULT_ALGORITHMS = {
    "barrier": "dissemination",
    "broadcast": "binomial",
    "reduce": "binomial",
    "allreduce": "binomial",
    "gather": "flat",
    "scatter": "flat",
    "allgather": "ring",
    "alltoall": "flat",
}

#: Segment size of the pipelined chain broadcast (one bulk fragment).
CHAIN_SEGMENT_BYTES = 4096


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------

def barrier_dissemination(proc: "Proc") -> Generator:  # noqa: F821
    """The legacy dissemination barrier (ceil(log2 P) rounds)."""
    yield from legacy.barrier(proc)


def barrier_tree(proc: "Proc") -> Generator:  # noqa: F821
    """Binomial gather of arrival tokens to rank 0, binomial release."""
    n = proc.n_ranks
    if n > 1:
        epoch = proc.next_epoch("coll:barrier")
        rank = proc.rank
        # Up phase: each subtree root forwards its arrival once every
        # child subtree has reported.
        for k in range(ceil_log2(n)):
            bit = 1 << k
            if rank & bit:
                yield from send_value(
                    proc, rank - bit, ("cbar", epoch, "up", rank), None,
                    TOKEN_BYTES)
                break
            peer = rank + bit
            if peer < n:
                yield from recv_value(
                    proc, ("cbar", epoch, "up", peer), peer,
                    f"tree barrier epoch {epoch} arrival from {peer}")
        # Down phase: binomial broadcast of the release token.
        if rank != 0:
            parent = rank - (1 << (rank.bit_length() - 1))
            yield from recv_value(
                proc, ("cbar", epoch, "down", rank), parent,
                f"tree barrier epoch {epoch} release")
        for k in reversed(range(ceil_log2(n))):
            peer = rank + (1 << k)
            if rank < (1 << k) and peer < n:
                yield from send_value(
                    proc, peer, ("cbar", epoch, "down", peer), None,
                    TOKEN_BYTES)
    if proc.stats is not None:
        proc.stats.on_barrier(proc.rank)


# ---------------------------------------------------------------------------
# broadcast
# ---------------------------------------------------------------------------

def broadcast_binomial(proc: "Proc", value: Any = None,  # noqa: F821
                       root: int = 0, size: int = 32,
                       bulk: bool = False) -> Generator:
    """The legacy binomial-tree broadcast."""
    result = yield from legacy.broadcast(proc, value, root=root,
                                         size=size, bulk=bulk)
    return result


def broadcast_chain(proc: "Proc", value: Any = None,  # noqa: F821
                    root: int = 0, size: int = 32,
                    bulk: bool = False) -> Generator:
    """Segmented pipelined chain: rank ``i`` forwards each segment to
    ``i + 1`` as soon as it arrives.

    Latency grows with P, but for bulk payloads much larger than one
    segment the pipeline keeps every link busy, approaching one full
    payload time regardless of depth (van de Geijn's pipelined trees).
    """
    n = proc.n_ranks
    if n == 1:
        return value
    epoch = proc.next_epoch("coll:bcast")
    vrank = (proc.rank - root) % n
    nbytes = max(1, int(size))
    nseg = max(1, -(-nbytes // CHAIN_SEGMENT_BYTES)) if bulk else 1
    base, extra = divmod(nbytes, nseg)
    prev = (vrank - 1 + root) % n
    succ = (vrank + 1 + root) % n
    for seg in range(nseg):
        key = ("cchain", epoch, seg)
        if vrank != 0:
            got = yield from recv_value(
                proc, key, prev,
                f"chain bcast epoch {epoch} segment {seg}")
            if seg == nseg - 1:
                value = got
        if vrank != n - 1:
            # The value itself rides the last segment; earlier segments
            # model the leading bytes of the payload.
            payload = value if seg == nseg - 1 else None
            seg_bytes = base + (1 if seg < extra else 0)
            yield from send_value(proc, succ, key, payload, seg_bytes,
                                  bulk=bulk)
    return value


# ---------------------------------------------------------------------------
# reduce
# ---------------------------------------------------------------------------

def reduce_binomial(proc: "Proc", value: Any,  # noqa: F821
                    op: Callable[[Any, Any], Any], root: int = 0,
                    size: int = 32, bulk: bool = False) -> Generator:
    """Binomial-tree reduction (legacy schedule for short messages).

    ``bulk=True`` runs the same tree but ships partials as bulk
    transfers, paying ``G`` per byte (the legacy schedule is
    short-message only).
    """
    if not bulk:
        result = yield from legacy.reduce(proc, value, op, root=root,
                                          size=size)
        return result
    n = proc.n_ranks
    if n == 1:
        return value
    epoch = proc.next_epoch("coll:reduce")
    vrank = (proc.rank - root) % n
    partial = value
    for k in range(ceil_log2(n)):
        bit = 1 << k
        if vrank & bit:
            dst = ((vrank - bit) + root) % n
            yield from send_value(proc, dst, ("cred", epoch, vrank),
                                  partial, size, bulk=True)
            return None
        peer = vrank + bit
        if peer < n:
            got = yield from recv_value(
                proc, ("cred", epoch, peer), (peer + root) % n,
                f"bulk reduce epoch {epoch} round {k}")
            partial = op(partial, got)
    return partial


def reduce_flat(proc: "Proc", value: Any,  # noqa: F821
                op: Callable[[Any, Any], Any], root: int = 0,
                size: int = 32, bulk: bool = False) -> Generator:
    """Every rank sends its value straight to the root.

    One hop instead of ``ceil(log2 P)``, at the price of serialising
    ``P - 1`` receives at the root — the winning trade only at small P.
    Partials combine in ascending rank order (root's own value first),
    so the result is deterministic for any associative ``op``.
    """
    n = proc.n_ranks
    if n == 1:
        return value
    epoch = proc.next_epoch("coll:reduce")
    if proc.rank != root:
        yield from send_value(proc, root, ("cred", epoch, proc.rank),
                              value, size, bulk=bulk)
        return None
    partial = value
    for off in range(1, n):
        src = (root + off) % n
        got = yield from recv_value(
            proc, ("cred", epoch, src), src,
            f"flat reduce epoch {epoch} from {src}")
        partial = op(partial, got)
    return partial


# ---------------------------------------------------------------------------
# allreduce
# ---------------------------------------------------------------------------

def allreduce_binomial(proc: "Proc", value: Any,  # noqa: F821
                       op: Callable[[Any, Any], Any], size: int = 32,
                       bulk: bool = False,
                       elementwise: bool = False) -> Generator:
    """Binomial reduce to rank 0, binomial broadcast back (legacy)."""
    if not bulk:
        result = yield from legacy.allreduce(proc, value, op, size=size)
        return result
    total = yield from reduce_binomial(proc, value, op, root=0,
                                       size=size, bulk=True)
    result = yield from legacy.broadcast(proc, total, root=0, size=size,
                                         bulk=True)
    return result


def allreduce_ring(proc: "Proc", value: Any,  # noqa: F821
                   op: Callable[[Any, Any], Any], size: int = 32,
                   bulk: bool = False,
                   elementwise: bool = False) -> Generator:
    """Rabenseifner-style reduce-scatter + allgather ring.

    Requires a sliceable vector ``value`` and an *elementwise* ``op``
    (declared via ``elementwise=True``): each of the ``2 (P - 1)`` steps
    moves only ``1/P``-th of the payload, so bandwidth-bound allreduces
    beat the binomial tree's full-payload hops.
    """
    n = proc.n_ranks
    if n == 1:
        return value
    total = len(value)
    epoch = proc.next_epoch("coll:allreduce")
    base, extra = divmod(total, n)
    bounds = []
    lo = 0
    for c in range(n):
        hi = lo + base + (1 if c < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    per_byte = size / max(1, total)
    succ = (proc.rank + 1) % n
    pred = (proc.rank - 1) % n
    work = value.copy()
    # Phase 1: reduce-scatter.  After step s, this rank's chunk
    # (rank - s - 1) mod P carries s + 2 contributions; after P - 1
    # steps chunk (rank + 1) mod P is fully reduced here.
    for step in range(n - 1):
        send_c = (proc.rank - step) % n
        recv_c = (proc.rank - step - 1) % n
        lo, hi = bounds[send_c]
        yield from send_value(
            proc, succ, ("crs", epoch, step), work[lo:hi].copy(),
            per_byte * (hi - lo), bulk=bulk)
        got = yield from recv_value(
            proc, ("crs", epoch, step), pred,
            f"ring allreduce epoch {epoch} reduce-scatter step {step}")
        lo, hi = bounds[recv_c]
        work[lo:hi] = op(got, work[lo:hi])
    # Phase 2: allgather of the reduced chunks around the same ring.
    for step in range(n - 1):
        send_c = (proc.rank + 1 - step) % n
        recv_c = (proc.rank - step) % n
        lo, hi = bounds[send_c]
        yield from send_value(
            proc, succ, ("cag", epoch, step), work[lo:hi].copy(),
            per_byte * (hi - lo), bulk=bulk)
        got = yield from recv_value(
            proc, ("cag", epoch, step), pred,
            f"ring allreduce epoch {epoch} allgather step {step}")
        lo, hi = bounds[recv_c]
        work[lo:hi] = got
    return work


# ---------------------------------------------------------------------------
# gather / scatter
# ---------------------------------------------------------------------------

def gather_flat(proc: "Proc", value: Any, root: int = 0,  # noqa: F821
                size: int = 32, bulk: bool = False) -> Generator:
    """Every rank sends directly to the root; root returns the list."""
    n = proc.n_ranks
    if n == 1:
        return [value]
    epoch = proc.next_epoch("coll:gather")
    if proc.rank != root:
        yield from send_value(proc, root, ("cgat", epoch, proc.rank),
                              value, size, bulk=bulk)
        return None
    out: List[Any] = [None] * n
    out[root] = value
    for off in range(1, n):
        src = (root + off) % n
        out[src] = yield from recv_value(
            proc, ("cgat", epoch, src), src,
            f"flat gather epoch {epoch} from {src}")
    return out


def gather_binomial(proc: "Proc", value: Any, root: int = 0,  # noqa: F821
                    size: int = 32, bulk: bool = False) -> Generator:
    """Binomial subtree aggregation toward the root.

    ``ceil(log2 P)`` hop depth; message sizes grow with the subtree, so
    the root receives ``ceil(log2 P)`` messages instead of ``P - 1``.
    """
    n = proc.n_ranks
    if n == 1:
        return [value]
    epoch = proc.next_epoch("coll:gather")
    vrank = (proc.rank - root) % n
    collected: Dict[int, Any] = {proc.rank: value}
    for k in range(ceil_log2(n)):
        bit = 1 << k
        if vrank & bit:
            dst = ((vrank - bit) + root) % n
            yield from send_value(proc, dst, ("cgat", epoch, vrank),
                                  collected, size * len(collected),
                                  bulk=bulk)
            return None
        peer = vrank + bit
        if peer < n:
            got = yield from recv_value(
                proc, ("cgat", epoch, peer), (peer + root) % n,
                f"binomial gather epoch {epoch} round {k}")
            collected.update(got)
    return [collected[r] for r in range(n)]


def scatter_flat(proc: "Proc", values: Optional[List[Any]],  # noqa: F821
                 root: int = 0, size: int = 32,
                 bulk: bool = False) -> Generator:
    """Root sends each rank its slot of ``values`` directly."""
    n = proc.n_ranks
    if n == 1:
        return values[0]
    epoch = proc.next_epoch("coll:scatter")
    if proc.rank != root:
        got = yield from recv_value(
            proc, ("csca", epoch, proc.rank), root,
            f"flat scatter epoch {epoch}")
        return got
    if values is None or len(values) != n:
        raise ValueError("scatter root needs one value per rank")
    for off in range(1, n):
        dst = (root + off) % n
        yield from send_value(proc, dst, ("csca", epoch, dst),
                              values[dst], size, bulk=bulk)
    return values[root]


def scatter_binomial(proc: "Proc", values: Optional[List[Any]],  # noqa: F821
                     root: int = 0, size: int = 32,
                     bulk: bool = False) -> Generator:
    """Root partitions by binomial subtree; internal ranks forward."""
    n = proc.n_ranks
    if n == 1:
        return values[0]
    epoch = proc.next_epoch("coll:scatter")
    vrank = (proc.rank - root) % n
    if vrank == 0:
        if values is None or len(values) != n:
            raise ValueError("scatter root needs one value per rank")
        block = {v: values[(root + v) % n] for v in range(n)}
    else:
        # Parent clears the lowest set bit, so the subtree rooted at
        # vrank is exactly the contiguous range [vrank, vrank + lowbit).
        parent_v = vrank - (vrank & -vrank)
        block = yield from recv_value(
            proc, ("csca", epoch, vrank), (parent_v + root) % n,
            f"binomial scatter epoch {epoch}")
    for k in reversed(range(ceil_log2(n))):
        bit = 1 << k
        peer = vrank + bit
        if vrank % (bit << 1) == 0 and peer < n:
            sub = {v: block[v] for v in range(peer, min(peer + bit, n))}
            yield from send_value(proc, (peer + root) % n,
                                  ("csca", epoch, peer), sub,
                                  size * len(sub), bulk=bulk)
            for v in sub:
                del block[v]
    return block[vrank]


# ---------------------------------------------------------------------------
# allgather
# ---------------------------------------------------------------------------

def allgather_ring(proc: "Proc", value: Any, size: int = 32,  # noqa: F821
                   bulk: bool = False) -> Generator:
    """P - 1 steps around a ring, each forwarding the newest block."""
    n = proc.n_ranks
    if n == 1:
        return [value]
    epoch = proc.next_epoch("coll:allgather")
    succ = (proc.rank + 1) % n
    pred = (proc.rank - 1) % n
    out: List[Any] = [None] * n
    out[proc.rank] = value
    carry = value
    for step in range(n - 1):
        yield from send_value(proc, succ, ("crag", epoch, step), carry,
                              size, bulk=bulk)
        carry = yield from recv_value(
            proc, ("crag", epoch, step), pred,
            f"ring allgather epoch {epoch} step {step}")
        out[(proc.rank - step - 1) % n] = carry
    return out


def allgather_doubling(proc: "Proc", value: Any,  # noqa: F821
                       size: int = 32, bulk: bool = False) -> Generator:
    """Recursive doubling (Bruck variant, any P): ``ceil(log2 P)``
    exchanges with block counts doubling each round."""
    n = proc.n_ranks
    if n == 1:
        return [value]
    epoch = proc.next_epoch("coll:allgather")
    # blocks[i] is the value contributed by rank (rank + i) mod P.
    blocks: List[Any] = [value]
    k = 0
    while len(blocks) < n:
        cnt = min(len(blocks), n - len(blocks))
        dst = (proc.rank - (1 << k)) % n
        src = (proc.rank + (1 << k)) % n
        yield from send_value(proc, dst, ("cagd", epoch, k),
                              blocks[:cnt], size * cnt, bulk=bulk)
        got = yield from recv_value(
            proc, ("cagd", epoch, k), src,
            f"doubling allgather epoch {epoch} round {k}")
        blocks.extend(got)
        k += 1
    return [blocks[(r - proc.rank) % n] for r in range(n)]


# ---------------------------------------------------------------------------
# alltoall (personalized)
# ---------------------------------------------------------------------------

def alltoall_flat(proc: "Proc", values: List[Any],  # noqa: F821
                  size: int = 32,
                  sizes: Optional[List[int]] = None,
                  bulk: bool = False, dense: bool = False) -> Generator:
    """One direct (possibly bulk) message per destination, bursty.

    Supports the sparse/variable-size case: a ``None`` slot sends
    nothing, ``sizes[dst]`` overrides the per-destination wire size.
    Completion is an ack wait for this rank's own sends followed by a
    barrier, after which every deposit is visible.
    """
    n = proc.n_ranks
    if n == 1:
        return [values[proc.rank]]
    epoch = proc.next_epoch("coll:alltoall")
    pending = {"count": 0}

    def acked(_payload: Any) -> None:
        pending["count"] -= 1

    dsts = []
    for off in range(1, n):
        dst = (proc.rank + off) % n
        payload = values[dst]
        if payload is None:
            continue
        nbytes = sizes[dst] if sizes is not None else size
        pending["count"] += 1
        dsts.append(dst)
        yield from send_value(proc, dst, ("ca2a", epoch, proc.rank),
                              payload, nbytes, bulk=bulk,
                              on_complete=acked)
    wait = None if proc.sanitizer is None else \
        ("sync", tuple(dsts),
         f"alltoall epoch {epoch}: {pending['count']} unacked send(s)")
    yield from proc.am.wait_until(lambda: pending["count"] == 0,
                                  wait=wait)
    # Everyone's deposits are complete once every rank passed its own
    # ack wait; the barrier publishes that fact.
    yield from legacy.barrier(proc)
    box = proc.collective_box
    out: List[Any] = [None] * n
    out[proc.rank] = values[proc.rank]
    for off in range(1, n):
        src = (proc.rank + off) % n
        key = ("ca2a", epoch, src)
        if key in box:
            out[src] = box.pop(key)
    return out


def alltoall_bruck(proc: "Proc", values: List[Any],  # noqa: F821
                   size: int = 32,
                   sizes: Optional[List[int]] = None,
                   bulk: bool = False, dense: bool = False) -> Generator:
    """Bruck's log-round alltoall for small dense messages.

    ``ceil(log2 P)`` rounds, each aggregating ~P/2 blocks into one
    message: fewer, larger messages than the flat burst — the win when
    per-message cost dominates.  Requires a dense ``values`` list and a
    uniform declared ``size`` (see :func:`eligible_algorithms`).
    """
    n = proc.n_ranks
    if n == 1:
        return [values[proc.rank]]
    if len(values) != n:
        raise ValueError("alltoall needs one value slot per rank")
    epoch = proc.next_epoch("coll:alltoall")
    rank = proc.rank
    # Local rotation: blocks[j] is destined for rank (rank + j) mod P;
    # it travels 2^k hops for every set bit k of j.
    blocks: List[Any] = [values[(rank + j) % n] for j in range(n)]
    k = 0
    while (1 << k) < n:
        bit = 1 << k
        dst = (rank + bit) % n
        src = (rank - bit) % n
        moving = [(j, blocks[j]) for j in range(n) if j & bit]
        yield from send_value(proc, dst, ("ca2ab", epoch, k), moving,
                              size * len(moving), bulk=bulk)
        got = yield from recv_value(
            proc, ("ca2ab", epoch, k), src,
            f"bruck alltoall epoch {epoch} round {k}")
        for j, item in got:
            blocks[j] = item
        k += 1
    # blocks[j] now holds the value addressed to us by rank (rank - j).
    return [blocks[(rank - src) % n] for src in range(n)]


# ---------------------------------------------------------------------------
# Registry and eligibility
# ---------------------------------------------------------------------------

REGISTRY: Dict[str, Dict[str, Callable]] = {
    "barrier": {"dissemination": barrier_dissemination,
                "tree": barrier_tree},
    "broadcast": {"binomial": broadcast_binomial,
                  "chain": broadcast_chain},
    "reduce": {"binomial": reduce_binomial, "flat": reduce_flat},
    "allreduce": {"binomial": allreduce_binomial, "ring": allreduce_ring},
    "gather": {"flat": gather_flat, "binomial": gather_binomial},
    "scatter": {"flat": scatter_flat, "binomial": scatter_binomial},
    "allgather": {"ring": allgather_ring, "doubling": allgather_doubling},
    "alltoall": {"flat": alltoall_flat, "bruck": alltoall_bruck},
}


def registry() -> Dict[str, Dict[str, Callable]]:
    """The full primitive -> {algorithm name -> implementation} map."""
    return REGISTRY


def algorithms_for(primitive: str) -> Tuple[str, ...]:
    """Registered algorithm names for ``primitive``, registry order."""
    if primitive not in REGISTRY:
        raise KeyError(f"unknown collective primitive {primitive!r}")
    return tuple(REGISTRY[primitive])


def get_algorithm(primitive: str, algo: str) -> Callable:
    """The implementation registered as ``primitive``/``algo``."""
    table = REGISTRY.get(primitive)
    if table is None:
        raise KeyError(f"unknown collective primitive {primitive!r}")
    if algo not in table:
        raise KeyError(
            f"unknown {primitive} algorithm {algo!r}; "
            f"registered: {', '.join(table)}")
    return table[algo]


def eligible_algorithms(primitive: str, elementwise: bool = False,
                        dense: bool = False,
                        uniform: bool = True) -> Tuple[str, ...]:
    """Algorithm names whose structural requirements the call meets.

    The traits are *declared* by the caller (identically on every rank,
    SPMD order) rather than inferred from one rank's arguments, so every
    rank restricts to the same candidate set:

    * ``elementwise`` — the reduction ``op`` acts elementwise on a
      sliceable vector value (enables ``allreduce``/``ring``).
    * ``dense`` — every rank supplies a value for every destination
      (required by ``alltoall``/``bruck``).
    * ``uniform`` — no per-destination size overrides (also required by
      ``alltoall``/``bruck``).
    """
    names = []
    for algo in algorithms_for(primitive):
        if primitive == "allreduce" and algo == "ring" \
                and not elementwise:
            continue
        if primitive == "alltoall" and algo == "bruck" \
                and not (dense and uniform):
            continue
        names.append(algo)
    return tuple(names)
