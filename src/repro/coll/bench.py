"""The collective calibration microbenchmark.

One :class:`CollectiveBench` run times ``iterations`` back-to-back
invocations of a single primitive with deterministic payloads, using
either an explicit algorithm (calibration mode) or the cluster's tuning
policy.  ``finalize`` verifies every rank's every iteration against the
closed-form expected result, so a mis-scheduled algorithm fails loudly
instead of producing a plausible runtime.

This is what :func:`repro.coll.tuner.build_decision_table` and the
``collective_sweep`` harness run; it lives in ``repro.coll`` (not
``repro.apps``) because it benchmarks the machine layer, not a paper
workload.
"""

from __future__ import annotations

import operator
from typing import Generator, List, Optional

import numpy as np

from repro.apps.base import Application
from repro.coll import api
from repro.coll.algorithms import PRIMITIVES
from repro.gas.runtime import Proc

__all__ = ["CollectiveBench", "VECTOR_ITEMS"]

#: Elements of the allreduce test vector (sliced into P ring chunks).
VECTOR_ITEMS = 16


class CollectiveBench(Application):
    """Time ``iterations`` invocations of one collective primitive.

    Parameters
    ----------
    primitive:
        One of :data:`repro.coll.algorithms.PRIMITIVES`.
    algo:
        Explicit algorithm name, or ``None`` to let the cluster's
        tuning policy choose.
    size:
        Declared wire size (bytes): the whole value for broadcast /
        reduce / allreduce, the per-rank block otherwise.
    bulk:
        Move payloads as bulk transfers (pay ``G`` per byte).
    iterations:
        Back-to-back invocations inside the timed region.
    """

    name = "CollBench"

    def __init__(self, primitive: str = "allreduce",
                 algo: Optional[str] = None, size: int = 32,
                 bulk: bool = False, iterations: int = 4) -> None:
        if primitive not in PRIMITIVES:
            raise ValueError(f"unknown primitive {primitive!r}")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if size < 1:
            raise ValueError("size must be >= 1")
        self.primitive = primitive
        self.algo = algo
        self.size = size
        self.bulk = bulk
        self.iterations = iterations
        self._n_nodes = 1

    def configure(self, n_nodes: int, seed: int) -> None:
        self._n_nodes = n_nodes

    def setup_rank(self, proc: Proc) -> Generator:
        proc.state["collbench"] = {"results": []}
        return
        yield  # pragma: no cover

    def run_rank(self, proc: Proc) -> Generator:
        results = proc.state["collbench"]["results"]
        for iteration in range(self.iterations):
            got = yield from self._invoke(proc, iteration)
            results.append(got)

    def _invoke(self, proc: Proc, iteration: int) -> Generator:
        kind, n, rank = self.primitive, proc.n_ranks, proc.rank
        if kind == "barrier":
            yield from api.barrier(proc, algo=self.algo)
            return "ok"
        if kind == "broadcast":
            value = ("bcast", iteration) if rank == 0 else None
            got = yield from api.broadcast(
                proc, value, root=0, size=self.size, bulk=self.bulk,
                algo=self.algo)
            return got
        if kind == "reduce":
            got = yield from api.reduce(
                proc, (rank + 1) * (iteration + 1), operator.add,
                root=0, size=self.size, bulk=self.bulk, algo=self.algo)
            return got
        if kind == "allreduce":
            vec = np.arange(VECTOR_ITEMS, dtype=np.int64) + rank \
                + iteration
            got = yield from api.allreduce(
                proc, vec, operator.add, size=self.size, bulk=self.bulk,
                elementwise=True, algo=self.algo)
            return got
        if kind == "gather":
            got = yield from api.gather(
                proc, (rank, iteration), root=0, size=self.size,
                bulk=self.bulk, algo=self.algo)
            return got
        if kind == "scatter":
            values = None
            if rank == 0:
                values = [(d, iteration) for d in range(n)]
            got = yield from api.scatter(
                proc, values, root=0, size=self.size, bulk=self.bulk,
                algo=self.algo)
            return got
        if kind == "allgather":
            got = yield from api.allgather(
                proc, (rank, iteration), size=self.size, bulk=self.bulk,
                algo=self.algo)
            return got
        # alltoall: rank s delivers (s, d, i) to rank d.
        values = [(rank, d, iteration) for d in range(n)]
        got = yield from api.alltoall(
            proc, values, size=self.size, bulk=self.bulk, dense=True,
            algo=self.algo)
        return got

    # -- correctness ---------------------------------------------------------
    def _expected(self, rank: int, n: int, iteration: int):
        kind = self.primitive
        if kind == "barrier":
            return "ok"
        if kind == "broadcast":
            return ("bcast", iteration)
        if kind == "reduce":
            total = (iteration + 1) * n * (n + 1) // 2
            return total if rank == 0 else None
        if kind == "allreduce":
            base = np.arange(VECTOR_ITEMS, dtype=np.int64)
            return base * n + sum(r + iteration for r in range(n))
        if kind == "gather":
            if rank != 0:
                return None
            return [(r, iteration) for r in range(n)]
        if kind == "scatter":
            return (rank, iteration)
        if kind == "allgather":
            return [(r, iteration) for r in range(n)]
        return [(s, rank, iteration) for s in range(n)]

    def finalize(self, procs: List[Proc]):
        for proc in procs:
            results = proc.state["collbench"]["results"]
            if len(results) != self.iterations:
                raise ValueError(
                    f"rank {proc.rank}: {len(results)} results, "
                    f"expected {self.iterations}")
            for iteration, got in enumerate(results):
                want = self._expected(proc.rank, proc.n_ranks, iteration)
                if isinstance(want, np.ndarray):
                    match = isinstance(got, np.ndarray) and \
                        np.array_equal(got, want)
                else:
                    match = got == want
                if not match:
                    raise ValueError(
                        f"{self.primitive} iteration {iteration} rank "
                        f"{proc.rank}: got {got!r}, expected {want!r}")
        return f"{self.primitive}:ok"
