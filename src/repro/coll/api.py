"""Dispatch entry points: primitive call -> tuner -> algorithm.

Every :class:`~repro.gas.runtime.Proc` collective routes through here:
the call's declared traits (size, bulk, density, elementwise-ness) are
reduced to the eligible candidate set, the cluster's tuning policy picks
one schedule — identically on every rank, because every input to the
choice is SPMD-identical — and the pick is recorded on
``ClusterStats.on_collective`` before the algorithm runs.

``algo=...`` on any entry point bypasses the tuner (an explicit,
validated override for benchmarks and calibration).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.coll import algorithms
from repro.coll.core import TOKEN_BYTES
from repro.coll.tuner import FixedPolicy

__all__ = ["barrier", "broadcast", "reduce", "allreduce", "gather",
           "scatter", "allgather", "alltoall"]

#: The policy used when a cluster never configured tuning: registry
#: defaults, i.e. the legacy machine.
_DEFAULT_POLICY = FixedPolicy()


def _select(proc: "Proc", primitive: str, nbytes: float,  # noqa: F821
            algo: Optional[str], bulk: bool = False,
            elementwise: bool = False, dense: bool = False,
            uniform: bool = True) -> str:
    candidates = algorithms.eligible_algorithms(
        primitive, elementwise=elementwise, dense=dense, uniform=uniform)
    if algo is not None:
        algorithms.get_algorithm(primitive, algo)  # validate the name
        if algo not in candidates:
            raise ValueError(
                f"{primitive} algorithm {algo!r} is not eligible for "
                f"this call (elementwise={elementwise}, dense={dense}, "
                f"uniform={uniform})")
        return algo
    if len(candidates) == 1:
        return candidates[0]
    tuner = getattr(proc, "coll_tuner", None) or _DEFAULT_POLICY
    return tuner.choose(primitive, candidates, n_ranks=proc.n_ranks,
                        nbytes=nbytes, params=proc.am.params,
                        knobs=proc.am.knobs, bulk=bulk)


def _note(proc: "Proc", primitive: str, algo: str,  # noqa: F821
          nbytes: float) -> None:
    if proc.stats is not None:
        proc.stats.on_collective(primitive, algo, proc.rank,
                                 int(nbytes))


def barrier(proc: "Proc", algo: Optional[str] = None  # noqa: F821
            ) -> Generator:
    """Barrier over all ranks."""
    name = _select(proc, "barrier", TOKEN_BYTES, algo)
    _note(proc, "barrier", name, TOKEN_BYTES)
    yield from algorithms.get_algorithm("barrier", name)(proc)


def broadcast(proc: "Proc", value: Any = None, root: int = 0,  # noqa: F821
              size: int = 32, bulk: bool = False,
              algo: Optional[str] = None) -> Generator:
    """Broadcast from ``root``; returns the value on every rank."""
    name = _select(proc, "broadcast", size, algo, bulk=bulk)
    _note(proc, "broadcast", name, size)
    result = yield from algorithms.get_algorithm("broadcast", name)(
        proc, value, root=root, size=size, bulk=bulk)
    return result


def reduce(proc: "Proc", value: Any, op: Callable[[Any, Any], Any],  # noqa: F821
           root: int = 0, size: int = 32, bulk: bool = False,
           algo: Optional[str] = None) -> Generator:
    """Reduction to ``root`` (other ranks receive ``None``)."""
    name = _select(proc, "reduce", size, algo, bulk=bulk)
    _note(proc, "reduce", name, size)
    result = yield from algorithms.get_algorithm("reduce", name)(
        proc, value, op, root=root, size=size, bulk=bulk)
    return result


def allreduce(proc: "Proc", value: Any,  # noqa: F821
              op: Callable[[Any, Any], Any], size: int = 32,
              bulk: bool = False, elementwise: bool = False,
              algo: Optional[str] = None) -> Generator:
    """Reduction whose result lands on every rank.

    Declare ``elementwise=True`` (identically on every rank) when
    ``value`` is a sliceable vector and ``op`` acts elementwise — it
    makes the Rabenseifner ring eligible.
    """
    name = _select(proc, "allreduce", size, algo, bulk=bulk,
                   elementwise=elementwise)
    _note(proc, "allreduce", name, size)
    result = yield from algorithms.get_algorithm("allreduce", name)(
        proc, value, op, size=size, bulk=bulk, elementwise=elementwise)
    return result


def gather(proc: "Proc", value: Any, root: int = 0, size: int = 32,  # noqa: F821
           bulk: bool = False, algo: Optional[str] = None) -> Generator:
    """Gather one value per rank to ``root`` (a rank-ordered list;
    other ranks receive ``None``).  ``size`` is the per-rank size."""
    name = _select(proc, "gather", size, algo, bulk=bulk)
    _note(proc, "gather", name, size)
    result = yield from algorithms.get_algorithm("gather", name)(
        proc, value, root=root, size=size, bulk=bulk)
    return result


def scatter(proc: "Proc", values: Optional[List[Any]],  # noqa: F821
            root: int = 0, size: int = 32, bulk: bool = False,
            algo: Optional[str] = None) -> Generator:
    """Scatter ``values[r]`` from ``root`` to each rank ``r``; returns
    this rank's slot.  ``size`` is the per-rank size."""
    name = _select(proc, "scatter", size, algo, bulk=bulk)
    _note(proc, "scatter", name, size)
    result = yield from algorithms.get_algorithm("scatter", name)(
        proc, values, root=root, size=size, bulk=bulk)
    return result


def allgather(proc: "Proc", value: Any, size: int = 32,  # noqa: F821
              bulk: bool = False,
              algo: Optional[str] = None) -> Generator:
    """Gather one value per rank onto every rank (rank-ordered list)."""
    name = _select(proc, "allgather", size, algo, bulk=bulk)
    _note(proc, "allgather", name, size)
    result = yield from algorithms.get_algorithm("allgather", name)(
        proc, value, size=size, bulk=bulk)
    return result


def alltoall(proc: "Proc", values: List[Any], size: int = 32,  # noqa: F821
             sizes: Optional[List[int]] = None, bulk: bool = False,
             dense: bool = False,
             algo: Optional[str] = None) -> Generator:
    """Personalized all-to-all: rank ``s`` delivers ``values[d]`` to
    rank ``d``; returns the rank-ordered received list.

    ``None`` slots send nothing (sparse), ``sizes`` overrides the
    per-destination wire size.  Declare ``dense=True`` (identically on
    every rank) when every slot is populated — it makes the Bruck
    schedule eligible.  ``size``/``sizes`` count per-destination bytes.
    """
    name = _select(proc, "alltoall",
                   sum(sizes) / max(1, len(sizes)) if sizes else size,
                   algo, bulk=bulk, dense=dense, uniform=sizes is None)
    total = sum(sizes) if sizes is not None \
        else size * max(0, proc.n_ranks - 1)
    _note(proc, "alltoall", name, total)
    result = yield from algorithms.get_algorithm("alltoall", name)(
        proc, values, size=size, sizes=sizes, bulk=bulk, dense=dense)
    return result
