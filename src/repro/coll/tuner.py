"""Algorithm selection policies and the measured decision table.

Three policies, mirroring Barchet-Estefanel & Mounie's tuning ladder:

* ``fixed`` — always the registry default (or an explicit per-primitive
  override).  The all-defaults fixed policy reproduces the legacy
  ``gas.collectives`` machine bit for bit.
* ``model`` — the :mod:`repro.coll.model` LogGP estimate picks the
  predicted-cheapest eligible algorithm per call, from the machine's
  live parameters and dials.  No measurement needed.
* ``measured`` — a decision table built by :func:`build_decision_table`
  from an actual calibration sweep (one microbenchmark run per cell,
  persisted through the ordinary :class:`~repro.harness.runcache.
  RunCache`), then matched by nearest (P, size) cell at call time.

Every choice is a pure function of SPMD-identical inputs (primitive,
declared size, P, machine parameters), so all ranks always agree on the
schedule — the tuner can never cause a rank-divergent collective.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.am.tuning import TuningKnobs
from repro.coll.algorithms import (DEFAULT_ALGORITHMS, PRIMITIVES,
                                   algorithms_for)
from repro.coll.model import estimate_cost
from repro.network.loggp import LogGPParams

__all__ = ["CollConfig", "FixedPolicy", "ModelPolicy", "MeasuredPolicy",
           "tuner_from_config", "build_decision_table",
           "CALIBRATION_SIZES"]

#: Default declared-size grid (bytes) of the calibration sweep.
CALIBRATION_SIZES = (32, 1024, 16384, 65536)


@dataclass(frozen=True)
class CollConfig:
    """Picklable description of a cluster's collective tuning.

    ``choices`` are per-primitive fixed overrides, e.g.
    ``(("broadcast", "chain"),)``.  ``table`` is a measured decision
    table: ``(primitive, n_ranks, nbytes, bulk, algo)`` cells produced
    by :func:`build_decision_table`.
    """

    policy: str = "fixed"  # "fixed" | "model" | "measured"
    choices: Tuple[Tuple[str, str], ...] = ()
    table: Tuple[Tuple[str, int, int, bool, str], ...] = ()

    def __post_init__(self) -> None:
        if self.policy not in ("fixed", "model", "measured"):
            raise ValueError(f"unknown tuning policy {self.policy!r}")
        for primitive, algo in self.choices:
            if algo not in algorithms_for(primitive):
                raise ValueError(
                    f"unknown {primitive} algorithm {algo!r}")
        if self.policy == "measured" and not self.table:
            raise ValueError(
                "measured policy needs a decision table; build one "
                "with repro.coll.tuner.build_decision_table")

    @property
    def is_default(self) -> bool:
        """Whether this config is behaviourally the legacy machine."""
        return self.policy == "fixed" and not self.choices


class FixedPolicy:
    """Registry defaults, optionally overridden per primitive."""

    name = "fixed"

    def __init__(self,
                 choices: Tuple[Tuple[str, str], ...] = ()) -> None:
        self._choices: Dict[str, str] = dict(choices)

    def choose(self, primitive: str, candidates: Sequence[str],
               n_ranks: int, nbytes: float, params: LogGPParams,
               knobs: TuningKnobs, bulk: bool = False) -> str:
        pick = self._choices.get(primitive,
                                 DEFAULT_ALGORITHMS[primitive])
        if pick in candidates:
            return pick
        # The fixed pick is ineligible for this call (e.g. a bruck
        # override on a sparse alltoall): fall back to the default,
        # then to the first eligible candidate.
        fallback = DEFAULT_ALGORITHMS[primitive]
        return fallback if fallback in candidates else candidates[0]


class ModelPolicy:
    """Predicted-cheapest eligible algorithm per call site."""

    name = "model"

    def choose(self, primitive: str, candidates: Sequence[str],
               n_ranks: int, nbytes: float, params: LogGPParams,
               knobs: TuningKnobs, bulk: bool = False) -> str:
        best = min(
            (estimate_cost(primitive, algo, n_ranks, nbytes, params,
                           knobs=knobs, bulk=bulk), algo)
            for algo in candidates)
        return best[1]


class MeasuredPolicy:
    """Nearest-cell lookup in a measured decision table."""

    name = "measured"

    def __init__(self,
                 table: Tuple[Tuple[str, int, int, bool, str], ...]
                 ) -> None:
        self.table = tuple(table)

    def choose(self, primitive: str, candidates: Sequence[str],
               n_ranks: int, nbytes: float, params: LogGPParams,
               knobs: TuningKnobs, bulk: bool = False) -> str:
        best = None
        for index, cell in enumerate(self.table):
            cell_prim, cell_p, cell_bytes, cell_bulk, algo = cell
            if cell_prim != primitive or algo not in candidates:
                continue
            distance = (
                0 if cell_bulk == bulk else 1,
                abs(math.log2(max(1, cell_p))
                    - math.log2(max(1, n_ranks))),
                abs(math.log2(1 + cell_bytes)
                    - math.log2(1 + max(0.0, nbytes))),
                index,
            )
            if best is None or distance < best[0]:
                best = (distance, algo)
        if best is None:
            # No measurement covers this primitive: registry default.
            pick = DEFAULT_ALGORITHMS[primitive]
            return pick if pick in candidates else candidates[0]
        return best[1]


def tuner_from_config(config: Optional[CollConfig]):
    """The policy object for a :class:`CollConfig` (None -> fixed)."""
    if config is None or config.policy == "fixed":
        return FixedPolicy(config.choices if config is not None else ())
    if config.policy == "model":
        return ModelPolicy()
    return MeasuredPolicy(config.table)


def build_decision_table(n_ranks: int,
                         sizes: Sequence[int] = CALIBRATION_SIZES,
                         primitives: Sequence[str] = PRIMITIVES,
                         params: Optional[LogGPParams] = None,
                         knobs: Optional[TuningKnobs] = None,
                         seed: int = 0, iterations: int = 2,
                         cache: Optional["RunCache"] = None  # noqa: F821
                         ) -> Tuple[Tuple[str, int, int, bool, str], ...]:
    """Measure every (primitive, size, algorithm) cell; keep winners.

    Each cell is one :class:`~repro.coll.bench.CollectiveBench` run on a
    fresh cluster with the given parameters, served from ``cache`` when
    available (the calibration is a pure function of its configuration,
    so a cached sweep is bit-stable).  Small sizes calibrate the
    short-packet regime, larger ones the bulk regime (``bulk=True``
    whenever the declared size exceeds one short packet).

    Returns cells sorted by (primitive, size) — a deterministic, bit
    -stable table for a fixed seed.
    """
    from repro.cluster.machine import Cluster
    from repro.coll.bench import CollectiveBench
    from repro.harness.runcache import run_key_spec

    params = params if params is not None else LogGPParams.berkeley_now()
    knobs = knobs if knobs is not None else TuningKnobs()
    cells = []
    for primitive in primitives:
        for size in sizes:
            bulk = size > 64
            best = None
            for algo in _calibratable(primitive, n_ranks):
                bench = CollectiveBench(primitive=primitive, algo=algo,
                                        size=size, bulk=bulk,
                                        iterations=iterations)
                runtime = _bench_runtime(Cluster, run_key_spec, bench,
                                         n_ranks, params, knobs, seed,
                                         cache)
                if best is None or (runtime, algo) < best:
                    best = (runtime, algo)
            if best is not None:
                cells.append((primitive, n_ranks, size, bulk, best[1]))
    return tuple(sorted(cells))


def _calibratable(primitive: str, n_ranks: int) -> Tuple[str, ...]:
    """Algorithms the dense uniform calibration benchmark can drive."""
    from repro.coll.algorithms import eligible_algorithms
    return eligible_algorithms(primitive, elementwise=True, dense=True,
                               uniform=True)


def _bench_runtime(cluster_cls, key_spec_fn, bench, n_ranks, params,
                   knobs, seed, cache) -> float:
    """One calibration run's runtime, via the run cache when possible."""
    spec = None
    if cache is not None:
        spec = key_spec_fn(bench, n_ranks, params, knobs, seed)
        outcome = cache.get(spec)
        if outcome is not None and outcome[0] is not None:
            return outcome[0].runtime_us
    result = cluster_cls(n_ranks, params=params, knobs=knobs,
                         seed=seed).run(bench)
    if cache is not None:
        cache.put(spec, result=result)
    return result.runtime_us
