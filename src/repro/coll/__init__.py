"""``repro.coll`` — tuned collective communication for the cluster.

A tuned-collectives layer in the NCCL/MPICH mould, built entirely on
the simulated Active Message substrate:

* :mod:`repro.coll.algorithms` — an algorithm registry with at least
  two interchangeable schedules per primitive (barrier, broadcast,
  reduce, allreduce, gather, scatter, allgather, personalized
  alltoall), including the legacy ``gas.collectives`` schedules under
  their historical names.
* :mod:`repro.coll.model` — closed-form LogGP cost estimates per
  (algorithm, P, size), from the machine's live parameters and dials.
* :mod:`repro.coll.tuner` — ``fixed`` / ``model`` / ``measured``
  selection policies; ``measured`` builds a decision table from a
  calibration sweep persisted via the run cache.
* :mod:`repro.coll.api` — the dispatch entry points
  :class:`~repro.gas.runtime.Proc` routes its collectives through.
* :mod:`repro.coll.bench` — the calibration microbenchmark.

This package is the one import path for collectives going forward: the
legacy ``gas.collectives`` primitives are re-exported here as
``legacy_barrier`` etc. (they are also the fixed-policy defaults, so an
untuned cluster is bit-identical to the machine predating this
package).
"""

from repro.coll.api import (allgather, allreduce, alltoall, barrier,
                            broadcast, gather, reduce, scatter)
from repro.coll.algorithms import (DEFAULT_ALGORITHMS, PRIMITIVES,
                                   algorithms_for, eligible_algorithms,
                                   get_algorithm, registry)
from repro.coll.core import COLL_HANDLER, register_coll_handlers
from repro.coll.model import estimate_cost, predicted_ranking
from repro.coll.tuner import (CollConfig, build_decision_table,
                              tuner_from_config)
# Legacy single-schedule primitives, re-exported so call sites migrate
# to one import path without behaviour change.
from repro.gas.collectives import allreduce as legacy_allreduce
from repro.gas.collectives import barrier as legacy_barrier
from repro.gas.collectives import broadcast as legacy_broadcast
from repro.gas.collectives import reduce as legacy_reduce

__all__ = [
    "barrier", "broadcast", "reduce", "allreduce", "gather", "scatter",
    "allgather", "alltoall",
    "PRIMITIVES", "DEFAULT_ALGORITHMS", "registry", "algorithms_for",
    "get_algorithm", "eligible_algorithms",
    "COLL_HANDLER", "register_coll_handlers",
    "estimate_cost", "predicted_ranking",
    "CollConfig", "tuner_from_config", "build_decision_table",
    "legacy_barrier", "legacy_broadcast", "legacy_reduce",
    "legacy_allreduce",
]
