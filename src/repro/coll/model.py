"""Closed-form LogGP cost estimates for every registered algorithm.

The estimates mirror what the *simulator* charges, not an idealised
machine: a short packet costs ``o_s + L + o_r`` end to end regardless of
its declared size (the NIC only pays ``G`` per byte for bulk fragments),
successive injections from one NIC are ``g`` apart, and every request is
acknowledged (the ack's ``o_r`` lands back on the requester).  All
parameters come from the machine's live :class:`LogGPParams` with the
run's :class:`TuningKnobs` applied, so the model tuner adapts to dialed
machines exactly the way the measurements do.

These are ranking models: they only need to order the 2-3 candidate
schedules per primitive correctly (Barchet-Estefanel & Mounie's "fast
tuning" observation), not predict absolute runtimes.
"""

from __future__ import annotations

from typing import Optional

from repro.am.tuning import TuningKnobs
from repro.coll.algorithms import (CHAIN_SEGMENT_BYTES, algorithms_for)
from repro.network.loggp import LogGPParams

__all__ = ["estimate_cost", "predicted_ranking"]


def _hop(p: LogGPParams, nbytes: float, bulk: bool) -> float:
    """End-to-end time of one message: send overhead, wire, receive."""
    wire = nbytes * p.Gap if bulk else 0.0
    return p.send_overhead + p.latency + wire + p.recv_overhead


def _inject(p: LogGPParams, nbytes: float, bulk: bool) -> float:
    """NIC occupancy of one injection (serialises back-to-back sends)."""
    dma = nbytes * p.Gap if bulk else 0.0
    return max(p.gap, dma)


def _segments(nbytes: float, bulk: bool) -> int:
    if not bulk:
        return 1
    return max(1, -(-int(nbytes) // CHAIN_SEGMENT_BYTES))


def estimate_cost(primitive: str, algo: str, n_ranks: int,
                  nbytes: float, params: LogGPParams,
                  knobs: Optional[TuningKnobs] = None,
                  bulk: bool = False) -> float:
    """Predicted completion time (µs) of one collective invocation.

    ``nbytes`` follows the dispatch convention: the whole value for
    ``broadcast``/``reduce``/``allreduce``, the per-rank block for
    ``gather``/``scatter``/``allgather``/``alltoall``.
    """
    p = knobs.effective(params) if knobs is not None else params
    n = max(1, int(n_ranks))
    if n == 1:
        return 0.0
    rounds = 0
    while (1 << rounds) < n:
        rounds += 1
    ack = p.send_overhead + p.recv_overhead

    if primitive == "barrier":
        if algo == "dissemination":
            # Each round: send one token, absorb the partner's (plus
            # both acks' host time).
            return rounds * (_hop(p, 0, False) + ack)
        if algo == "tree":
            # Up sweep + down sweep, each ceil(log2 P) hops deep.
            return 2 * rounds * _hop(p, 0, False) + rounds * ack

    if primitive == "broadcast":
        if algo == "binomial":
            return rounds * (_hop(p, nbytes, bulk)
                             + _inject(p, nbytes, bulk))
        if algo == "chain":
            nseg = _segments(nbytes, bulk)
            seg = nbytes / nseg
            # Pipeline fill (P - 2 forwards) plus nseg segment slots.
            return (n - 2 + nseg) * (_hop(p, seg, bulk)
                                     + _inject(p, seg, bulk))

    if primitive == "reduce":
        if algo == "binomial":
            return rounds * (_hop(p, nbytes, bulk) + ack)
        if algo == "flat":
            # One hop, but the root serialises P - 1 arrivals.
            arrive = max(p.gap, p.recv_overhead
                         + (nbytes * p.Gap if bulk else 0.0))
            return _hop(p, nbytes, bulk) + (n - 2) * arrive

    if primitive == "allreduce":
        if algo == "binomial":
            return 2 * rounds * (_hop(p, nbytes, bulk) + ack)
        if algo == "ring":
            chunk = nbytes / n
            return 2 * (n - 1) * (_hop(p, chunk, bulk) + ack)

    if primitive in ("gather", "scatter"):
        arrive = max(p.gap, p.recv_overhead
                     + (nbytes * p.Gap if bulk else 0.0))
        if algo == "flat":
            return _hop(p, nbytes, bulk) + (n - 2) * arrive
        if algo == "binomial":
            # Hop k of the critical path carries a 2^k-block message.
            total = 0.0
            for k in range(rounds):
                total += _hop(p, nbytes * (1 << k), bulk) + ack
            return total

    if primitive == "allgather":
        if algo == "ring":
            return (n - 1) * (_hop(p, nbytes, bulk)
                              + _inject(p, nbytes, bulk))
        if algo == "doubling":
            total = 0.0
            have = 1
            while have < n:
                cnt = min(have, n - have)
                total += _hop(p, nbytes * cnt, bulk) + ack
                have += cnt
            return total

    if primitive == "alltoall":
        if algo == "flat":
            # Burst P - 1 sends (gap/DMA-serialised), absorb P - 1
            # arrivals, then the completion barrier.
            burst = (n - 1) * max(_inject(p, nbytes, bulk),
                                  p.recv_overhead + ack)
            barrier_cost = rounds * (_hop(p, 0, False) + ack)
            return burst + _hop(p, nbytes, bulk) + barrier_cost
        if algo == "bruck":
            # ceil(log2 P) rounds, each moving ~P/2 aggregated blocks.
            total = 0.0
            for k in range(rounds):
                count = sum(1 for j in range(n) if j & (1 << k))
                total += _hop(p, nbytes * count, bulk) + ack
            return total

    raise KeyError(f"no cost model for {primitive}/{algo}")


def predicted_ranking(primitive: str, n_ranks: int, nbytes: float,
                      params: LogGPParams,
                      knobs: Optional[TuningKnobs] = None,
                      bulk: bool = False) -> list:
    """(cost, algo) pairs for every registered algorithm, cheapest
    first; ties break lexicographically (deterministic on every rank)."""
    pairs = [(estimate_cost(primitive, algo, n_ranks, nbytes, params,
                            knobs=knobs, bulk=bulk), algo)
             for algo in algorithms_for(primitive)]
    return sorted(pairs)
