"""Message substrate shared by every ``repro.coll`` algorithm.

All collective implementations move data through one generic Active
Message handler, :data:`COLL_HANDLER`, which deposits ``(key, value)``
pairs into the receiving rank's ``collective_box``.  Keys embed the
primitive, a per-type epoch counter (advanced identically on every rank,
SPMD order), and enough round/peer structure that back-to-back
collectives can never confuse each other's messages.

Because every byte still flows through ``AmLayer.send_request`` /
``bulk_store``, the algorithms inherit the simulated NIC and wire, the
fault-injection ARQ, and simsan's vector clocks for free.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from repro.am.layer import AmLayer, HandlerTable

__all__ = ["COLL_HANDLER", "TOKEN_BYTES", "register_coll_handlers",
           "send_value", "recv_value", "ceil_log2"]

#: The single deposit handler every ``repro.coll`` algorithm sends to.
COLL_HANDLER = "_coll_put"

#: Wire size of a data-free control token (barrier arrivals/releases).
TOKEN_BYTES = 8


def _coll_put(am: AmLayer, packet) -> None:
    """Deposit a collective payload for the waiting rank."""
    key, value = packet.payload
    am.host.collective_box[key] = value


def register_coll_handlers(table: HandlerTable) -> None:
    """Install the reserved ``_coll_*`` handlers used by ``repro.coll``."""
    table.register(COLL_HANDLER, _coll_put)


def ceil_log2(n: int) -> int:
    """Rounds of a binomial/dissemination schedule over ``n`` ranks."""
    rounds = 0
    while (1 << rounds) < n:
        rounds += 1
    return rounds


def send_value(proc: "Proc", dst: int, key: Tuple, value: Any,  # noqa: F821
               nbytes: int, bulk: bool = False,
               on_complete: Optional[Any] = None) -> Generator:
    """Ship ``(key, value)`` to ``dst``'s collective box.

    ``bulk=True`` moves the payload as a bulk transfer (fragmented,
    paying ``G`` per byte); otherwise it travels as one short packet.
    ``on_complete`` is invoked when the deposit is acknowledged.
    """
    if bulk:
        yield from proc.am.bulk_store(dst, COLL_HANDLER, (key, value),
                                      max(1, int(nbytes)),
                                      on_complete=on_complete)
    else:
        yield from proc.am.send_request(dst, COLL_HANDLER, (key, value),
                                        size=max(1, int(nbytes)),
                                        on_reply=on_complete)


def recv_value(proc: "Proc", key: Tuple, src: int,  # noqa: F821
               detail: str) -> Generator:
    """Wait for ``key`` to land in the collective box and pop it.

    ``src`` and ``detail`` feed simsan's structured wait annotation so a
    stuck collective names the peer it is waiting on.
    """
    box = proc.collective_box
    wait = None if proc.sanitizer is None else \
        ("collective", (src,), detail)
    yield from proc.am.wait_until(lambda: key in box, wait=wait)
    return box.pop(key)
