"""Calibration microbenchmarks (Section 3.3 of the paper).

* :mod:`repro.calibrate.signature` -- the LogP signature: issue a burst
  of ``m`` request messages with a fixed computational delay Δ between
  them and record the average initiation interval (Figure 3).  Short
  bursts expose the send overhead; long bursts the gap; large Δ makes
  the processor the bottleneck (``o_send + o_recv + Δ``); and half the
  round-trip minus the overheads gives ``L``.
* :mod:`repro.calibrate.bulk` -- bulk-message bursts of growing size to
  find the saturated bulk bandwidth ``1/G``.
* :mod:`repro.calibrate.calibration` -- the full desired-vs-measured
  matrix of Table 2, demonstrating the dials move independently.
"""

from repro.calibrate.signature import (LogPSignature, logp_signature,
                                       measure_parameters, round_trip_time)
from repro.calibrate.bulk import calibrate_bulk_bandwidth
from repro.calibrate.calibration import (CalibrationRow, calibrate_machine,
                                         calibration_table)

__all__ = ["LogPSignature", "logp_signature", "measure_parameters",
           "round_trip_time", "calibrate_bulk_bandwidth",
           "CalibrationRow", "calibrate_machine", "calibration_table"]
