"""Table 2: desired vs observed parameters, dialing one knob at a time.

Each row dials a single LogGP parameter to a target value, runs the
microbenchmarks, and reports the three measured parameters, verifying
that (a) the dial moves its parameter by the intended amount and (b) the
other parameters stay put — with the two coupling effects the paper
itself observes: raising ``o`` raises the effective gap once the
processor becomes the bottleneck, and raising ``L`` raises the effective
gap through the fixed flow-control window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.am.layer import DEFAULT_WINDOW
from repro.am.tuning import TuningKnobs
from repro.calibrate.signature import MeasuredParameters, measure_parameters
from repro.network.loggp import LogGPParams

__all__ = ["CalibrationRow", "calibrate_machine", "calibration_table"]

#: The paper's sweep targets (Table 2).
DESIRED_O = (2.9, 4.9, 7.9, 12.9, 22.9, 52.9, 77.9, 102.9)
DESIRED_G = (5.8, 8.0, 10.0, 15.0, 30.0, 55.0, 80.0, 105.0)
DESIRED_L = (5.0, 7.5, 10.0, 15.0, 30.0, 55.0, 80.0, 105.0)


@dataclass(frozen=True)
class CalibrationRow:
    """One row of Table 2: a target value and what was measured."""

    dialed: str  # which parameter was dialed: "o", "g", or "L"
    desired: float
    measured: MeasuredParameters

    def as_row(self) -> dict:
        """Flat dict row for tabular reporting."""
        return {
            "dialed": self.dialed,
            "desired": self.desired,
            "o": round(self.measured.overhead, 1),
            "g": round(self.measured.gap, 1),
            "L": round(self.measured.latency, 1),
        }


def _knobs_for(dialed: str, desired: float,
               base: LogGPParams) -> TuningKnobs:
    if dialed == "o":
        return TuningKnobs.added_overhead(max(0.0, desired - base.overhead))
    if dialed == "g":
        return TuningKnobs.added_gap(max(0.0, desired - base.gap))
    if dialed == "L":
        return TuningKnobs.added_latency(max(0.0, desired - base.latency))
    raise ValueError(f"unknown dial {dialed!r}")


def calibrate_machine(dialed: str, desired_values: Sequence[float],
                      params: Optional[LogGPParams] = None,
                      window: int = DEFAULT_WINDOW) -> List[CalibrationRow]:
    """Measure one column group of Table 2 (one dial, many targets)."""
    params = params or LogGPParams.berkeley_now()
    rows = []
    for desired in desired_values:
        knobs = _knobs_for(dialed, desired, params)
        measured = measure_parameters(params, knobs, window=window)
        rows.append(CalibrationRow(dialed=dialed, desired=desired,
                                   measured=measured))
    return rows


def calibration_table(params: Optional[LogGPParams] = None,
                      desired_o: Sequence[float] = DESIRED_O,
                      desired_g: Sequence[float] = DESIRED_G,
                      desired_L: Sequence[float] = DESIRED_L,
                      window: int = DEFAULT_WINDOW) -> List[CalibrationRow]:
    """The full Table 2: all three dials swept."""
    params = params or LogGPParams.berkeley_now()
    rows: List[CalibrationRow] = []
    rows += calibrate_machine("o", desired_o, params, window)
    rows += calibrate_machine("g", desired_g, params, window)
    rows += calibrate_machine("L", desired_L, params, window)
    return rows


def render_calibration(rows: List[CalibrationRow]) -> str:
    """ASCII rendering of Table 2."""
    lines = [f"{'dial':>4} {'desired':>8} | {'o':>7} {'g':>7} {'L':>7}"]
    lines.append("-" * len(lines[0]))
    for row in rows:
        cells = row.as_row()
        lines.append(f"{cells['dialed']:>4} {cells['desired']:8.1f} | "
                     f"{cells['o']:7.1f} {cells['g']:7.1f} "
                     f"{cells['L']:7.1f}")
    return "\n".join(lines)
