"""The LogP signature microbenchmark (Figure 3, Section 3.3).

The technique of Culler et al. [15]: a sender issues a burst of ``m``
request messages with a fixed computational delay Δ between them, and
the clock stops when the last message is *issued* (requests/replies
still in flight do not count).  Plotting the average initiation interval
against ``m`` for several Δ gives the machine's LogP signature:

* ``m = 1`` exposes the send overhead;
* long bursts at Δ = 0 approach the steady-state interval — the
  effective gap (possibly raised by the fixed flow-control window at
  large latencies);
* for large Δ the processor is the bottleneck and the interval tends to
  ``o_send + o_recv + Δ`` (each reply costs a receive);
* half the request/response round trip minus both overheads gives L.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.am.layer import AmLayer, DEFAULT_WINDOW, HandlerTable
from repro.am.tuning import TuningKnobs
from repro.network.loggp import LogGPParams
from repro.network.wire import Wire
from repro.sim import Simulator

__all__ = ["LogPSignature", "logp_signature", "measure_parameters",
           "round_trip_time", "MeasuredParameters"]

#: Δ large enough to make the host processor the bottleneck.
LARGE_DELTA_US = 400.0


class _Host:
    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.state: Dict = {"served": 0}


def _echo_handler(am, packet):
    am.host.state["served"] += 1
    yield from am.reply(packet.payload)


def _pair(params: LogGPParams, knobs: TuningKnobs,
          window: int) -> Tuple[Simulator, AmLayer, AmLayer]:
    """A fresh two-node fabric with an echo server registered."""
    sim = Simulator()
    wire = Wire(sim, params.latency)
    table = HandlerTable()
    table.register("cal_echo", _echo_handler)
    ams = []
    for node_id in (0, 1):
        am = AmLayer(sim, node_id, params, knobs, wire, table,
                     window=window)
        am.host = _Host(node_id)
        ams.append(am)
    return sim, ams[0], ams[1]


def _burst_interval(params: LogGPParams, knobs: TuningKnobs,
                    burst: int, delta: float, window: int) -> float:
    """Average initiation interval for one (m, Δ) point, in µs."""
    sim, sender, receiver = _pair(params, knobs, window)

    def send_loop():
        start = sim.now
        for i in range(burst):
            if delta > 0:
                yield sim.timeout(delta)
            # GAM polls on entry to the communication layer: pending
            # replies are received (and paid for) here.
            yield from sender.poll()
            yield from sender.send_request(1, "cal_echo", i)
        return (sim.now - start) / burst

    def serve_loop():
        yield from receiver.wait_until(
            lambda: receiver.host.state["served"] >= burst)

    send_proc = sim.process(send_loop())
    sim.process(serve_loop())
    return sim.run(stop_event=sim.all_of([send_proc]))[send_proc]


@dataclass
class LogPSignature:
    """The Figure 3 data: µs/message for each (Δ, burst size)."""

    params: LogGPParams
    knobs: TuningKnobs
    burst_sizes: List[int]
    deltas: List[float]
    #: intervals[delta][burst] = average µs per message.
    intervals: Dict[float, Dict[int, float]] = field(default_factory=dict)

    def steady_state(self, delta: float) -> float:
        """The large-burst interval for a given Δ."""
        series = self.intervals[delta]
        return series[max(series)]

    def send_overhead(self) -> float:
        """The single-message issue cost (m = 1, Δ = 0)."""
        return self.intervals[0.0][min(self.intervals[0.0])]

    def render(self) -> str:
        """ASCII table of the signature (bursts across, Δ down)."""
        lines = [f"LogP signature: {self.params.describe()} "
                 f"[{self.knobs.describe()}]"]
        header = "delta\\m " + "".join(
            f"{m:>9d}" for m in self.burst_sizes)
        lines.append(header)
        for delta in self.deltas:
            row = "".join(f"{self.intervals[delta][m]:9.2f}"
                          for m in self.burst_sizes)
            lines.append(f"{delta:7.1f} {row}")
        return "\n".join(lines)


def logp_signature(params: Optional[LogGPParams] = None,
                   knobs: Optional[TuningKnobs] = None,
                   burst_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
                   deltas: Sequence[float] = (0.0, 10.0),
                   window: int = DEFAULT_WINDOW) -> LogPSignature:
    """Run the burst microbenchmark grid and return the signature."""
    params = params or LogGPParams.berkeley_now()
    knobs = knobs or TuningKnobs()
    signature = LogPSignature(params=params, knobs=knobs,
                              burst_sizes=list(burst_sizes),
                              deltas=list(deltas))
    for delta in signature.deltas:
        series = {}
        for burst in signature.burst_sizes:
            series[burst] = _burst_interval(params, knobs, burst, delta,
                                            window)
        signature.intervals[delta] = series
    return signature


def round_trip_time(params: Optional[LogGPParams] = None,
                    knobs: Optional[TuningKnobs] = None,
                    window: int = DEFAULT_WINDOW,
                    repeats: int = 8,
                    spacing_us: float = 400.0) -> float:
    """Average request/response round trip (a blocking echo), in µs.

    Pings are spaced by ``spacing_us`` of local computation so one
    ping's transmit-gap stall (which happens *after* injection and so is
    not part of the round trip) never delays the next ping.
    """
    params = params or LogGPParams.berkeley_now()
    knobs = knobs or TuningKnobs()
    sim, sender, receiver = _pair(params, knobs, window)

    def ping_loop():
        total = 0.0
        for i in range(repeats):
            yield sim.timeout(spacing_us)
            yield from sender.poll()
            start = sim.now
            yield from sender.rpc(1, "cal_echo", i)
            total += sim.now - start
        return total / repeats

    def serve_loop():
        yield from receiver.wait_until(
            lambda: receiver.host.state["served"] >= repeats)

    ping = sim.process(ping_loop())
    sim.process(serve_loop())
    return sim.run(stop_event=sim.all_of([ping]))[ping]


@dataclass(frozen=True)
class MeasuredParameters:
    """The LogP view of a machine, as measured by the microbenchmarks."""

    send_overhead: float
    recv_overhead: float
    overhead: float  # the paper's o: average of send and receive
    gap: float
    latency: float
    round_trip: float

    def as_row(self) -> dict:
        """Flat dict row for tabular reporting."""
        return {
            "o (us)": round(self.overhead, 2),
            "g (us)": round(self.gap, 2),
            "L (us)": round(self.latency, 2),
            "RTT (us)": round(self.round_trip, 2),
        }


def measure_parameters(params: Optional[LogGPParams] = None,
                       knobs: Optional[TuningKnobs] = None,
                       window: int = DEFAULT_WINDOW,
                       burst: int = 64) -> MeasuredParameters:
    """Extract (o, g, L) from the microbenchmarks, as the paper does.

    * o_send: single-message issue time;
    * g: steady-state interval of a Δ=0 burst;
    * o_recv: steady-state interval of a large-Δ burst, minus Δ and
      o_send (for sufficiently large Δ the processor is the bottleneck);
    * L: half the round trip minus both overheads.
    """
    params = params or LogGPParams.berkeley_now()
    knobs = knobs or TuningKnobs()
    o_send = _burst_interval(params, knobs, 1, 0.0, window)
    gap = _burst_interval(params, knobs, burst, 0.0, window)
    busy = _burst_interval(params, knobs, burst, LARGE_DELTA_US, window)
    o_recv = busy - LARGE_DELTA_US - o_send
    rtt = round_trip_time(params, knobs, window)
    latency = rtt / 2.0 - o_send - o_recv
    return MeasuredParameters(
        send_overhead=o_send,
        recv_overhead=o_recv,
        overhead=(o_send + o_recv) / 2.0,
        gap=gap,
        latency=latency,
        round_trip=rtt,
    )
