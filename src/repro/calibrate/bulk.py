"""Bulk bandwidth calibration (Section 3.3, last paragraph).

"To calibrate G, we use a similar methodology, but instead send a burst
of bulk messages, each with a fixed size.  From the steady-state
initiation interval and message size we derive the calibrated
bandwidth.  We increase the bulk message size until we no longer
observe an increase in bandwidth."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.am.layer import DEFAULT_WINDOW
from repro.am.tuning import TuningKnobs
from repro.calibrate.signature import _pair
from repro.network.loggp import LogGPParams

__all__ = ["BulkCalibration", "calibrate_bulk_bandwidth"]


@dataclass(frozen=True)
class BulkCalibration:
    """Measured bulk bandwidth at each probed message size."""

    sizes: List[int]
    bandwidths_mb_s: List[float]

    @property
    def saturated_mb_s(self) -> float:
        """The plateau bandwidth (the calibrated ``1/G``)."""
        return max(self.bandwidths_mb_s)

    def as_rows(self) -> List[dict]:
        """Flat dict rows (size, MB/s) for tabular reporting."""
        return [{"size (B)": size, "MB/s": round(bw, 2)}
                for size, bw in zip(self.sizes, self.bandwidths_mb_s)]


def _bulk_rate(params: LogGPParams, knobs: TuningKnobs, size: int,
               count: int, window: int) -> float:
    """Steady-state MB/s for a burst of ``count`` bulk one-way sends."""
    sim, sender, receiver = _pair(params, knobs, window)
    received = {"n": 0}

    def sink(am, packet):
        received["n"] += 1
        return None

    sender.handlers.register("cal_bulk_sink", sink)

    def send_loop():
        start = sim.now
        for i in range(count):
            yield from sender.bulk_oneway(1, "cal_bulk_sink", i, size)
        yield from sender.drain()
        return size * count / (sim.now - start)  # bytes/us == MB/s

    def serve_loop():
        yield from receiver.wait_until(lambda: received["n"] >= count)

    proc = sim.process(send_loop())
    sim.process(serve_loop())
    return sim.run(stop_event=sim.all_of([proc]))[proc]


def calibrate_bulk_bandwidth(
        params: Optional[LogGPParams] = None,
        knobs: Optional[TuningKnobs] = None,
        sizes: Sequence[int] = (256, 512, 1024, 2048, 4096, 8192, 16384),
        count: int = 16,
        window: int = DEFAULT_WINDOW) -> BulkCalibration:
    """Probe increasing bulk sizes until bandwidth saturates."""
    params = params or LogGPParams.berkeley_now()
    knobs = knobs or TuningKnobs()
    bandwidths = [_bulk_rate(params, knobs, size, count, window)
                  for size in sizes]
    return BulkCalibration(sizes=list(sizes), bandwidths_mb_s=bandwidths)
