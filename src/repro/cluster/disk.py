"""A simple seek-plus-streaming disk model.

NOW-sort in the paper is disk-to-disk: each node reads records from one
disk and writes to another, each spindle delivering about 5.5 MB/s.  The
paper's Figure 8 result — NOW-sort ignores network bandwidth until the
network is slower than a single disk — falls out of this model.
"""

from __future__ import annotations

from typing import Generator

from repro.sim import Resource, Simulator

__all__ = ["Disk", "DEFAULT_DISK_MB_S"]

#: Streaming bandwidth of one spindle (paper reference [4]): 5.5 MB/s.
DEFAULT_DISK_MB_S = 5.5


class Disk:
    """One spindle: exclusive arm, fixed streaming bandwidth.

    Transfers are generators so callers overlap disk time with
    communication exactly the way NOW-sort overlaps its phases.
    """

    def __init__(self, sim: Simulator, name: str = "disk",
                 bandwidth_mb_s: float = DEFAULT_DISK_MB_S,
                 seek_us: float = 10_000.0) -> None:
        if bandwidth_mb_s <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth_mb_s}")
        if seek_us < 0:
            raise ValueError(f"seek time must be >= 0, got {seek_us}")
        self.sim = sim
        self.name = name
        self.bandwidth_mb_s = bandwidth_mb_s
        self.seek_us = seek_us
        self._arm = Resource(sim, capacity=1, name=f"arm:{name}")
        self.bytes_transferred = 0
        self.busy_us = 0.0

    @property
    def us_per_byte(self) -> float:
        """Streaming transfer time per byte (µs)."""
        return 1.0 / self.bandwidth_mb_s

    def transfer(self, nbytes: int, seek: bool = False) -> Generator:
        """Read or write ``nbytes`` sequentially; optionally seek first.

        Sequential streaming (the common case for the sort) passes
        ``seek=False``; the first access of a pass should pay the seek.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer: {nbytes}")
        request = self._arm.request()
        yield request
        try:
            duration = nbytes * self.us_per_byte
            if seek:
                duration += self.seek_us
            self.bytes_transferred += nbytes
            self.busy_us += duration
            yield self.sim.timeout(duration)
        finally:
            self._arm.release()

    def read(self, nbytes: int, seek: bool = False) -> Generator:
        """Alias of :meth:`transfer` for readability at call sites."""
        yield from self.transfer(nbytes, seek=seek)

    def write(self, nbytes: int, seek: bool = False) -> Generator:
        """Alias of :meth:`transfer` for readability at call sites."""
        yield from self.transfer(nbytes, seek=seek)
