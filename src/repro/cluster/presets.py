"""Named machine configurations (Table 1 of the paper)."""

from __future__ import annotations

from typing import Dict

from repro.network.loggp import LogGPParams

__all__ = ["MACHINE_PRESETS", "preset"]

#: The machines of Table 1, plus the TCP/IP LAN end point the overhead
#: sweep extrapolates to (Section 5.1).
MACHINE_PRESETS: Dict[str, LogGPParams] = {
    "berkeley-now": LogGPParams.berkeley_now(),
    "intel-paragon": LogGPParams.intel_paragon(),
    "meiko-cs2": LogGPParams.meiko_cs2(),
    "lan-tcp": LogGPParams.lan_tcp(),
}


def preset(name: str) -> LogGPParams:
    """Look up a machine preset by name."""
    try:
        return MACHINE_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(MACHINE_PRESETS))
        raise KeyError(f"unknown machine {name!r}; known: {known}") \
            from None
