"""The cluster: nodes + fabric + AM layers, and the run orchestrator.

A :class:`Cluster` captures a machine configuration (node count, baseline
LogGP parameters, tuning dials, flow-control window, CPU cost model).
Each :meth:`Cluster.run` builds a fresh simulator, wires everything up,
executes one application to completion, and returns a :class:`RunResult`
with the measured runtime and full communication statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.am.layer import AmLayer, DEFAULT_WINDOW, HandlerTable
from repro.am.tuning import TuningKnobs
from repro.cluster.node import CostModel, Node
from repro.gas.runtime import LivelockError, Proc, register_gas_handlers
from repro.instruments.balance import balance_matrix, render_balance
from repro.instruments.stats import ClusterStats
from repro.instruments.summary import CommunicationSummary, summarize
from repro.network.loggp import LogGPParams
from repro.network.wire import Wire
from repro.sim import Simulator, StalledError

__all__ = ["Cluster", "RunResult"]


@dataclass
class RunResult:
    """Outcome of one application run on one machine configuration."""

    app_name: str
    n_nodes: int
    params: LogGPParams
    knobs: TuningKnobs
    #: Measured runtime of the timed region, simulated microseconds.
    runtime_us: float
    stats: ClusterStats
    #: Whatever the application's ``finalize`` returned.
    output: Any = None
    #: Diagnostic: total simulator events processed for this run.
    events_processed: int = 0
    #: :class:`~repro.sanitize.reports.SanitizerReport` when the run was
    #: sanitized, else ``None``.  Deliberately absent from
    #: :meth:`to_dict`: sanitized runs never enter the run cache.
    sanitizer: Any = None

    @property
    def runtime_s(self) -> float:
        """Runtime in simulated seconds."""
        return self.runtime_us / 1e6

    def summary(self) -> CommunicationSummary:
        """The Table 4 row for this run."""
        return summarize(self.app_name, self.stats)

    def balance(self):
        """The Figure 4 matrix for this run (normalised message counts)."""
        return balance_matrix(self.stats)

    def render_balance(self) -> str:
        """ASCII rendering of the Figure 4 matrix."""
        return render_balance(self.stats, title=self.app_name)

    def slowdown_vs(self, baseline: "RunResult") -> float:
        """This run's slowdown relative to a baseline run."""
        if baseline.runtime_us <= 0:
            raise ValueError("baseline runtime is not positive")
        return self.runtime_us / baseline.runtime_us

    # -- serialisation (the on-disk run cache) -------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict of everything except ``output``.

        ``output`` is whatever the application's ``finalize`` returned
        (often large numpy arrays used only for correctness checks), so
        the cache drops it; a cache-restored result has ``output=None``.
        """
        import dataclasses
        return {
            "app_name": self.app_name,
            "n_nodes": self.n_nodes,
            "params": dataclasses.asdict(self.params),
            "knobs": dataclasses.asdict(self.knobs),
            "runtime_us": self.runtime_us,
            "stats": self.stats.to_dict(),
            "events_processed": self.events_processed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Rebuild a result produced by :meth:`to_dict` (no ``output``)."""
        return cls(
            app_name=data["app_name"],
            n_nodes=data["n_nodes"],
            params=LogGPParams(**data["params"]),
            knobs=TuningKnobs(**data["knobs"]),
            runtime_us=data["runtime_us"],
            stats=ClusterStats.from_dict(data["stats"]),
            output=None,
            events_processed=data["events_processed"],
        )


class Cluster:
    """A simulated cluster with dialable communication performance.

    Parameters
    ----------
    n_nodes:
        Number of workstations (the paper uses 16 and 32).
    params:
        Baseline LogGP parameters; default Berkeley NOW (Table 1).
    knobs:
        The apparatus dials; default all-zero (unmodified machine).
    window:
        Fixed flow-control window of outstanding messages per node.
    cost:
        Host CPU cost model; default approximates the UltraSPARC 170.
    disks_per_node:
        Spindles per node (NOW-sort uses two).
    seed:
        Master seed for deterministic workload generation.
    run_limit_us:
        Optional hard cap on simulated time per run; exceeding it raises
        ``TimeoutError`` (used to bound livelocked configurations).
    livelock_limit:
        Per-rank failed-lock budget before ``LivelockError``.
    faults:
        Optional :class:`~repro.network.faults.FaultPlan` making the
        wire imperfect (drops, delay spikes, slowdown windows).  A null
        plan is normalised to ``None``, so the reliability machinery is
        provably absent on the perfectly reliable fabric and such runs
        stay bit-identical to runs that never mention faults.
    sanitize:
        Run under the simsan happens-before sanitizer (see
        ARCHITECTURE.md section 11): races land on
        ``RunResult.sanitizer``, deadlocks raise
        :class:`~repro.sanitize.reports.DeadlockError`.  The sanitizer
        adds zero *simulated* cost, so runtime/event counts stay
        bit-identical; sanitized runs are excluded from the run cache.
    engine:
        Scheduling tier for the event core: ``"heap"`` (reference) or
        ``"calendar"``/``"fast"`` (the raw-speed tier, see
        ARCHITECTURE.md section 13).  ``None`` (default) defers to the
        process-wide default (``repro.sim.set_default_engine``).  The
        tiers replay every workload bit-identically, so this knob never
        affects results, stats, or cache keys — only wall-clock.
    """

    def __init__(self, n_nodes: int,
                 params: Optional[LogGPParams] = None,
                 knobs: Optional[TuningKnobs] = None,
                 window: int = DEFAULT_WINDOW,
                 window_scope: str = "per-destination",
                 fabric: str = "flat",
                 cost: Optional[CostModel] = None,
                 disks_per_node: int = 2,
                 seed: int = 0,
                 run_limit_us: Optional[float] = None,
                 livelock_limit: int = 200_000,
                 faults: Optional["FaultPlan"] = None,  # noqa: F821
                 sanitize: bool = False,
                 coll: Optional["CollConfig"] = None,  # noqa: F821
                 engine: Optional[str] = None) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = n_nodes
        self.params = params if params is not None \
            else LogGPParams.berkeley_now()
        self.knobs = knobs if knobs is not None else TuningKnobs()
        self.window = window
        self.window_scope = window_scope
        if fabric not in ("flat", "myrinet", "ethernet"):
            raise ValueError(f"unknown fabric {fabric!r}")
        self.fabric = fabric
        self.cost = cost if cost is not None else CostModel()
        self.disks_per_node = disks_per_node
        self.seed = seed
        self.run_limit_us = run_limit_us
        self.livelock_limit = livelock_limit
        if faults is not None and faults.is_null:
            faults = None
        if faults is not None and fabric != "flat":
            raise ValueError(
                "fault injection is only modelled on the flat fabric")
        self.faults = faults
        self.sanitize = sanitize
        # A default (fixed, no overrides) tuning config is normalised to
        # None — the legacy schedules — so such clusters are provably
        # identical to ones that never mention tuning (and share cache
        # entries, mirroring the null-fault-plan rule).
        if coll is not None and coll.is_default:
            coll = None
        self.coll = coll
        #: Scheduling tier for the simulator (see repro.sim.ENGINES).
        #: ``None`` defers to the process-wide default at run() time.
        #: Both tiers are bit-identical by contract, so this knob is
        #: deliberately NOT part of the run-cache key space.
        self.engine = engine

    def with_knobs(self, knobs: TuningKnobs) -> "Cluster":
        """A cluster identical to this one but with different dials."""
        return Cluster(self.n_nodes, params=self.params, knobs=knobs,
                       window=self.window,
                       window_scope=self.window_scope,
                       fabric=self.fabric, cost=self.cost,
                       disks_per_node=self.disks_per_node, seed=self.seed,
                       run_limit_us=self.run_limit_us,
                       livelock_limit=self.livelock_limit,
                       faults=self.faults,
                       sanitize=self.sanitize,
                       coll=self.coll,
                       engine=self.engine)

    # -- running applications -------------------------------------------------
    def run(self, app: "Application",
            tracer: Optional["MessageTracer"] = None,  # noqa: F821
            recorder: Optional["DepRecorder"] = None  # noqa: F821
            ) -> RunResult:
        """Execute ``app`` once on this configuration.

        Passing a :class:`~repro.instruments.trace.MessageTracer`
        records every message's send/inject/deliver/handle timeline.
        Passing a :class:`~repro.cost.recorder.DepRecorder` captures
        the run's communication dependency DAG for simcost — strictly
        observation-only, so the run stays bit-identical (and, like
        ``tracer`` and ``sanitize``, the recorder is never part of the
        run-cache key space).
        """
        if recorder is not None:
            # The replay model (repro.cost.predict) covers exactly the
            # flat reliable fabric with an undialed receive context;
            # refuse regimes whose scheduling it cannot reproduce.
            if getattr(app, "open_system", False):
                from repro.cost.predict import UnsupportedGraphError
                raise UnsupportedGraphError(
                    f"simcost cannot record open-system app "
                    f"{app.name!r}: arrivals from outside the rank set "
                    f"have no closed dependency graph to replay")
            if self.fabric != "flat":
                raise ValueError(
                    f"simcost recording requires the flat fabric, "
                    f"not {self.fabric!r}")
            if self.faults is not None:
                raise ValueError(
                    "simcost recording requires a reliable fabric "
                    "(no fault plan)")
            if self.knobs.delta_occ > 0:
                raise ValueError(
                    "simcost recording does not support dialed "
                    "occupancy (delta_occ > 0)")
        sim = Simulator(engine=self.engine)
        stats = ClusterStats(self.n_nodes)
        if self.fabric == "myrinet":
            from repro.network.topology import SwitchedFabric
            wire = SwitchedFabric(
                sim, hop_latency=self.params.latency / 3.0,
                n_hosts=max(self.n_nodes, 1))
        elif self.fabric == "ethernet":
            from repro.network.ethernet import SharedMediumFabric
            wire = SharedMediumFabric(sim)
        else:
            injector = None
            if self.faults is not None:
                from repro.network.faults import FaultInjector
                injector = FaultInjector(self.faults, self.seed)
            wire = Wire(sim, self.params.latency, injector=injector,
                        stats=stats)
        table = HandlerTable()
        register_gas_handlers(table)
        app.configure(self.n_nodes, self.seed)
        app.register_handlers(table)
        if recorder is not None:
            recorder.begin_run(self, app.name)

        sanitizer = None
        if self.sanitize:
            from repro.sanitize.monitor import Sanitizer
            sanitizer = Sanitizer(self.n_nodes, sim)

        coll_tuner = None
        if self.coll is not None:
            from repro.coll.tuner import tuner_from_config
            coll_tuner = tuner_from_config(self.coll)

        procs: List[Proc] = []
        for node_id in range(self.n_nodes):
            node = Node(sim, node_id, self.cost,
                        n_disks=self.disks_per_node)
            am = AmLayer(sim, node_id, self.params, self.knobs, wire,
                         table, window=self.window,
                         window_scope=self.window_scope, stats=stats,
                         tracer=tracer, faults=self.faults,
                         sanitizer=sanitizer, recorder=recorder)
            proc = Proc(sim, node_id, self.n_nodes, node, am, stats=stats,
                        seed=self.seed,
                        livelock_limit=self.livelock_limit,
                        sanitizer=sanitizer, coll_tuner=coll_tuner)
            am.host = proc
            procs.append(proc)

        drivers = [
            sim.process(self._drive(app, proc, stats, recorder),
                        name=f"rank{proc.rank}")
            for proc in procs
        ]
        done = sim.all_of(drivers)
        try:
            sim.run(until=self.run_limit_us, stop_event=done)
        except StalledError as exc:
            # The heap drained with ranks still blocked: a true deadlock.
            # Diagnose it from the wait-for graph (rich annotations when
            # the sanitizer is on; the raw blocked events otherwise).
            from repro.sanitize.deadlock import diagnose_stall
            from repro.sanitize.reports import DeadlockError
            raise DeadlockError(
                diagnose_stall(sanitizer, drivers, sim.now)) from exc
        except LivelockError as exc:
            if sanitizer is not None:
                from repro.sanitize.deadlock import lock_cycle
                from repro.sanitize.reports import DeadlockError
                report = lock_cycle(sanitizer)
                if report is not None:
                    # The livelock is really a lock-ordering deadlock:
                    # the spinning ranks wait on each other in a cycle.
                    raise DeadlockError(report) from exc
            raise

        for proc in procs:
            leaked = proc.am.nic.reassembly_teardown()
            stats.record_reassembly_leaks(proc.rank, leaked)
        if recorder is not None:
            recorder.finish(stats.runtime_us)
        output = app.finalize(procs)
        return RunResult(
            app_name=app.name,
            n_nodes=self.n_nodes,
            params=self.params,
            knobs=self.knobs,
            runtime_us=stats.runtime_us,
            stats=stats,
            output=output,
            events_processed=sim.events_processed,
            sanitizer=sanitizer.report() if sanitizer is not None else None,
        )

    def _drive(self, app: "Application", proc: Proc,  # noqa: F821
               stats: ClusterStats,
               recorder: Optional["DepRecorder"] = None):  # noqa: F821
        """Per-rank driver: untimed setup, timed region, teardown."""
        yield from app.setup_rank(proc)
        yield from proc.barrier()
        if proc.rank == 0:
            stats.start_measurement(proc.sim.now)
            if recorder is not None:
                recorder.on_mark(proc.rank, "start", proc.sim.now)
        yield from app.run_rank(proc)
        yield from proc.sync()
        yield from proc.am.drain()
        yield from proc.barrier()
        if proc.rank == 0:
            stats.stop_measurement(proc.sim.now)
            if recorder is not None:
                recorder.on_mark(proc.rank, "stop", proc.sim.now)

    def describe(self) -> str:
        """One-line summary of the configuration."""
        text = (f"Cluster(P={self.n_nodes}, {self.params.describe()}, "
                f"{self.knobs.describe()}, window={self.window}")
        if self.faults is not None:
            text += f", {self.faults.describe()}"
        return text + ")"
