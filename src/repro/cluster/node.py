"""A workstation node: host processor cost model, memory, disks.

The host processor is not modelled cycle-by-cycle; application *compute*
phases charge simulated microseconds through a :class:`CostModel` whose
constants approximate the paper's 167 MHz UltraSPARC 170.  Communication
costs are never charged here — they are produced by the AM/NIC/wire
pipeline so that the LogGP dials act on them exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from repro.cluster.disk import Disk
from repro.sim import Simulator

__all__ = ["CostModel", "Node"]


@dataclass(frozen=True)
class CostModel:
    """Host CPU cost constants, in microseconds.

    ``cpu_scale`` multiplies every cost — ``2.0`` emulates a processor
    half as fast, which is how the paper's closing trade-off (processor
    speed vs communication performance) can be explored.
    """

    #: Global multiplier on all compute costs.
    cpu_scale: float = 1.0
    #: One "simple operation" — an integer op plus its share of loads and
    #: stores.  0.02 µs ≈ 50 M simple ops/s, a realistic sustained rate
    #: for a 167 MHz UltraSPARC running pointer-heavy C.
    us_per_op: float = 0.02
    #: Copying one byte through the memory system (bcopy-style).
    us_per_byte_copied: float = 0.005
    #: One force interaction in the N-body kernel: ~30 flops with a
    #: sqrt and cache-missy tree-node loads (SPLASH-2 Barnes spends a
    #: few hundred cycles per interaction on machines of this era).
    us_per_flop_interaction: float = 2.0
    #: Expanding one protocol state (Murphi): firing every rule,
    #: canonicalising, hashing, probing the state table — the paper's
    #: SCI model spends on the order of a millisecond per state; our
    #: synthetic protocol is lighter.
    us_per_state_hash: float = 200.0
    #: Local work on one graph edge (Connect union-find step, EM3D
    #: gather term): irregular pointer chasing, ~150 cycles.
    us_per_edge: float = 1.0
    #: Local work on one sort key per pass (histogram/rank/permute with
    #: random access): Radb's measured ~7.5 µs per key across its ~6
    #: key-passes gives ~1.2 µs per key-pass on the UltraSPARC 170.
    us_per_key: float = 1.0

    def __post_init__(self) -> None:
        for field_name in ("cpu_scale", "us_per_op", "us_per_byte_copied",
                           "us_per_flop_interaction", "us_per_state_hash",
                           "us_per_edge", "us_per_key"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")

    def scaled(self, factor: float) -> "CostModel":
        """A cost model for a CPU ``factor``× slower than this one."""
        return replace(self, cpu_scale=self.cpu_scale * factor)

    # -- helpers used by the applications ---------------------------------
    def ops(self, count: float) -> float:
        """Microseconds for ``count`` simple operations."""
        return count * self.us_per_op * self.cpu_scale

    def copy_bytes(self, nbytes: float) -> float:
        """Microseconds to copy ``nbytes`` through memory."""
        return nbytes * self.us_per_byte_copied * self.cpu_scale

    def interactions(self, count: float) -> float:
        """Microseconds for ``count`` N-body force interactions."""
        return count * self.us_per_flop_interaction * self.cpu_scale

    def state_hashes(self, count: float) -> float:
        """Microseconds to hash/compare ``count`` protocol states."""
        return count * self.us_per_state_hash * self.cpu_scale

    def edges(self, count: float) -> float:
        """Microseconds of per-edge graph work."""
        return count * self.us_per_edge * self.cpu_scale

    def keys(self, count: float) -> float:
        """Microseconds of per-key sorting work (one pass)."""
        return count * self.us_per_key * self.cpu_scale


class Node:
    """One workstation of the cluster."""

    def __init__(self, sim: Simulator, node_id: int, cost: CostModel,
                 n_disks: int = 2) -> None:
        if n_disks < 0:
            raise ValueError(f"n_disks must be >= 0, got {n_disks}")
        self.sim = sim
        self.node_id = node_id
        self.cost = cost
        self.disks: List[Disk] = [
            Disk(sim, name=f"disk{d}[{node_id}]") for d in range(n_disks)]
        #: Total microseconds this node's host CPU spent in compute()
        #: (diagnostic; communication overhead is tracked by the AM layer).
        self.compute_us = 0.0

    def disk(self, index: int) -> Disk:
        """The ``index``-th spindle of this node."""
        return self.disks[index]
