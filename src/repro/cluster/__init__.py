"""The machine model: nodes, disks, and the cluster builder.

* :mod:`repro.cluster.disk` -- the disk model used by NOW-sort (5.5 MB/s
  per spindle, as measured in the paper's reference [4]).
* :mod:`repro.cluster.node` -- a workstation: host CPU cost model, local
  memory, attached disks.
* :mod:`repro.cluster.machine` -- :class:`Cluster`, which wires nodes, a
  fabric, and AM layers together and runs applications.
* :mod:`repro.cluster.presets` -- named machine configurations
  (Berkeley NOW, Intel Paragon, Meiko CS-2, TCP/IP LAN).
"""

from repro.cluster.disk import Disk
from repro.cluster.node import CostModel, Node
from repro.cluster.machine import Cluster, RunResult

__all__ = ["Disk", "CostModel", "Node", "Cluster", "RunResult"]
