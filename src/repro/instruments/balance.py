"""Figure 4: communication balance between processors.

The paper renders, for each application, a P×P greyscale image where the
darkness of cell (i, j) is the fraction of messages sent from processor i
to processor j.  We expose the normalised matrix and an ASCII renderer
(dark = high message count) so the figure can be regenerated in a
terminal or dumped to CSV.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.instruments.stats import ClusterStats

__all__ = ["balance_matrix", "render_balance", "GREYSCALE"]

#: Light-to-dark ASCII ramp used to render message densities.
GREYSCALE = " .:-=+*#%@"


def balance_matrix(stats: ClusterStats) -> np.ndarray:
    """The Figure 4 matrix: messages sent i→j, scaled to [0, 1].

    Each application is individually scaled so that 1.0 is the maximum
    per-pair message count, as in the paper.
    """
    matrix = stats.matrix.astype(float)
    peak = matrix.max()
    if peak > 0:
        matrix /= peak
    return matrix


def render_balance(stats: ClusterStats, title: str = "",
                   matrix: Optional[np.ndarray] = None) -> str:
    """ASCII rendering of the balance matrix.

    Rows are senders (y-coordinate in the paper), columns receivers.
    """
    if matrix is None:
        matrix = balance_matrix(stats)
    n = matrix.shape[0]
    levels = len(GREYSCALE) - 1
    lines = []
    if title:
        lines.append(f"-- {title} (senders down, receivers across) --")
    header = "    " + "".join(f"{j % 10}" for j in range(n))
    lines.append(header)
    for i in range(n):
        cells = "".join(
            GREYSCALE[int(round(matrix[i, j] * levels))] for j in range(n))
        lines.append(f"{i:3d} {cells}")
    return "\n".join(lines)
