"""Instrumentation of the communication layer.

The paper instruments its communication layer to record baseline
characteristics (Table 4) and communication balance (Figure 4).  This
package provides the same:

* :mod:`repro.instruments.stats` -- raw counters updated by the AM layer.
* :mod:`repro.instruments.summary` -- Table 4's derived per-application
  metrics.
* :mod:`repro.instruments.balance` -- Figure 4's per-pair message-count
  matrices and an ASCII greyscale renderer.
"""

from repro.instruments.stats import ClusterStats
from repro.instruments.summary import CommunicationSummary, summarize
from repro.instruments.balance import balance_matrix, render_balance
from repro.instruments.trace import MessageTracer, MessageTimeline

__all__ = ["ClusterStats", "CommunicationSummary", "summarize",
           "balance_matrix", "render_balance", "MessageTracer",
           "MessageTimeline"]
