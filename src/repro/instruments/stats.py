"""Raw communication counters, updated by the AM layer as messages move.

A *message* here is a logical Active Message -- a request, a reply
(explicit or automatic ack), a one-way message, or a whole bulk transfer
-- matching what the paper counts in Table 4 ("messages sent per
processor" includes both halves of each request/response pair).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.network.packet import Packet, PacketKind

__all__ = ["ClusterStats"]


class ClusterStats:
    """Per-node and per-pair communication counters for one run."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = n_nodes
        #: messages[src, dst] — logical messages sent src→dst.
        self.matrix = np.zeros((n_nodes, n_nodes), dtype=np.int64)
        #: Per-node totals by category.
        self.messages_sent = np.zeros(n_nodes, dtype=np.int64)
        self.bulk_messages_sent = np.zeros(n_nodes, dtype=np.int64)
        self.read_messages_sent = np.zeros(n_nodes, dtype=np.int64)
        self.small_bytes_sent = np.zeros(n_nodes, dtype=np.int64)
        self.bulk_bytes_sent = np.zeros(n_nodes, dtype=np.int64)
        self.messages_received = np.zeros(n_nodes, dtype=np.int64)
        #: Barrier crossings per node (set by the GAS layer).
        self.barriers = np.zeros(n_nodes, dtype=np.int64)
        #: Failed lock acquisition attempts per node (Barnes livelock).
        self.failed_lock_attempts = np.zeros(n_nodes, dtype=np.int64)
        #: Packets dropped by the fault injector, charged to the sender.
        self.packets_dropped = np.zeros(n_nodes, dtype=np.int64)
        #: Reliability-protocol retransmissions per sending node.
        self.retransmissions = np.zeros(n_nodes, dtype=np.int64)
        #: Duplicate packets suppressed per receiving node.
        self.duplicates_suppressed = np.zeros(n_nodes, dtype=np.int64)
        #: Bulk transfers still unreassembled at teardown (the leak
        #: diagnostic; set once per run, not gated on the timed region).
        self.reassembly_leaks = np.zeros(n_nodes, dtype=np.int64)
        #: Simulated µs each node's NIC transmit context was busy.
        self.tx_busy_us = np.zeros(n_nodes, dtype=np.float64)
        #: Collective invocations per node, keyed ``"kind/algorithm"``
        #: (e.g. ``"broadcast/binomial"``); arrays created lazily the
        #: first time a (kind, algo) pair is dispatched.
        self.collective_calls: dict = {}
        #: Declared payload bytes per node for the same keys.
        self.collective_bytes: dict = {}
        #: Application start/end in simulated µs (set by the runtime).
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Counters only accumulate inside the measured region, so
        #: untimed setup traffic does not pollute Table 4.
        self.enabled = False
        #: Optional open-system SLO instruments
        #: (:class:`~repro.serve.metrics.ServingMetrics`), attached by
        #: serving apps at setup.  None for every closed BSP run, and
        #: serialized only when present, so legacy runs stay
        #: byte-identical on disk.
        self.serving = None

    # -- measured-region control --------------------------------------------
    def start_measurement(self, now: float) -> None:
        """Begin the timed region (called after the entry barrier)."""
        self.started_at = now
        self.enabled = True

    def stop_measurement(self, now: float) -> None:
        """End the timed region (called after the exit barrier)."""
        self.finished_at = now
        self.enabled = False

    # -- hooks called by the communication layer ---------------------------
    def on_send(self, node_id: int, packet: Packet) -> None:
        """One logical message left ``node_id`` (host-level send)."""
        if not self.enabled:
            return
        self.messages_sent[node_id] += 1
        self.matrix[node_id, packet.dst] += 1
        if packet.is_bulk:
            self.bulk_messages_sent[node_id] += 1
            self.bulk_bytes_sent[node_id] += packet.logical_bytes
        else:
            self.small_bytes_sent[node_id] += packet.logical_bytes
        if packet.is_read:
            self.read_messages_sent[node_id] += 1

    def on_host_recv(self, node_id: int, packet: Packet) -> None:
        """The host at ``node_id`` paid receive overhead for a message."""
        if not self.enabled:
            return
        self.messages_received[node_id] += 1

    def on_barrier(self, node_id: int) -> None:
        """``node_id`` completed a barrier."""
        if not self.enabled:
            return
        self.barriers[node_id] += 1

    def on_failed_lock(self, node_id: int) -> None:
        """``node_id`` had a lock acquisition denied (retry follows)."""
        self.failed_lock_attempts[node_id] += 1

    def on_packet_dropped(self, node_id: int, packet: Packet) -> None:
        """The fault injector dropped a packet sent by ``node_id``."""
        if not self.enabled:
            return
        self.packets_dropped[node_id] += 1

    def on_retransmit(self, node_id: int, packet: Packet) -> None:
        """``node_id``'s NIC retransmitted an unacked packet."""
        if not self.enabled:
            return
        self.retransmissions[node_id] += 1

    def on_duplicate(self, node_id: int, packet: Packet) -> None:
        """``node_id``'s NIC suppressed a duplicate sequence number."""
        if not self.enabled:
            return
        self.duplicates_suppressed[node_id] += 1

    def on_collective(self, kind: str, algo: str, rank: int,
                      nbytes: int) -> None:
        """Rank ``rank`` dispatched one ``kind`` collective scheduled as
        ``algo``, declaring ``nbytes`` payload bytes.

        Called once per rank per invocation by ``repro.coll.api``, so
        tuned-vs-untuned runs are auditable from stats alone: the keys
        say exactly which schedules ran, and how often.
        """
        if not self.enabled:
            return
        key = f"{kind}/{algo}"
        calls = self.collective_calls.get(key)
        if calls is None:
            calls = self.collective_calls.setdefault(
                key, np.zeros(self.n_nodes, dtype=np.int64))
            self.collective_bytes.setdefault(
                key, np.zeros(self.n_nodes, dtype=np.int64))
        calls[rank] += 1
        self.collective_bytes[key][rank] += nbytes

    @property
    def total_collectives(self) -> int:
        """Collective invocations dispatched, summed over all nodes and
        kinds (each invocation counted once per participating rank)."""
        return int(sum(int(arr.sum())
                       for arr in self.collective_calls.values()))

    def on_tx_busy(self, node_id: int, busy_us: float) -> None:
        """``node_id``'s transmit context was busy for ``busy_us``."""
        if not self.enabled:
            return
        self.tx_busy_us[node_id] += busy_us

    def record_reassembly_leaks(self, node_id: int, count: int) -> None:
        """Teardown diagnostic: bulk transfers that never completed."""
        self.reassembly_leaks[node_id] = count

    # -- aggregates ---------------------------------------------------------
    @property
    def runtime_us(self) -> float:
        """Wall-clock of the measured region in simulated microseconds."""
        if self.started_at is None or self.finished_at is None:
            raise RuntimeError("run has not completed")
        return self.finished_at - self.started_at

    @property
    def total_messages(self) -> int:
        """All logical messages sent by all nodes."""
        return int(self.messages_sent.sum())

    @property
    def avg_messages_per_node(self) -> float:
        return float(self.messages_sent.mean())

    @property
    def max_messages_per_node(self) -> int:
        return int(self.messages_sent.max())

    @property
    def communication_balance(self) -> float:
        """Max over average messages per node (1.0 = perfectly balanced)."""
        avg = self.avg_messages_per_node
        if avg == 0:
            return 1.0
        return self.max_messages_per_node / avg

    @property
    def total_packets_dropped(self) -> int:
        """Packets removed by the fault injector, all nodes."""
        return int(self.packets_dropped.sum())

    @property
    def total_retransmissions(self) -> int:
        """Reliability-protocol retransmissions, all nodes."""
        return int(self.retransmissions.sum())

    @property
    def total_duplicates_suppressed(self) -> int:
        """Duplicate packets suppressed, all nodes."""
        return int(self.duplicates_suppressed.sum())

    @property
    def total_reassembly_leaks(self) -> int:
        """Bulk transfers still unreassembled at teardown, all nodes."""
        return int(self.reassembly_leaks.sum())

    @property
    def transmit_busy_fraction(self) -> np.ndarray:
        """Per-node fraction of the measured region the NIC transmit
        context spent busy (DMA + injection stalls)."""
        return self.tx_busy_us / self.runtime_us

    # -- serialisation (the on-disk run cache) -------------------------------
    _ARRAY_FIELDS = ("matrix", "messages_sent", "bulk_messages_sent",
                     "read_messages_sent", "small_bytes_sent",
                     "bulk_bytes_sent", "messages_received", "barriers",
                     "failed_lock_attempts", "packets_dropped",
                     "retransmissions", "duplicates_suppressed",
                     "reassembly_leaks")
    _FLOAT_ARRAY_FIELDS = ("tx_busy_us",)

    def to_dict(self) -> dict:
        """JSON-safe dict capturing every counter (arrays as lists)."""
        data = {name: getattr(self, name).tolist()
                for name in self._ARRAY_FIELDS + self._FLOAT_ARRAY_FIELDS}
        data["n_nodes"] = self.n_nodes
        data["started_at"] = self.started_at
        data["finished_at"] = self.finished_at
        data["collective_calls"] = {
            key: arr.tolist()
            for key, arr in sorted(self.collective_calls.items())}
        data["collective_bytes"] = {
            key: arr.tolist()
            for key, arr in sorted(self.collective_bytes.items())}
        # Key present only for serving runs: closed-run serializations
        # (and their pinned cache payload hashes) stay byte-identical.
        if self.serving is not None:
            data["serving"] = self.serving.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterStats":
        """Rebuild a stats object produced by :meth:`to_dict`."""
        stats = cls(data["n_nodes"])
        for name in cls._ARRAY_FIELDS:
            array = np.asarray(data[name], dtype=np.int64)
            getattr(stats, name)[...] = array
        for name in cls._FLOAT_ARRAY_FIELDS:
            array = np.asarray(data[name], dtype=np.float64)
            getattr(stats, name)[...] = array
        stats.started_at = data["started_at"]
        stats.finished_at = data["finished_at"]
        for field_name in ("collective_calls", "collective_bytes"):
            restored = {
                key: np.asarray(values, dtype=np.int64)
                for key, values in data.get(field_name, {}).items()}
            setattr(stats, field_name, restored)
        if data.get("serving") is not None:
            from repro.serve.metrics import ServingMetrics
            stats.serving = ServingMetrics.from_dict(data["serving"])
        return stats

    def per_node_rows(self) -> List[dict]:
        """One diagnostic dict per node."""
        return [
            {
                "node": node,
                "messages_sent": int(self.messages_sent[node]),
                "bulk_messages": int(self.bulk_messages_sent[node]),
                "reads": int(self.read_messages_sent[node]),
                "small_bytes": int(self.small_bytes_sent[node]),
                "bulk_bytes": int(self.bulk_bytes_sent[node]),
                "barriers": int(self.barriers[node]),
                "dropped": int(self.packets_dropped[node]),
                "retransmits": int(self.retransmissions[node]),
                "collectives": int(sum(
                    int(arr[node])
                    for arr in self.collective_calls.values())),
            }
            for node in range(self.n_nodes)
        ]
