"""Table 4's derived communication summary for one application run.

Given the raw :class:`~repro.instruments.stats.ClusterStats` of a run,
compute the columns of the paper's Table 4: average/maximum messages per
processor, message frequency (msgs/proc/ms), average message interval
(µs), average barrier interval (ms), percentage of bulk messages,
percentage of reads, and per-processor bulk/small bandwidth (KB/s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.instruments.stats import ClusterStats

__all__ = ["CommunicationSummary", "summarize"]


@dataclass(frozen=True)
class CommunicationSummary:
    """One row of Table 4."""

    program: str
    runtime_us: float
    avg_messages_per_proc: float
    max_messages_per_proc: int
    #: Average messages per processor per millisecond.
    messages_per_proc_per_ms: float
    #: Average interval between one processor's message sends (µs).
    message_interval_us: float
    #: Average interval between barriers (ms); ``inf`` if no barriers.
    barrier_interval_ms: float
    #: Percentage of messages using the bulk transfer mechanism.
    percent_bulk: float
    #: Percentage of messages that are read requests or replies.
    percent_reads: float
    #: Average per-processor bandwidth of bulk messages (KB/s).
    bulk_kb_per_s: float
    #: Average per-processor bandwidth of small messages (KB/s).
    small_kb_per_s: float

    def as_row(self) -> dict:
        """Flat dict for tabular reporting."""
        return {
            "Program": self.program,
            "Avg Msg/Proc": round(self.avg_messages_per_proc),
            "Max Msg/Proc": self.max_messages_per_proc,
            "Msg/Proc/ms": round(self.messages_per_proc_per_ms, 2),
            "Msg Interval (us)": round(self.message_interval_us, 1),
            "Barrier Interval (ms)": (
                round(self.barrier_interval_ms)
                if self.barrier_interval_ms != float("inf") else "-"),
            "Percent Bulk": f"{self.percent_bulk:.2f}%",
            "Percent Reads": f"{self.percent_reads:.2f}%",
            "Bulk KB/s": round(self.bulk_kb_per_s, 1),
            "Small KB/s": round(self.small_kb_per_s, 1),
        }


def summarize(program: str, stats: ClusterStats) -> CommunicationSummary:
    """Compute the Table 4 row for a completed run."""
    runtime_us = stats.runtime_us
    runtime_ms = runtime_us / 1000.0
    runtime_s = runtime_us / 1e6
    avg_msgs = stats.avg_messages_per_node
    total = stats.total_messages

    if runtime_ms > 0 and avg_msgs > 0:
        freq = avg_msgs / runtime_ms
        interval = runtime_us / avg_msgs
    else:
        freq = 0.0
        interval = float("inf")

    total_barriers = float(stats.barriers.mean())
    if total_barriers > 0:
        barrier_interval_ms = runtime_ms / total_barriers
    else:
        barrier_interval_ms = float("inf")

    if total > 0:
        percent_bulk = 100.0 * stats.bulk_messages_sent.sum() / total
        percent_reads = 100.0 * stats.read_messages_sent.sum() / total
    else:
        percent_bulk = percent_reads = 0.0

    if runtime_s > 0:
        bulk_kb = (stats.bulk_bytes_sent.mean() / 1024.0) / runtime_s
        small_kb = (stats.small_bytes_sent.mean() / 1024.0) / runtime_s
    else:
        bulk_kb = small_kb = 0.0

    return CommunicationSummary(
        program=program,
        runtime_us=runtime_us,
        avg_messages_per_proc=avg_msgs,
        max_messages_per_proc=stats.max_messages_per_node,
        messages_per_proc_per_ms=freq,
        message_interval_us=interval,
        barrier_interval_ms=barrier_interval_ms,
        percent_bulk=percent_bulk,
        percent_reads=percent_reads,
        bulk_kb_per_s=bulk_kb,
        small_kb_per_s=small_kb,
    )
