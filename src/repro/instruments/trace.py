"""Per-message event tracing.

A :class:`MessageTracer` hooks the points a packet passes on its way
through the machine and records a timeline per transfer id:

* ``sent``      -- the host finished paying send overhead (AM layer);
* ``injected``  -- the NIC transmit context put it on the wire;
* ``delivered`` -- the receive context made it visible to the host
  (after the delay queue, for bulk: the last fragment);
* ``handled``   -- the receiving host finished its receive overhead and
  ran the handler.

From these, per-message component latencies (send queueing, wire time,
receive queueing) can be derived — the decomposition the LogP model
reasons about.  Tracing is opt-in via ``Cluster.run(app, tracer=...)``
and adds no simulated time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["MessageTracer", "MessageTimeline"]

_STAGES = ("sent", "injected", "delivered", "handled")


@dataclass
class MessageTimeline:
    """The recorded life of one logical message."""

    xfer_id: int
    src: int = -1
    dst: int = -1
    kind: str = ""
    times: Dict[str, float] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when every stage was observed."""
        return all(stage in self.times for stage in _STAGES)

    def stage_latency(self, start: str, end: str) -> Optional[float]:
        """Time between two stages, or None if either is missing."""
        if start not in self.times or end not in self.times:
            return None
        return self.times[end] - self.times[start]

    @property
    def total_latency(self) -> Optional[float]:
        """Host-send to handler-done (None until handled)."""
        return self.stage_latency("sent", "handled")

    @property
    def wire_latency(self) -> Optional[float]:
        """Injection to host visibility (includes the delay queue)."""
        return self.stage_latency("injected", "delivered")

    @property
    def tx_queueing(self) -> Optional[float]:
        """Time spent waiting in/behind the transmit context."""
        return self.stage_latency("sent", "injected")

    @property
    def rx_queueing(self) -> Optional[float]:
        """Delivered-to-handled: how long the host left it unpolled."""
        return self.stage_latency("delivered", "handled")


class MessageTracer:
    """Collects :class:`MessageTimeline` records during a run."""

    def __init__(self) -> None:
        self._timelines: Dict[int, MessageTimeline] = {}

    # -- hook points -------------------------------------------------------
    def record(self, stage: str, xfer_id: int, now: float,
               src: int = -1, dst: int = -1, kind: str = "") -> None:
        """Note that ``xfer_id`` reached ``stage`` at time ``now``."""
        if stage not in _STAGES:
            raise ValueError(f"unknown trace stage {stage!r}")
        timeline = self._timelines.get(xfer_id)
        if timeline is None:
            timeline = MessageTimeline(xfer_id=xfer_id)
            self._timelines[xfer_id] = timeline
        # First observation of each stage wins (bulk transfers hit
        # 'injected' once per fragment; we keep the first).
        timeline.times.setdefault(stage, now)
        if src >= 0:
            timeline.src = src
        if dst >= 0:
            timeline.dst = dst
        if kind:
            timeline.kind = kind

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._timelines)

    def timelines(self, complete_only: bool = False
                  ) -> List[MessageTimeline]:
        """All recorded timelines (optionally only fully observed)."""
        items = list(self._timelines.values())
        if complete_only:
            items = [t for t in items if t.complete]
        return items

    def timeline(self, xfer_id: int) -> MessageTimeline:
        """The timeline of one transfer id (KeyError if unseen)."""
        return self._timelines[xfer_id]

    def latency_stats(self) -> Dict[str, float]:
        """Mean/percentile summary of end-to-end message latency (µs)."""
        totals = [t.total_latency for t in self.timelines(True)]
        if not totals:
            return {"count": 0}
        arr = np.asarray(totals)
        return {
            "count": len(arr),
            "mean_us": float(arr.mean()),
            "p50_us": float(np.percentile(arr, 50)),
            "p95_us": float(np.percentile(arr, 95)),
            "max_us": float(arr.max()),
        }

    def component_breakdown(self) -> Dict[str, float]:
        """Mean time per pipeline stage across complete messages."""
        sums = defaultdict(float)
        count = 0
        for timeline in self.timelines(True):
            sums["tx_queueing"] += timeline.tx_queueing
            sums["wire"] += timeline.wire_latency
            sums["rx_queueing"] += timeline.rx_queueing
            count += 1
        if count == 0:
            return {}
        return {stage: total / count for stage, total in sums.items()}

    def render(self, limit: int = 20) -> str:
        """A small human-readable dump of the slowest messages."""
        complete = sorted(self.timelines(True),
                          key=lambda t: -(t.total_latency or 0.0))
        lines = [f"{'xfer':>6} {'src':>4} {'dst':>4} {'kind':>9} "
                 f"{'total':>8} {'tx_q':>8} {'wire':>8} {'rx_q':>8}"]
        for timeline in complete[:limit]:
            lines.append(
                f"{timeline.xfer_id:6d} {timeline.src:4d} "
                f"{timeline.dst:4d} {timeline.kind:>9} "
                f"{timeline.total_latency:8.2f} "
                f"{timeline.tx_queueing:8.2f} "
                f"{timeline.wire_latency:8.2f} "
                f"{timeline.rx_queueing:8.2f}")
        return "\n".join(lines)
