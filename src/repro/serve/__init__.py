"""repro.serve — the open-system serving workload family.

The paper's sensitivity question (how do o, g, L, and G shift delivered
performance?) asked of a serving system instead of a batch suite: a
seeded client tier injects open arrivals from millions of simulated
users (:mod:`repro.serve.clients`) into sharded key-value and
scatter-gather services running over the AM layer
(:mod:`repro.serve.apps`), while streaming SLO instruments record
p50/p99/p999 latency, queue depths, utilization, and saturation
(:mod:`repro.serve.metrics`).  :mod:`repro.serve.sweep` sweeps the
machine dials, the drop rate, or the offered load itself.

Everything is bit-identical rerun-to-rerun (seeded arrivals, seeded
load balancing, deterministic sketch), so the RunCache / ResultStore /
campaign machinery applies to serving runs by construction.
"""

from repro.serve.apps import (LOAD_BALANCE_POLICIES, REPLICATION_POLICIES,
                              SERVING_APPS, FanoutServe, KVServe,
                              ServingApp, serving_app_from_dict)
from repro.serve.clients import ARRIVAL_PROCESSES, ClientTier, Request
from repro.serve.metrics import LatencySketch, ServingMetrics
from repro.serve.sweep import (OFFERED_LOAD_GRID, SERVING_DIALS,
                               serving_rows, serving_sweep)

__all__ = [
    "ARRIVAL_PROCESSES", "ClientTier", "Request",
    "LatencySketch", "ServingMetrics",
    "ServingApp", "KVServe", "FanoutServe", "SERVING_APPS",
    "serving_app_from_dict", "LOAD_BALANCE_POLICIES",
    "REPLICATION_POLICIES",
    "SERVING_DIALS", "OFFERED_LOAD_GRID", "serving_sweep", "serving_rows",
]
