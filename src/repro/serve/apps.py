"""Sharded request-serving applications over the AM layer.

Two service apps turn the cluster into an open system:

* :class:`KVServe` -- a sharded key-value store.  Keys hash to a
  primary shard per rank; with ``replication="primary-backup"`` every
  write is client-replicated to the primary *and* its backup (GAM
  handlers may only reply, so replication fan-out happens at the
  issuing frontend, Dynamo-style), and with ``read_anywhere`` reads
  pick either replica under the load-balance policy.
* :class:`FanoutServe` -- a scatter-gather RPC service: each request
  fans out to ``fanout`` distinct shards and completes when the last
  reply lands, the classic tail-latency amplifier.

Both run as ordinary :class:`~repro.apps.base.Application`\\ s, so they
inherit the whole substrate unchanged: the NIC pipeline and o/g/L/G
dials, per-destination flow-control credits (the backpressure under
overload), fault injection + ARQ, simsan, and the tuned collectives.

Execution model (see ARCHITECTURE.md section 17): the client tier is
one extra simulator process *outside the rank set* — it walks the
seeded arrival trace, charges no host time, and appends each request
to a frontend rank's queue chosen by the **load-balance policy**
(random / round-robin / least-loaded over live frontend depths).
Every rank runs the same SPMD loop: dispatch pending client requests
split-phase (so one frontend keeps many requests in flight) and
service incoming shard requests.  Requests complete on the frontend
when the last sub-reply arrives; latency is measured from *arrival*,
so client-side queueing counts, as it must in an open system.

Saturation is a structured outcome, not a livelock: when the global
backlog (injected − completed − dropped) exceeds ``max_backlog`` the
client tier stops injecting, frontends drop their queued remainder,
and the run completes normally with ``metrics.verdict == "saturated"``.

Determinism: the trace, the load-balancer's RNG, and every tie-break
derive from the run seed, so serving runs are bit-identical
rerun-to-rerun and cache/campaign machinery applies by construction.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.apps.base import Application
from repro.serve.clients import ARRIVAL_PROCESSES, ClientTier, Request
from repro.serve.metrics import ServingMetrics

__all__ = ["ServingApp", "KVServe", "FanoutServe", "SERVING_APPS",
           "serving_app_from_dict", "LOAD_BALANCE_POLICIES",
           "REPLICATION_POLICIES"]

#: How the client tier picks a frontend (and reads pick a replica).
LOAD_BALANCE_POLICIES = ("random", "round-robin", "least-loaded")

#: KV replication modes.
REPLICATION_POLICIES = ("none", "primary-backup")


# ---------------------------------------------------------------------------
# Service handlers (module level, GAM rules: reply only, never request).
# ---------------------------------------------------------------------------

def _kv_apply(store: Dict[int, int], key: int, write: bool) -> int:
    """The key-value shard operation itself (shared local/remote)."""
    if write:
        store[key] = store.get(key, 0) + 1
    return store.get(key, 0)


def _fanout_apply(hits: List[int], key: int) -> int:
    """The scatter-gather shard sub-query (shared local/remote)."""
    hits[key % len(hits)] += 1
    return hits[key % len(hits)]


def _serve_kv(am, packet) -> Generator:
    """One key-value operation at its shard (primary or backup)."""
    app = am.host.state["serve_app"]
    key, write = packet.payload
    value = _kv_apply(am.host.state["serve_store"], key, write)
    app.metrics.on_served(am.node_id, app.service_us)
    app.metrics.on_queue_sample(am.node_id, am.rx_pending)
    if app.service_us > 0:
        yield am.sim.timeout(app.service_us)
    yield from am.reply(value)


def _serve_fanout(am, packet) -> Generator:
    """One scatter-gather sub-query at a shard."""
    app = am.host.state["serve_app"]
    value = _fanout_apply(am.host.state["serve_hits"], packet.payload)
    app.metrics.on_served(am.node_id, app.service_us)
    app.metrics.on_queue_sample(am.node_id, am.rx_pending)
    if app.service_us > 0:
        yield am.sim.timeout(app.service_us)
    yield from am.reply(value)


# ---------------------------------------------------------------------------
# The scenario family.
# ---------------------------------------------------------------------------

class ServingApp(Application):
    """Shared machinery of the open-system serving scenarios.

    Subclasses provide the per-request dispatch (:meth:`_issue`), their
    handlers, and per-rank shard state; this base owns the client
    tier, the load balancer, the frontend loop, the saturation guard,
    the queue sampler, and the :class:`ServingMetrics` instruments.

    Constructor arguments are all stored as same-named attributes —
    the convention :func:`~repro.harness.runcache.app_fingerprint`
    turns into cache identity, so every knob here is automatically
    part of the run key.
    """

    #: Open-system marker: analysis tiers that model only the closed
    #: SPMD dependency graph (simcost) refuse these runs.
    open_system = True

    def __init__(self, offered_rps: float = 200_000.0,
                 n_users: int = 100_000,
                 duration_us: float = 20_000.0,
                 max_requests: int = 2000,
                 arrivals: str = "poisson",
                 burst_ratio: float = 4.0,
                 mean_burst_us: float = 500.0,
                 mean_calm_us: float = 2000.0,
                 user_skew: float = 2.0,
                 write_ratio: float = 0.1,
                 key_space: int = 4096,
                 service_us: float = 4.0,
                 load_balance: str = "round-robin",
                 slo_us: float = 250.0,
                 max_backlog: int = 2048,
                 sample_every_us: float = 100.0) -> None:
        if load_balance not in LOAD_BALANCE_POLICIES:
            raise ValueError(
                f"load_balance must be one of {LOAD_BALANCE_POLICIES}, "
                f"got {load_balance!r}")
        if arrivals not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"arrivals must be one of {ARRIVAL_PROCESSES}, "
                f"got {arrivals!r}")
        if service_us < 0:
            raise ValueError(f"service_us must be >= 0, got {service_us}")
        if slo_us <= 0:
            raise ValueError(f"slo_us must be > 0, got {slo_us}")
        if max_backlog < 1:
            raise ValueError(
                f"max_backlog must be >= 1, got {max_backlog}")
        if sample_every_us < 0:
            raise ValueError(
                f"sample_every_us must be >= 0, got {sample_every_us}")
        self.offered_rps = offered_rps
        self.n_users = n_users
        self.duration_us = duration_us
        self.max_requests = max_requests
        self.arrivals = arrivals
        self.burst_ratio = burst_ratio
        self.mean_burst_us = mean_burst_us
        self.mean_calm_us = mean_calm_us
        self.user_skew = user_skew
        self.write_ratio = write_ratio
        self.key_space = key_space
        self.service_us = service_us
        self.load_balance = load_balance
        self.slo_us = slo_us
        self.max_backlog = max_backlog
        self.sample_every_us = sample_every_us

    # -- configuration helpers ---------------------------------------------
    def with_changes(self, **overrides: Any) -> "ServingApp":
        """A copy of this scenario with some knobs replaced.

        Works generically because constructor kwargs are stored as
        same-named attributes (the fingerprint convention); the sweep
        machinery uses it for the offered-load axis.
        """
        from repro.harness.runcache import constructor_params
        kwargs: Dict[str, Any] = {}
        for name in constructor_params(type(self)):
            if hasattr(self, name):
                kwargs[name] = getattr(self, name)
        unknown = set(overrides) - set(kwargs)
        if unknown:
            raise ValueError(
                f"{type(self).__name__} has no knob(s) {sorted(unknown)}")
        kwargs.update(overrides)
        return type(self)(**kwargs)

    def tier(self) -> ClientTier:
        """The client-tier description for this scenario."""
        return ClientTier(
            n_users=self.n_users, offered_rps=self.offered_rps,
            duration_us=self.duration_us, max_requests=self.max_requests,
            arrivals=self.arrivals, burst_ratio=self.burst_ratio,
            mean_burst_us=self.mean_burst_us,
            mean_calm_us=self.mean_calm_us, user_skew=self.user_skew,
            write_ratio=self.write_ratio, key_space=self.key_space)

    @property
    def metrics(self) -> ServingMetrics:
        """This run's SLO instruments (valid after ``configure``)."""
        return self._metrics

    # -- Application lifecycle ---------------------------------------------
    def configure(self, n_nodes: int, seed: int) -> None:
        self._n_nodes = n_nodes
        self._trace: List[Request] = self.tier().trace(seed)
        self._metrics = ServingMetrics(n_nodes, slo_us=self.slo_us)
        self._pending: List[deque] = [deque() for _ in range(n_nodes)]
        self._ams: List[Any] = [None] * n_nodes
        #: Frontend load = assigned − (completed + dropped), per rank.
        self._assigned = [0] * n_nodes
        self._finished_by = [0] * n_nodes
        #: Requests in flight toward each serving node (the
        #: least-loaded replica signal, and a live queue proxy).
        self._server_inflight = [0] * n_nodes
        self._injected = 0
        self._completed = 0
        self._dropped = 0
        self._feed_done = False
        self._aborted = False
        self._lb_rng = random.Random(seed * 1_000_003 + 0x5E21E)
        self._rr = 0
        self._replica_rr = [0] * n_nodes

    def setup_rank(self, proc) -> Generator:
        self._ams[proc.rank] = proc.am
        proc.state["serve_app"] = self
        self._setup_shard(proc)
        if proc.rank == 0:
            # Piggyback the SLO instruments on ClusterStats so the
            # cache/store serialization path carries them unchanged.
            proc.stats.serving = self._metrics
        return
        yield  # pragma: no cover - makes this a generator

    def run_rank(self, proc) -> Generator:
        am = proc.am
        pending = self._pending[proc.rank]
        if proc.rank == 0:
            proc.sim.process(self._client_tier(proc.sim),
                             name="serve-clients")
            if self.sample_every_us > 0:
                proc.sim.process(self._queue_sampler(proc.sim),
                                 name="serve-sampler")
        while True:
            yield from am.wait_until(
                lambda: bool(pending) or self._finished())
            if pending:
                request, arrived = pending.popleft()
                if self._aborted:
                    self._account_drop(proc.rank)
                    continue
                yield from self._issue(proc, request, arrived)
                continue
            if self._finished():
                return

    def finalize(self, procs) -> ServingMetrics:
        self._metrics.finish(procs[0].stats.runtime_us)
        return self._metrics

    # -- the client tier (outside the rank set) ----------------------------
    def _client_tier(self, sim) -> Generator:
        """Inject the arrival trace into frontend queues.

        Runs as its own simulator process: arrivals cost the *cluster*
        nothing until a frontend dispatches them (the client tier is
        outside the rank set), but arrival time stamps start the
        latency clock immediately, so frontend queueing is part of
        every request's measured latency.
        """
        t0 = sim.now
        n = len(self._ams)
        for request in self._trace:
            due = t0 + request.t_us
            if due > sim.now:
                yield sim.timeout(due - sim.now)
            backlog = self._injected - self._completed - self._dropped
            self._metrics.note_backlog(backlog)
            if backlog > self.max_backlog:
                # Queue growth detected: the cluster is not keeping up
                # with the offered load.  Stop injecting and let the
                # run drain to a structured "saturated" verdict.
                self._aborted = True
                self._metrics.note_saturation(sim.now - t0, backlog)
                break
            rank = self._pick_frontend(n)
            self._injected += 1
            self._assigned[rank] += 1
            self._metrics.on_arrival(rank)
            self._pending[rank].append((request, sim.now))
            self._ams[rank].kick()
        self._feed_done = True
        self._kick_all()

    def _pick_frontend(self, n: int) -> int:
        if self.load_balance == "round-robin":
            rank = self._rr % n
            self._rr += 1
            return rank
        if self.load_balance == "random":
            return self._lb_rng.randrange(n)
        # least-loaded: live frontend depth, lowest rank wins ties.
        loads = [self._assigned[rank] - self._finished_by[rank]
                 for rank in range(n)]
        chosen = min(range(n), key=lambda rank: (loads[rank], rank))
        return chosen

    def _queue_sampler(self, sim) -> Generator:
        """Sample per-node queue depths on a fixed simulated cadence."""
        while not self._finished():
            yield sim.timeout(self.sample_every_us)
            for rank, am in enumerate(self._ams):
                depth = len(self._pending[rank]) + am.rx_pending
                self._metrics.on_queue_sample(rank, depth)

    # -- frontend bookkeeping ----------------------------------------------
    def _finished(self) -> bool:
        return (self._feed_done
                and self._completed + self._dropped >= self._injected)

    def _kick_all(self) -> None:
        for am in self._ams:
            if am is not None:
                am.kick()

    def _account_drop(self, rank: int) -> None:
        self._dropped += 1
        self._finished_by[rank] += 1
        self._metrics.on_drop(rank)
        if self._finished():
            self._kick_all()

    def _complete_request(self, rank: int, arrived: float, write: bool,
                          sim) -> None:
        self._completed += 1
        self._finished_by[rank] += 1
        self._metrics.on_complete(rank, sim.now - arrived, write=write)
        if self._finished():
            self._kick_all()

    def _send(self, proc, target: int, handler: str, payload: Any,
              on_done: Callable[[], None],
              local_op: Callable[[Any], Any]) -> Generator:
        """One sub-request with in-flight accounting.

        Remote targets go split-phase over the AM layer; a target that
        is the issuing frontend itself is served locally — the shard
        operation runs in place and only the service time is charged
        (packets to self never enter the network, matching the GAS
        layer's local-operation rule).
        """
        self._server_inflight[target] += 1
        if target == proc.rank:
            local_op(proc)
            self._metrics.on_served(proc.rank, self.service_us)
            if self.service_us > 0:
                yield proc.sim.timeout(self.service_us)
            self._server_inflight[target] -= 1
            on_done()
            return

        def _reply(_payload: Any) -> None:
            self._server_inflight[target] -= 1
            on_done()

        yield from proc.am.send_request(target, handler, payload=payload,
                                        on_reply=_reply)

    # -- subclass contract --------------------------------------------------
    def _setup_shard(self, proc) -> None:
        """Install per-rank shard state in ``proc.state``."""
        raise NotImplementedError

    def _issue(self, proc, request: Request, arrived: float) -> Generator:
        """Dispatch one client request split-phase; must eventually
        call :meth:`_complete_request` exactly once."""
        raise NotImplementedError


class KVServe(ServingApp):
    """Sharded key-value store with replication and LB policy knobs."""

    name = "kvserve"

    def __init__(self, replication: str = "none",
                 read_anywhere: bool = True, **kwargs: Any) -> None:
        if replication not in REPLICATION_POLICIES:
            raise ValueError(
                f"replication must be one of {REPLICATION_POLICIES}, "
                f"got {replication!r}")
        self.replication = replication
        self.read_anywhere = read_anywhere
        super().__init__(**kwargs)

    @staticmethod
    def _backup_of(primary: int, n: int) -> Optional[int]:
        if n < 2:
            return None
        return (primary + 1) % n

    def _setup_shard(self, proc) -> None:
        proc.state["serve_store"] = {}

    def _pick_replica(self, rank: int, primary: int, backup: int) -> int:
        if self.load_balance == "round-robin":
            self._replica_rr[rank] += 1
            return primary if self._replica_rr[rank] % 2 else backup
        if self.load_balance == "random":
            return primary if self._lb_rng.random() < 0.5 else backup
        # least-loaded: fewest requests in flight; primary wins ties.
        if self._server_inflight[backup] < self._server_inflight[primary]:
            return backup
        return primary

    def _issue(self, proc, request: Request, arrived: float) -> Generator:
        rank = proc.rank
        primary = request.key % proc.n_ranks
        backup = self._backup_of(primary, proc.n_ranks)
        replicated = self.replication == "primary-backup" \
            and backup is not None
        if request.write and replicated:
            targets = [primary, backup]
        elif (not request.write) and replicated and self.read_anywhere:
            targets = [self._pick_replica(rank, primary, backup)]
        else:
            targets = [primary]
        left = {"n": len(targets)}

        def done() -> None:
            left["n"] -= 1
            if left["n"] == 0:
                self._complete_request(rank, arrived, request.write,
                                       proc.sim)

        def local_op(p) -> Any:
            return _kv_apply(p.state["serve_store"], request.key,
                             request.write)

        for target in targets:
            yield from self._send(proc, target, "serve_kv",
                                  (request.key, request.write), done,
                                  local_op)

    def register_handlers(self, table) -> None:
        table.register("serve_kv", _serve_kv)


class FanoutServe(ServingApp):
    """Scatter-gather RPC service: every request queries ``fanout``
    shards and completes on the last reply (tail amplification)."""

    name = "fanout"

    def __init__(self, fanout: int = 4, **kwargs: Any) -> None:
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        self.fanout = fanout
        super().__init__(**kwargs)

    def _setup_shard(self, proc) -> None:
        proc.state["serve_hits"] = [0] * max(1, self.key_space)

    def _issue(self, proc, request: Request, arrived: float) -> Generator:
        rank = proc.rank
        k = min(self.fanout, proc.n_ranks)
        base = request.key % proc.n_ranks
        targets = [(base + i) % proc.n_ranks for i in range(k)]
        left = {"n": k}

        def done() -> None:
            left["n"] -= 1
            if left["n"] == 0:
                self._complete_request(rank, arrived, request.write,
                                       proc.sim)

        def local_op(p) -> Any:
            return _fanout_apply(p.state["serve_hits"], request.key)

        for target in targets:
            yield from self._send(proc, target, "serve_fanout",
                                  request.key, done, local_op)

    def register_handlers(self, table) -> None:
        table.register("serve_fanout", _serve_fanout)


#: Workload-spec registry (``CampaignSpec.workload["app"]`` values).
SERVING_APPS = {
    KVServe.name: KVServe,
    FanoutServe.name: FanoutServe,
}


def serving_app_from_dict(data: Dict[str, Any]) -> ServingApp:
    """Build a serving scenario from a JSON workload dict.

    ``data["app"]`` names the scenario (one of :data:`SERVING_APPS`);
    every other key is a constructor knob.  This is the factory behind
    ``CampaignSpec.workload``.
    """
    spec = dict(data)
    kind = spec.pop("app", None)
    if kind not in SERVING_APPS:
        raise ValueError(
            f"workload 'app' must be one of {sorted(SERVING_APPS)}, "
            f"got {kind!r}")
    return SERVING_APPS[kind](**spec)
