"""The simulated client tier: open arrivals from outside the rank set.

Production traffic is an *open system*: requests arrive whether or not
the cluster is keeping up, so a microsecond of overhead becomes
queueing delay and a tail-latency violation rather than a slowdown
factor.  This module generates that traffic deterministically.

The scalability trick is **aggregation**: a population of ``n_users``
independent thin clients, each issuing at rate λ, superposes to a
single Poisson process at rate ``n_users * λ`` — so one seeded stream
stands in for millions of simulated users at a cost proportional to
the *request count*, not the user count.  Each request still carries a
concrete user id drawn from a skewed popularity distribution, so
sharding and hot-key behaviour see the full population.  The bursty
process is a two-state MMPP (Markov-modulated Poisson): dwell times in
a calm and a burst state are exponential, and within each state
arrivals are Poisson at that state's rate, with the state rates chosen
so the *time-averaged* rate still equals the configured offered load.

Determinism contract: ``ClientTier.trace(seed)`` is a pure function of
(tier parameters, seed) — same seed ⇒ bit-identical trace, different
seed ⇒ different trace — which is what lets serving runs share the
RunCache/ResultStore machinery by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, NamedTuple

__all__ = ["Request", "ClientTier", "ARRIVAL_PROCESSES"]

#: Supported arrival processes.
ARRIVAL_PROCESSES = ("poisson", "bursty")

#: Knuth's multiplicative hash constant; spreads consecutive user ids
#: across the key space while keeping key popularity tied to user
#: popularity (hot users ⇒ hot keys).
_KEY_HASH = 2654435761


class Request(NamedTuple):
    """One client request: arrival offset and what it asks for."""

    #: Arrival time, simulated µs relative to the start of the trace.
    t_us: float
    #: Issuing user id in ``[0, n_users)``.
    user: int
    #: Target key in ``[0, key_space)``.
    key: int
    #: Write (True) or read (False).
    write: bool


@dataclass(frozen=True)
class ClientTier:
    """A seeded population of simulated users and its arrival process.

    ``offered_rps`` is the aggregate offered load (requests per second
    of *simulated* time) across the whole population; ``n_users`` only
    shapes the identity distribution, never the generation cost.  The
    trace ends at ``duration_us`` or after ``max_requests`` arrivals,
    whichever comes first — a finite trace is what guarantees serving
    runs terminate even when the cluster cannot keep up.
    """

    n_users: int
    offered_rps: float
    duration_us: float
    max_requests: int
    arrivals: str = "poisson"
    #: Bursty (MMPP) shape: burst-state rate multiplier and the mean
    #: exponential dwell times of the two states.
    burst_ratio: float = 4.0
    mean_burst_us: float = 500.0
    mean_calm_us: float = 2000.0
    #: Popularity skew: user ``u`` is drawn as
    #: ``int(n_users * uniform() ** user_skew)`` — 1.0 is uniform,
    #: larger values concentrate traffic on low user ids.
    user_skew: float = 2.0
    write_ratio: float = 0.1
    key_space: int = 4096

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {self.n_users}")
        if self.offered_rps <= 0:
            raise ValueError(
                f"offered_rps must be > 0, got {self.offered_rps}")
        if self.duration_us <= 0:
            raise ValueError(
                f"duration_us must be > 0, got {self.duration_us}")
        if self.max_requests < 1:
            raise ValueError(
                f"max_requests must be >= 1, got {self.max_requests}")
        if self.arrivals not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"arrivals must be one of {ARRIVAL_PROCESSES}, "
                f"got {self.arrivals!r}")
        if self.burst_ratio < 1.0:
            raise ValueError(
                f"burst_ratio must be >= 1, got {self.burst_ratio}")
        if self.mean_burst_us <= 0 or self.mean_calm_us <= 0:
            raise ValueError("MMPP dwell times must be > 0")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError(
                f"write_ratio must be in [0, 1], got {self.write_ratio}")
        if self.key_space < 1:
            raise ValueError(
                f"key_space must be >= 1, got {self.key_space}")
        if self.user_skew < 1.0:
            raise ValueError(
                f"user_skew must be >= 1, got {self.user_skew}")

    # -- generation ---------------------------------------------------------
    def _sample_request(self, rng: random.Random, t_us: float) -> Request:
        user = min(self.n_users - 1,
                   int(self.n_users * rng.random() ** self.user_skew))
        key = (user * _KEY_HASH + 97) % self.key_space
        write = rng.random() < self.write_ratio
        return Request(t_us=t_us, user=user, key=key, write=write)

    def trace(self, seed: int) -> List[Request]:
        """The full arrival trace for one run, sorted by arrival time."""
        rng = random.Random(seed * 1_000_003 + 0xC11E47)
        if self.arrivals == "poisson":
            return self._poisson_trace(rng)
        return self._bursty_trace(rng)

    def _poisson_trace(self, rng: random.Random) -> List[Request]:
        rate_per_us = self.offered_rps / 1e6
        out: List[Request] = []
        t_us = 0.0
        while len(out) < self.max_requests:
            t_us += rng.expovariate(rate_per_us)
            if t_us > self.duration_us:
                break
            out.append(self._sample_request(rng, t_us))
        return out

    def _bursty_trace(self, rng: random.Random) -> List[Request]:
        """Two-state MMPP with the configured time-averaged rate.

        The calm-state rate is solved so that, weighted by the mean
        dwell fractions, the long-run rate equals ``offered_rps``; the
        burst state runs ``burst_ratio`` times hotter.  Within a state
        arrivals are Poisson, so redrawing the interarrival at a state
        boundary is exact (memorylessness), not an approximation.
        """
        burst_fraction = self.mean_burst_us / (self.mean_burst_us
                                               + self.mean_calm_us)
        calm_rate = (self.offered_rps / 1e6) / (
            (1.0 - burst_fraction) + self.burst_ratio * burst_fraction)
        rates = {"calm": calm_rate, "burst": calm_rate * self.burst_ratio}
        dwells = {"calm": self.mean_calm_us, "burst": self.mean_burst_us}
        flip = {"calm": "burst", "burst": "calm"}

        out: List[Request] = []
        state = "calm"
        t_us = 0.0
        state_end = rng.expovariate(1.0 / dwells[state])
        while len(out) < self.max_requests:
            arrival = t_us + rng.expovariate(rates[state])
            if arrival > state_end:
                # The state flipped before this draw would have landed;
                # restart from the boundary in the new state.
                t_us = state_end
                state = flip[state]
                state_end = t_us + rng.expovariate(1.0 / dwells[state])
                if t_us > self.duration_us:
                    break
                continue
            t_us = arrival
            if t_us > self.duration_us:
                break
            out.append(self._sample_request(rng, t_us))
        return out

    def describe(self) -> str:
        """One-line summary for reports."""
        return (f"{self.arrivals} arrivals, {self.n_users} users, "
                f"{self.offered_rps:g} req/s offered, "
                f"{self.duration_us:g}us window")
