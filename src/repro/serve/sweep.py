"""Serving sweeps: dial a machine knob — or the offered load itself.

:func:`serving_sweep` is the open-system analogue of the Figure 5-8
sweeps.  It accepts the four machine dials plus ``drop_rate`` with the
exact semantics of :func:`~repro.harness.sweeps.knob_factory` /
:func:`~repro.harness.sweeps.fault_sweep`, and adds one axis closed
apps don't have: ``offered_rps``, swept by rebuilding the application
with a different client-tier rate per point (the machine stays at the
baseline).  All axes run through
:func:`~repro.harness.parallel.run_sweep_points`, so the cache, the
process pool, and per-point crash resilience apply unchanged; the
offered-load axis caches correctly because the offered rate is a
constructor knob and therefore part of the app fingerprint.

:func:`serving_rows` renders a sweep into the SLO table the figure-11
artifact serializes: p50/p99/p999, goodput, throughput, drops, and the
saturation verdict per point.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.am.tuning import TuningKnobs
from repro.harness.sweeps import MACHINE_DIALS, SweepResult, knob_factory
from repro.network.faults import FaultPlan
from repro.network.loggp import LogGPParams
from repro.serve.apps import ServingApp

__all__ = ["SERVING_DIALS", "OFFERED_LOAD_GRID", "serving_sweep",
           "serving_rows"]

#: Every axis :func:`serving_sweep` can dial: the paper's four machine
#: dials, the fault injector's drop rate, and the offered load.
SERVING_DIALS = MACHINE_DIALS + ("drop_rate", "offered_rps")

#: Default offered-load grid (requests/s of simulated time), spanning
#: comfortably-underloaded to past-saturation for the default scenario.
OFFERED_LOAD_GRID = (50_000.0, 100_000.0, 200_000.0, 400_000.0,
                     800_000.0, 1_600_000.0)


def serving_sweep(app: ServingApp, n_nodes: int, parameter: str,
                  values: Sequence[float],
                  params: Optional[LogGPParams] = None,
                  seed: int = 0,
                  run_limit_us: Optional[float] = None,
                  livelock_limit: int = 200_000,
                  window: int = 8,
                  jobs: Optional[int] = None,
                  cache: Optional[Any] = None,
                  knobs: Optional[TuningKnobs] = None,
                  base_plan: Optional[FaultPlan] = None,
                  coll: Optional[Any] = None,
                  engine: Optional[str] = None) -> SweepResult:
    """Sweep one axis of an open-system serving scenario.

    ``parameter`` is one of :data:`SERVING_DIALS`.  Machine dials use
    the shared :func:`knob_factory` semantics (absolute targets);
    ``drop_rate`` sweeps the fault injector against ``base_plan``; and
    ``offered_rps`` rebuilds ``app`` per point via
    :meth:`~repro.serve.apps.ServingApp.with_changes` while ``knobs``
    (default: none) pins the machine.  Results carry the
    :class:`~repro.serve.metrics.ServingMetrics` under each point's
    ``result.stats.serving``.
    """
    from repro.harness.parallel import run_sweep_points
    if parameter not in SERVING_DIALS:
        raise ValueError(
            f"parameter must be one of {SERVING_DIALS}, got {parameter!r}")
    base_knobs = knobs if knobs is not None else TuningKnobs()
    knob_for = lambda _value: base_knobs  # noqa: E731
    fault_for = None
    app_for = None
    if parameter in MACHINE_DIALS:
        if knobs is not None:
            raise ValueError(
                "knobs cannot be pinned while sweeping a machine dial")
        knob_for = knob_factory(parameter, params)
    elif parameter == "drop_rate":
        plan = base_plan if base_plan is not None else FaultPlan()
        fault_for = lambda rate: plan.with_changes(drop_rate=rate)  # noqa: E731
    else:  # offered_rps
        app_for = lambda rps: app.with_changes(offered_rps=rps)  # noqa: E731
    return run_sweep_points(
        app, n_nodes, parameter, values, knob_for, params=params,
        seed=seed, run_limit_us=run_limit_us,
        livelock_limit=livelock_limit, window=window, jobs=jobs,
        cache=cache, fault_for=fault_for, coll=coll, engine=engine,
        app_for=app_for)


def serving_rows(sweep: SweepResult) -> list:
    """Flatten one serving sweep into SLO-table rows.

    One row per point: the dialed value, the latency percentiles, the
    goodput/throughput rates, drop counts, and the structured verdict.
    Failed points (deadlock/livelock/budget) keep their failure
    category with ``N/A`` metrics, exactly like the closed-app tables.
    """
    rows = []
    for point in sweep.points:
        row = {
            "app": sweep.app_name,
            "parameter": sweep.parameter,
            "value": point.value,
            "p50_us": "N/A", "p99_us": "N/A", "p999_us": "N/A",
            "goodput_rps": "N/A", "throughput_rps": "N/A",
            "slo_attainment": "N/A",
            "completed": "N/A", "dropped": "N/A",
            "max_queue_depth": "N/A",
            "verdict": point.failure_category or "",
        }
        serving = (getattr(point.result.stats, "serving", None)
                   if point.completed else None)
        if serving is not None:
            def _round(value: Optional[float]) -> Any:
                return "N/A" if value is None else round(value, 2)
            row.update({
                "p50_us": _round(serving.p50_us),
                "p99_us": _round(serving.p99_us),
                "p999_us": _round(serving.p999_us),
                "goodput_rps": _round(serving.goodput_rps),
                "throughput_rps": _round(serving.throughput_rps),
                "slo_attainment": _round(serving.slo_attainment),
                "completed": serving.completed,
                "dropped": serving.dropped,
                "max_queue_depth": serving.max_queue_depth,
                "verdict": serving.verdict,
            })
        rows.append(row)
    return rows
