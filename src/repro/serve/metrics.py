"""SLO instruments for open-system serving runs.

Closed BSP runs are summarized by one number (the measured runtime);
an open system is summarized by a *distribution*: how long individual
requests took, how deep the queues got, and how much of the offered
load was actually served within the SLO.  This module holds the two
instruments behind those answers:

* :class:`LatencySketch` -- a deterministic streaming quantile sketch
  (log-bucketed histogram, HdrHistogram-style).  Bucket boundaries are
  fixed up front, so recording order never affects the sketch and two
  bit-identical runs serialize to byte-identical sketches; relative
  error is bounded by the bucket width (``2**(1/sub_buckets)``, about
  1.1% at the default resolution).
* :class:`ServingMetrics` -- per-run serving counters: the latency
  sketch (p50/p99/p999), per-node served/assigned/service-time totals,
  sampled queue depths, client-tier backlog, the saturation verdict,
  and the goodput/throughput aggregates.

Everything serializes through ``to_dict``/``from_dict`` exactly like
:class:`~repro.instruments.stats.ClusterStats` (which carries a
``ServingMetrics`` under its optional ``serving`` attribute), so the
RunCache, the ResultStore, and the campaign machinery persist serving
runs unchanged.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

__all__ = ["LatencySketch", "ServingMetrics"]


class LatencySketch:
    """Deterministic log-bucketed streaming quantile sketch.

    Values at or below ``min_us`` land in bucket 0; above it, bucket
    ``i`` covers ``min_us * 2**((i-1)/sub) .. min_us * 2**(i/sub)``,
    so each bucket spans a fixed ``2**(1/sub)`` ratio and any quantile
    is answered within that relative error.  Counts are kept sparsely
    (bucket index -> count), so a run with a tight latency range
    serializes to a handful of entries.
    """

    def __init__(self, min_us: float = 0.5, sub_buckets: int = 64,
                 max_us: float = 1e9) -> None:
        if min_us <= 0 or max_us <= min_us:
            raise ValueError(
                f"need 0 < min_us < max_us, got {min_us}/{max_us}")
        if sub_buckets < 1:
            raise ValueError(f"sub_buckets must be >= 1, got {sub_buckets}")
        self.min_us = float(min_us)
        self.max_us = float(max_us)
        self.sub_buckets = int(sub_buckets)
        #: The clamp bucket: everything >= max_us piles up here.
        self._top = 1 + int(math.ceil(
            math.log2(self.max_us / self.min_us) * self.sub_buckets))
        self.counts: Dict[int, int] = {}
        self.total = 0
        self.sum_us = 0.0
        self.max_observed_us = 0.0

    def _index(self, value_us: float) -> int:
        if value_us <= self.min_us:
            return 0
        index = 1 + int(math.floor(
            math.log2(value_us / self.min_us) * self.sub_buckets))
        return min(index, self._top)

    def _representative(self, index: int) -> float:
        """The midpoint (geometric) value of one bucket."""
        if index <= 0:
            return self.min_us
        return self.min_us * 2.0 ** ((index - 0.5) / self.sub_buckets)

    def record(self, value_us: float) -> None:
        """Fold one latency observation into the sketch."""
        if value_us < 0:
            raise ValueError(f"negative latency: {value_us}")
        index = self._index(value_us)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.total += 1
        self.sum_us += value_us
        if value_us > self.max_observed_us:
            self.max_observed_us = value_us

    def quantile(self, q: float) -> Optional[float]:
        """The latency at quantile ``q`` (0 < q <= 1), or None if empty.

        Deterministic rule: the representative value of the first
        bucket whose cumulative count reaches ``ceil(q * total)``.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.total == 0:
            return None
        target = max(1, int(math.ceil(q * self.total)))
        cumulative = 0
        for index in sorted(self.counts):
            cumulative += self.counts[index]
            if cumulative >= target:
                return self._representative(index)
        return self._representative(self._top)  # pragma: no cover

    @property
    def mean_us(self) -> Optional[float]:
        if self.total == 0:
            return None
        return self.sum_us / self.total

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "min_us": self.min_us,
            "max_us": self.max_us,
            "sub_buckets": self.sub_buckets,
            "counts": {str(index): self.counts[index]
                       for index in sorted(self.counts)},
            "total": self.total,
            "sum_us": self.sum_us,
            "max_observed_us": self.max_observed_us,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencySketch":
        sketch = cls(min_us=data["min_us"], sub_buckets=data["sub_buckets"],
                     max_us=data["max_us"])
        sketch.counts = {int(index): count
                         for index, count in data["counts"].items()}
        sketch.total = data["total"]
        sketch.sum_us = data["sum_us"]
        sketch.max_observed_us = data["max_observed_us"]
        return sketch


class ServingMetrics:
    """Per-run serving counters and the SLO verdict.

    Updated by the client tier (arrivals, backlog, saturation), the
    frontends (completions, drops), the service handlers (served
    requests, service time, receive-queue depth), and the periodic
    queue sampler.  ``finish(runtime_us)`` freezes the aggregate rates
    once the measured region is known.
    """

    def __init__(self, n_nodes: int, slo_us: float = 250.0) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = n_nodes
        self.slo_us = float(slo_us)
        self.latency = LatencySketch()
        #: Client-tier arrivals handed to each frontend rank.
        self.assigned = [0] * n_nodes
        #: Requests completed, counted at the issuing frontend.
        self.completed_by = [0] * n_nodes
        #: Requests dropped (admission control after saturation).
        self.dropped_by = [0] * n_nodes
        #: Service handler invocations per serving node.
        self.served_by = [0] * n_nodes
        #: Simulated µs of service compute per node (the utilization
        #: numerator).
        self.service_us_by = [0.0] * n_nodes
        #: Sampled queue depths per node: sample count / sum / max.
        self.queue_count = [0] * n_nodes
        self.queue_sum = [0] * n_nodes
        self.queue_max = [0] * n_nodes
        self.arrivals = 0
        self.completed = 0
        self.dropped = 0
        self.reads_completed = 0
        self.writes_completed = 0
        self.within_slo = 0
        #: Peak client-tier backlog (injected − completed − dropped).
        self.max_backlog = 0
        self.saturated = False
        self.saturated_at_us: Optional[float] = None
        self.saturation_backlog = 0
        #: Measured-region length, set by :meth:`finish`.
        self.runtime_us: Optional[float] = None

    # -- hooks --------------------------------------------------------------
    def on_arrival(self, rank: int) -> None:
        self.arrivals += 1
        self.assigned[rank] += 1

    def note_backlog(self, backlog: int) -> None:
        if backlog > self.max_backlog:
            self.max_backlog = backlog

    def note_saturation(self, at_us: float, backlog: int) -> None:
        self.saturated = True
        self.saturated_at_us = at_us
        self.saturation_backlog = backlog

    def on_complete(self, rank: int, latency_us: float,
                    write: bool) -> None:
        self.completed += 1
        self.completed_by[rank] += 1
        if write:
            self.writes_completed += 1
        else:
            self.reads_completed += 1
        if latency_us <= self.slo_us:
            self.within_slo += 1
        self.latency.record(latency_us)

    def on_drop(self, rank: int) -> None:
        self.dropped += 1
        self.dropped_by[rank] += 1

    def on_served(self, node: int, service_us: float) -> None:
        self.served_by[node] += 1
        self.service_us_by[node] += service_us

    def on_queue_sample(self, node: int, depth: int) -> None:
        self.queue_count[node] += 1
        self.queue_sum[node] += depth
        if depth > self.queue_max[node]:
            self.queue_max[node] = depth

    def finish(self, runtime_us: float) -> None:
        """Freeze the rate aggregates once the timed region is known."""
        self.runtime_us = runtime_us

    # -- aggregates ---------------------------------------------------------
    @property
    def verdict(self) -> str:
        """``"saturated"`` when the client tier tripped the backlog
        guard, else ``"ok"`` — the structured alternative to livelock."""
        return "saturated" if self.saturated else "ok"

    @property
    def p50_us(self) -> Optional[float]:
        return self.latency.quantile(0.50)

    @property
    def p99_us(self) -> Optional[float]:
        return self.latency.quantile(0.99)

    @property
    def p999_us(self) -> Optional[float]:
        return self.latency.quantile(0.999)

    @property
    def throughput_rps(self) -> Optional[float]:
        """Completed requests per second of simulated time."""
        if self.runtime_us is None or self.runtime_us <= 0:
            return None
        return self.completed / (self.runtime_us / 1e6)

    @property
    def goodput_rps(self) -> Optional[float]:
        """Requests completed *within the SLO* per simulated second."""
        if self.runtime_us is None or self.runtime_us <= 0:
            return None
        return self.within_slo / (self.runtime_us / 1e6)

    @property
    def slo_attainment(self) -> Optional[float]:
        """Fraction of completed requests inside the SLO."""
        if self.completed == 0:
            return None
        return self.within_slo / self.completed

    @property
    def utilization(self) -> List[Optional[float]]:
        """Per-node service-time fraction of the measured region."""
        if self.runtime_us is None or self.runtime_us <= 0:
            return [None] * self.n_nodes
        return [us / self.runtime_us for us in self.service_us_by]

    @property
    def mean_queue_depth(self) -> List[Optional[float]]:
        """Per-node mean sampled queue depth."""
        return [self.queue_sum[node] / self.queue_count[node]
                if self.queue_count[node] else None
                for node in range(self.n_nodes)]

    @property
    def max_queue_depth(self) -> int:
        """Deepest sampled queue on any node."""
        return max(self.queue_max) if self.queue_max else 0

    # -- serialisation ------------------------------------------------------
    _INT_LIST_FIELDS = ("assigned", "completed_by", "dropped_by",
                        "served_by", "queue_count", "queue_sum",
                        "queue_max")
    _FLOAT_LIST_FIELDS = ("service_us_by",)
    _SCALAR_FIELDS = ("slo_us", "arrivals", "completed", "dropped",
                      "reads_completed", "writes_completed", "within_slo",
                      "max_backlog", "saturated", "saturated_at_us",
                      "saturation_backlog", "runtime_us")

    def to_dict(self) -> dict:
        data = {"n_nodes": self.n_nodes,
                "latency": self.latency.to_dict()}
        for name in self._INT_LIST_FIELDS + self._FLOAT_LIST_FIELDS:
            data[name] = list(getattr(self, name))
        for name in self._SCALAR_FIELDS:
            data[name] = getattr(self, name)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServingMetrics":
        metrics = cls(data["n_nodes"], slo_us=data["slo_us"])
        metrics.latency = LatencySketch.from_dict(data["latency"])
        for name in cls._INT_LIST_FIELDS:
            setattr(metrics, name, [int(v) for v in data[name]])
        for name in cls._FLOAT_LIST_FIELDS:
            setattr(metrics, name, [float(v) for v in data[name]])
        for name in cls._SCALAR_FIELDS:
            setattr(metrics, name, data[name])
        return metrics

    def describe(self) -> str:
        """One-line summary for CLI output and reports."""
        p99 = self.p99_us
        return (f"serving: {self.completed}/{self.arrivals} completed "
                f"({self.dropped} dropped), "
                f"p99={'N/A' if p99 is None else f'{p99:.1f}us'}, "
                f"verdict={self.verdict}")
