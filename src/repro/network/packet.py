"""Packets travelling through the simulated network.

Two sizes exist, mirroring Generic Active Messages:

* *short* packets -- a handful of words (requests, replies, acks);
* *bulk fragments* -- pieces of a bulk transfer, at most 4 KB each,
  moved by the NIC's DMA engine at rate ``1/G``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional, Tuple

__all__ = ["PacketKind", "Packet", "BULK_FRAGMENT_BYTES",
           "SHORT_PACKET_BYTES", "new_xfer_id"]

#: Maximum bulk fragment payload injected per DMA, as in the paper (4 KB).
BULK_FRAGMENT_BYTES = 4096

#: Nominal size of a short Active Message packet (header + 4 words).
SHORT_PACKET_BYTES = 32

_sequence = itertools.count()


def new_xfer_id() -> int:
    """A fresh transfer identifier, shared by all fragments of one bulk
    transfer and by a reply with its request."""
    return next(_sequence)


class PacketKind(Enum):
    """What a packet is, which determines how each end processes it."""

    #: Short AM request; delivered to the host, runs a handler, and is
    #: answered by a REPLY (explicit or implicit ack).
    REQUEST = "request"
    #: Short AM reply; delivered to the host (costs receive overhead) and
    #: returns the window credit taken by its request.
    REPLY = "reply"
    #: NIC-level flow-control credit for one-way messages; consumed by the
    #: receiving NIC, never reaches the host, bypasses the transmit gap.
    CREDIT = "credit"
    #: One fragment of a bulk transfer.
    BULK_FRAGMENT = "bulk_fragment"
    #: Reliability-protocol acknowledgement (only exists when a
    #: :class:`~repro.network.faults.FaultPlan` can drop packets);
    #: consumed by the sending NIC, never reaches the host, bypasses the
    #: transmit gap, and is itself never retransmitted.
    ACK = "ack"


@dataclass
class Packet:
    """A message (or message fragment) in flight.

    ``handler`` names an entry in the destination's Active Message handler
    table; ``payload`` is an arbitrary Python object standing in for the
    message body (its simulated size is ``size_bytes``).
    """

    kind: PacketKind
    src: int
    dst: int
    handler: Optional[str] = None
    payload: Any = None
    size_bytes: int = SHORT_PACKET_BYTES
    #: True if this packet is part of a read request/reply pair
    #: (instrumentation for Table 4's "percent reads" column).
    is_read: bool = False
    #: True if the *logical message* is a bulk transfer.
    is_bulk: bool = False
    #: Identifier linking a reply to its request, and fragments to their
    #: bulk transfer.
    xfer_id: int = field(default_factory=lambda: next(_sequence))
    #: (fragment_index, fragment_count) for BULK_FRAGMENT packets.
    fragment: Tuple[int, int] = (0, 1)
    #: True when the sender does not expect a host-level reply; the
    #: receiving NIC returns a CREDIT instead.
    one_way: bool = False
    #: True for bulk fragments that constitute a *reply* to a request
    #: (a GAM ``get``); the receiving NIC returns the window credit.
    is_reply: bool = False
    #: Size of the whole logical message (for bulk: the total transfer,
    #: recorded on the last fragment); ``None`` means ``size_bytes``.
    message_bytes: Optional[int] = None
    #: Simulated time the packet was injected into the wire (set by NIC).
    injected_at: float = 0.0
    #: Reliability-protocol sequence number, assigned by the sending NIC
    #: at first injection when the fault plan can drop packets; stable
    #: across retransmissions so the receiver can suppress duplicates.
    #: ``None`` on the reliable-fabric fast path.
    seq: Optional[int] = None
    #: Piggybacked vector-clock snapshot, attached by simsan at the
    #: host-level send when ``sanitize=True``; stable across
    #: retransmissions (the Packet object is reused).  ``None`` when the
    #: sanitizer is off.
    clock: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(
                f"packet to self ({self.src}); local operations must not "
                "enter the network")
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be > 0, got {self.size_bytes}")
        if self.kind is PacketKind.BULK_FRAGMENT:
            index, count = self.fragment
            if not 0 <= index < count:
                raise ValueError(f"bad fragment indices {self.fragment}")
            if self.size_bytes > BULK_FRAGMENT_BYTES:
                raise ValueError(
                    f"fragment of {self.size_bytes} bytes exceeds "
                    f"{BULK_FRAGMENT_BYTES}")

    @property
    def logical_bytes(self) -> int:
        """Bytes of the logical message this packet completes."""
        return self.message_bytes if self.message_bytes is not None \
            else self.size_bytes

    @property
    def is_last_fragment(self) -> bool:
        index, count = self.fragment
        return index == count - 1

    def __repr__(self) -> str:
        return (f"<Packet {self.kind.value} {self.src}->{self.dst} "
                f"handler={self.handler} bytes={self.size_bytes} "
                f"xfer={self.xfer_id}>")
