"""The network interface: a model of the Myrinet LANai card.

The LANai runs two independent hardware contexts, which the paper's
apparatus exploits:

* the **transmit context** pulls packets queued by the host, injects them
  onto the wire, then stalls for the gap (baseline ``g`` plus the
  ``delta_g`` dial; for bulk fragments, plus ``size * (G + delta_G)``)
  before injecting the next packet -- stalling *after* injection so
  latency is unaffected;
* the **receive context** accepts packets from the wire and deposits them
  toward the host.  The ``delta_L`` dial is implemented here as the
  paper's *delay queue*: an arriving packet is only marked valid
  ``delta_L`` microseconds after arrival, leaving ``o`` and ``g``
  untouched.  Because the contexts are independent, a stalled transmitter
  never blocks reception.

Flow-control CREDIT packets are generated and consumed entirely inside
the NIC (never reaching the host) and bypass the transmit gap, standing
in for firmware-level acknowledgements.

When the run's :class:`~repro.network.faults.FaultPlan` can drop
packets, the NIC additionally runs a firmware-level **reliability
protocol** (think of it as the LANai's go-back-nothing ARQ):

* every injected packet -- requests, replies, bulk fragments *and*
  CREDITs -- gets a per-NIC sequence number, stable across
  retransmissions;
* the receiving NIC acks every sequenced packet immediately on arrival
  (before occupancy and the delay queue) with an ACK packet that
  bypasses the transmit gap and is never itself retransmitted;
* the sender holds retransmission state per outstanding packet: a lazy
  timer (base timeout, exponential backoff) re-enqueues the packet if
  the ack has not arrived, and raises
  :class:`~repro.network.faults.RetryExhausted` once ``max_retries``
  retransmissions go unacked -- surfacing a dead link as a structured
  failure instead of a livelock;
* the receiver suppresses duplicate sequence numbers (re-acking them,
  since a duplicate means the previous ack was probably lost), so the
  host-visible stream is exactly-once even though the wire is at-least-
  once.

With a reliable fabric (no plan, or a null plan) none of this machinery
exists: no sequence numbers, no acks, no timers -- runs are bit-identical
to a build without the protocol.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.am.tuning import TuningKnobs
from repro.network.faults import FaultPlan, RetryExhausted
from repro.network.loggp import LogGPParams
from repro.network.packet import Packet, PacketKind
from repro.sim import Simulator, Store

__all__ = ["Nic"]


class _Reassembly:
    """In-progress bulk transfer: distinct fragment indices seen so far,
    plus the final fragment (which carries handler/payload) if it has
    already arrived out of order."""

    __slots__ = ("indices", "last")

    def __init__(self) -> None:
        self.indices: Set[int] = set()
        self.last: Optional[Packet] = None


class _RetxState:
    """Sender-held reliability state for one unacked packet."""

    __slots__ = ("packet", "attempts", "timer_id")

    def __init__(self, packet: Packet) -> None:
        self.packet = packet
        self.attempts = 0
        #: Incremented at every injection; a pending timer only fires its
        #: retransmission if it carries the current id (lazy cancel).
        self.timer_id = 0


class Nic:
    """One node's network interface card.

    Parameters
    ----------
    sim, node_id, params, knobs, wire:
        The simulator, this NIC's node id, baseline LogGP parameters,
        the tuning dials, and the fabric.
    deliver_to_host:
        Callback invoked with a :class:`Packet` when a message becomes
        visible to the host processor (the AM layer's receive queue).
    return_credit:
        Callback invoked with the original request's ``xfer_id`` when a
        flow-control credit comes back (REPLY arrival or CREDIT packet).
    stats:
        Optional :class:`~repro.instruments.stats.ClusterStats` receiving
        transmit-busy time and reliability counters.
    faults:
        The run's :class:`~repro.network.faults.FaultPlan`; the
        reliability protocol engages only when the plan can drop packets.
    """

    def __init__(self, sim: Simulator, node_id: int, params: LogGPParams,
                 knobs: TuningKnobs, wire: "Wire",  # noqa: F821
                 deliver_to_host: Callable[[Packet], None],
                 return_credit: Callable[[int], None],
                 tracer: Optional["MessageTracer"] = None,  # noqa: F821
                 stats: Optional["ClusterStats"] = None,  # noqa: F821
                 faults: Optional[FaultPlan] = None) -> None:
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.knobs = knobs
        self.wire = wire
        self._deliver_to_host = deliver_to_host
        self._return_credit = return_credit
        self.tracer = tracer
        self.stats = stats
        self.faults = faults
        self._reliable = faults is not None and faults.needs_reliability
        self._tx_queue: Store = Store(sim, name=f"tx[{node_id}]")
        # With non-zero occupancy the receive context becomes a serial
        # processor: each arriving packet holds it for delta_occ before
        # entering the (possibly delayed) receive queue.
        self._rx_queue: Optional[Store] = None
        if knobs.delta_occ > 0:
            self._rx_queue = Store(sim, name=f"rx[{node_id}]")
            sim.process(self._receive_context(),
                        name=f"nic-rx[{node_id}]")
        self._reassembly: Dict[int, _Reassembly] = {}
        self._delay_queue_depth = 0
        self.packets_injected = 0
        self.bytes_injected = 0
        #: Simulated µs this NIC's transmit context spent busy (DMA +
        #: injection stalls); mirrored into ``ClusterStats`` so the
        #: transmit-busy fraction of the measured region is reportable.
        self.tx_busy_us = 0.0
        # -- reliability-protocol state (empty on the reliable fabric) --
        self._next_seq = 0
        self._pending_retx: Dict[Tuple[int, int], _RetxState] = {}
        self._seen_seqs: Dict[int, Set[int]] = {}
        self.retransmissions = 0
        self.duplicates_suppressed = 0
        self.acks_sent = 0
        sim.process(self._transmit_context(), name=f"nic-tx[{node_id}]")
        wire.attach(node_id, self)

    # -- host-side API -----------------------------------------------------
    def enqueue(self, packet: Packet) -> None:
        """Host hands a packet to the NIC for transmission."""
        if packet.src != self.node_id:
            raise ValueError(
                f"packet src {packet.src} queued on NIC {self.node_id}")
        self._tx_queue.put(packet)

    @property
    def tx_backlog(self) -> int:
        """Packets waiting in the transmit queue (diagnostic)."""
        return len(self._tx_queue)

    # -- transmit context ---------------------------------------------------
    def _pre_injection_time(self, packet: Packet) -> float:
        """Transmit-context time *before* a packet reaches the wire.

        Bulk fragments must first be DMAed into the card at rate ``1/G``;
        short packets are staged by the host (part of ``o``) and go
        straight out.
        """
        time = self.knobs.delta_occ
        if packet.kind is PacketKind.BULK_FRAGMENT:
            time += packet.size_bytes * self.params.Gap
        return time

    def _post_injection_stall(self, packet: Packet,
                              pre_time: float) -> float:
        """Transmit-context stall *after* injection.

        The baseline per-message gap applies to every packet (less any
        time already spent on the DMA); the paper's dials are additive
        here: ``delta_g`` per message, ``delta_G`` per bulk byte.  The
        ``delta_G`` dial never slows short packets (Section 5.4: "we do
        not slow down transmission of small messages").
        """
        stall = max(0.0, self.params.gap - pre_time) + self.knobs.delta_g
        if packet.kind is PacketKind.BULK_FRAGMENT:
            stall += packet.size_bytes * self.knobs.delta_G
        return stall

    def _transmit_context(self):
        """The LANai transmit loop: DMA, inject, stall for the gap."""
        while True:
            packet = yield self._tx_queue.get()
            pre_time = self._pre_injection_time(packet)
            if pre_time > 0:
                yield self.sim.timeout(pre_time)
            self.packets_injected += 1
            self.bytes_injected += packet.size_bytes
            if self.tracer is not None:
                self.tracer.record("injected", packet.xfer_id,
                                   self.sim.now)
            self._inject(packet)
            stall = self._post_injection_stall(packet, pre_time)
            self.tx_busy_us += pre_time + stall
            if self.stats is not None:
                self.stats.on_tx_busy(self.node_id, pre_time + stall)
            if stall > 0:
                yield self.sim.timeout(stall)

    # -- reliability protocol: sender side ----------------------------------
    def _inject(self, packet: Packet) -> None:
        """Put a packet on the wire, arming retransmission if needed."""
        if self._reliable and packet.kind is not PacketKind.ACK:
            self._arm_retransmit(packet)
        self.wire.carry(packet)

    def _arm_retransmit(self, packet: Packet) -> None:
        if packet.seq is None:
            packet.seq = self._next_seq
            self._next_seq += 1
            state = _RetxState(packet)
            self._pending_retx[(packet.dst, packet.seq)] = state
        else:
            state = self._pending_retx.get((packet.dst, packet.seq))
            if state is None:
                # Acked while a retransmitted copy sat in the transmit
                # queue; the receiver will just suppress the duplicate.
                return
        state.timer_id += 1
        delay = self.faults.retx_timeout_us * \
            (self.faults.retx_backoff ** state.attempts)
        timer = self.sim.timeout(delay)
        timer.callbacks.append(
            lambda _e, p=packet, t=state.timer_id:
            self._retx_timer_fired(p, t))

    def _retx_timer_fired(self, packet: Packet, timer_id: int) -> None:
        state = self._pending_retx.get((packet.dst, packet.seq))
        if state is None or state.timer_id != timer_id:
            return  # acked, or superseded by a later injection's timer
        if state.attempts >= self.faults.max_retries:
            raise RetryExhausted(packet.src, packet.dst, packet.xfer_id,
                                 packet.seq, state.attempts)
        state.attempts += 1
        self.retransmissions += 1
        if self.stats is not None:
            self.stats.on_retransmit(self.node_id, packet)
        if packet.kind is PacketKind.CREDIT:
            # CREDITs bypass the transmit context on first send; they do
            # on retransmit too.
            self._inject(packet)
        else:
            self._tx_queue.put(packet)

    def _ack_received(self, ack: Packet) -> None:
        # A stale ack (for a packet already acked via an earlier copy)
        # finds no state and is simply ignored.
        self._pending_retx.pop((ack.src, ack.payload), None)

    @property
    def unacked_packets(self) -> int:
        """Outstanding reliability-protocol packets (diagnostic)."""
        return len(self._pending_retx)

    # -- reliability protocol: receiver side ---------------------------------
    def _send_ack(self, packet: Packet) -> None:
        """Firmware-level ack: straight onto the wire, no gap, never
        retransmitted (a lost ack is recovered by the sender's
        retransmission, which is then re-acked here)."""
        self.acks_sent += 1
        ack = Packet(kind=PacketKind.ACK, src=self.node_id,
                     dst=packet.src, payload=packet.seq, size_bytes=8)
        self.wire.carry(ack)

    # -- receive context ----------------------------------------------------
    def receive_from_wire(self, packet: Packet) -> None:
        """Wire delivery point: reliability bookkeeping first (acks and
        duplicate suppression are firmware-level), then occupancy (if
        dialed), then the delay queue for ``delta_L``."""
        if self._reliable:
            if packet.kind is PacketKind.ACK:
                self._ack_received(packet)
                return
            if packet.seq is not None:
                seen = self._seen_seqs.setdefault(packet.src, set())
                if packet.seq in seen:
                    self.duplicates_suppressed += 1
                    if self.stats is not None:
                        self.stats.on_duplicate(self.node_id, packet)
                    self._send_ack(packet)
                    return
                seen.add(packet.seq)
                self._send_ack(packet)
        if self._rx_queue is not None:
            self._rx_queue.put(packet)
            return
        self._after_occupancy(packet)

    def _receive_context(self):
        """Serial receive-context processing under dialed occupancy."""
        while True:
            packet = yield self._rx_queue.get()
            yield self.sim.timeout(self.knobs.delta_occ)
            self._after_occupancy(packet)

    def _after_occupancy(self, packet: Packet) -> None:
        if self.knobs.delta_L > 0:
            self._delay_queue_depth += 1
            hold = self.sim.event(name=f"delayq:{packet.xfer_id}")
            hold.callbacks.append(lambda _e: self._mark_valid(packet))
            hold.succeed(None, delay=self.knobs.delta_L)
        else:
            self._accept(packet)

    def _mark_valid(self, packet: Packet) -> None:
        self._delay_queue_depth -= 1
        self._accept(packet)

    def _accept(self, packet: Packet) -> None:
        """Process a packet that is now valid in the receive queue."""
        kind = packet.kind
        if kind is PacketKind.CREDIT:
            self._return_credit(packet.payload)
            return
        if kind is PacketKind.REPLY:
            self._return_credit(packet.xfer_id)
            self._record_delivery(packet)
            self._deliver_to_host(packet)
            return
        if kind is PacketKind.BULK_FRAGMENT:
            self._accept_fragment(packet)
            return
        # REQUEST
        if packet.one_way:
            self._send_nic_credit(packet)
        self._record_delivery(packet)
        self._deliver_to_host(packet)

    def _accept_fragment(self, packet: Packet) -> None:
        """Reassemble bulk fragments; deliver once every *distinct*
        index has arrived.

        Tracking distinct indices (not a packet count) keeps a
        duplicated or reordered fragment from completing a transfer
        early with missing data; the final fragment is stashed if it
        arrives out of order, because it alone carries the handler and
        payload for delivery.
        """
        index, count = packet.fragment
        entry = self._reassembly.get(packet.xfer_id)
        if entry is None:
            entry = self._reassembly[packet.xfer_id] = _Reassembly()
        entry.indices.add(index)
        if index == count - 1:
            entry.last = packet
        if len(entry.indices) < count:
            return
        final = entry.last
        del self._reassembly[packet.xfer_id]
        if final.one_way:
            self._send_nic_credit(final)
        elif final.is_reply:
            # A bulk reply completes a request: the window credit its
            # request took comes back here, as for a short REPLY.
            self._return_credit(final.xfer_id)
        self._record_delivery(final)
        self._deliver_to_host(final)

    def reassembly_teardown(self) -> int:
        """Drop in-progress reassembly state at end of run.

        Returns the number of transfers that never completed (leaked
        entries) -- zero on a reliable fabric, and a useful diagnostic
        once packets can be lost.
        """
        leaked = len(self._reassembly)
        self._reassembly.clear()
        return leaked

    def _record_delivery(self, packet: Packet) -> None:
        if self.tracer is not None:
            self.tracer.record("delivered", packet.xfer_id, self.sim.now)

    def _send_nic_credit(self, packet: Packet) -> None:
        """Firmware-level flow-control ack: straight back onto the wire,
        bypassing our transmit context (the LANai's dual-context
        property) and never touching the host.  Under a lossy plan the
        CREDIT is sequenced and retransmitted like any data packet."""
        credit = Packet(kind=PacketKind.CREDIT, src=self.node_id,
                        dst=packet.src, payload=packet.xfer_id,
                        size_bytes=8)
        self._inject(credit)

    @property
    def delay_queue_depth(self) -> int:
        """Packets currently held by the latency delay queue."""
        return self._delay_queue_depth
