"""The network interface: a model of the Myrinet LANai card.

The LANai runs two independent hardware contexts, which the paper's
apparatus exploits:

* the **transmit context** pulls packets queued by the host, injects them
  onto the wire, then stalls for the gap (baseline ``g`` plus the
  ``delta_g`` dial; for bulk fragments, plus ``size * (G + delta_G)``)
  before injecting the next packet -- stalling *after* injection so
  latency is unaffected;
* the **receive context** accepts packets from the wire and deposits them
  toward the host.  The ``delta_L`` dial is implemented here as the
  paper's *delay queue*: an arriving packet is only marked valid
  ``delta_L`` microseconds after arrival, leaving ``o`` and ``g``
  untouched.  Because the contexts are independent, a stalled transmitter
  never blocks reception.

Flow-control CREDIT packets are generated and consumed entirely inside
the NIC (never reaching the host) and bypass the transmit gap, standing
in for firmware-level acknowledgements.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.am.tuning import TuningKnobs
from repro.network.loggp import LogGPParams
from repro.network.packet import Packet, PacketKind
from repro.sim import Simulator, Store

__all__ = ["Nic"]


class Nic:
    """One node's network interface card.

    Parameters
    ----------
    sim, node_id, params, knobs, wire:
        The simulator, this NIC's node id, baseline LogGP parameters,
        the tuning dials, and the fabric.
    deliver_to_host:
        Callback invoked with a :class:`Packet` when a message becomes
        visible to the host processor (the AM layer's receive queue).
    return_credit:
        Callback invoked with the original request's ``xfer_id`` when a
        flow-control credit comes back (REPLY arrival or CREDIT packet).
    """

    def __init__(self, sim: Simulator, node_id: int, params: LogGPParams,
                 knobs: TuningKnobs, wire: "Wire",  # noqa: F821
                 deliver_to_host: Callable[[Packet], None],
                 return_credit: Callable[[int], None],
                 tracer: Optional["MessageTracer"] = None) -> None:  # noqa: F821
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.knobs = knobs
        self.wire = wire
        self._deliver_to_host = deliver_to_host
        self._return_credit = return_credit
        self.tracer = tracer
        self._tx_queue: Store = Store(sim, name=f"tx[{node_id}]")
        # With non-zero occupancy the receive context becomes a serial
        # processor: each arriving packet holds it for delta_occ before
        # entering the (possibly delayed) receive queue.
        self._rx_queue: Optional[Store] = None
        if knobs.delta_occ > 0:
            self._rx_queue = Store(sim, name=f"rx[{node_id}]")
            sim.process(self._receive_context(),
                        name=f"nic-rx[{node_id}]")
        self._fragments_seen: Dict[int, int] = {}
        self._delay_queue_depth = 0
        self.packets_injected = 0
        self.bytes_injected = 0
        self.tx_busy_until = 0.0
        sim.process(self._transmit_context(), name=f"nic-tx[{node_id}]")
        wire.attach(node_id, self)

    # -- host-side API -----------------------------------------------------
    def enqueue(self, packet: Packet) -> None:
        """Host hands a packet to the NIC for transmission."""
        if packet.src != self.node_id:
            raise ValueError(
                f"packet src {packet.src} queued on NIC {self.node_id}")
        self._tx_queue.put(packet)

    @property
    def tx_backlog(self) -> int:
        """Packets waiting in the transmit queue (diagnostic)."""
        return len(self._tx_queue)

    # -- transmit context ---------------------------------------------------
    def _pre_injection_time(self, packet: Packet) -> float:
        """Transmit-context time *before* a packet reaches the wire.

        Bulk fragments must first be DMAed into the card at rate ``1/G``;
        short packets are staged by the host (part of ``o``) and go
        straight out.
        """
        time = self.knobs.delta_occ
        if packet.kind is PacketKind.BULK_FRAGMENT:
            time += packet.size_bytes * self.params.Gap
        return time

    def _post_injection_stall(self, packet: Packet,
                              pre_time: float) -> float:
        """Transmit-context stall *after* injection.

        The baseline per-message gap applies to every packet (less any
        time already spent on the DMA); the paper's dials are additive
        here: ``delta_g`` per message, ``delta_G`` per bulk byte.  The
        ``delta_G`` dial never slows short packets (Section 5.4: "we do
        not slow down transmission of small messages").
        """
        stall = max(0.0, self.params.gap - pre_time) + self.knobs.delta_g
        if packet.kind is PacketKind.BULK_FRAGMENT:
            stall += packet.size_bytes * self.knobs.delta_G
        return stall

    def _transmit_context(self):
        """The LANai transmit loop: DMA, inject, stall for the gap."""
        while True:
            packet = yield self._tx_queue.get()
            pre_time = self._pre_injection_time(packet)
            if pre_time > 0:
                yield self.sim.timeout(pre_time)
            self.packets_injected += 1
            self.bytes_injected += packet.size_bytes
            if self.tracer is not None:
                self.tracer.record("injected", packet.xfer_id,
                                   self.sim.now)
            self.wire.carry(packet)
            stall = self._post_injection_stall(packet, pre_time)
            self.tx_busy_until = self.sim.now + stall
            if stall > 0:
                yield self.sim.timeout(stall)

    # -- receive context ----------------------------------------------------
    def receive_from_wire(self, packet: Packet) -> None:
        """Wire delivery point: occupancy first (if dialed), then the
        delay queue for ``delta_L``."""
        if self._rx_queue is not None:
            self._rx_queue.put(packet)
            return
        self._after_occupancy(packet)

    def _receive_context(self):
        """Serial receive-context processing under dialed occupancy."""
        while True:
            packet = yield self._rx_queue.get()
            yield self.sim.timeout(self.knobs.delta_occ)
            self._after_occupancy(packet)

    def _after_occupancy(self, packet: Packet) -> None:
        if self.knobs.delta_L > 0:
            self._delay_queue_depth += 1
            hold = self.sim.event(name=f"delayq:{packet.xfer_id}")
            hold.callbacks.append(lambda _e: self._mark_valid(packet))
            hold.succeed(None, delay=self.knobs.delta_L)
        else:
            self._accept(packet)

    def _mark_valid(self, packet: Packet) -> None:
        self._delay_queue_depth -= 1
        self._accept(packet)

    def _accept(self, packet: Packet) -> None:
        """Process a packet that is now valid in the receive queue."""
        kind = packet.kind
        if kind is PacketKind.CREDIT:
            self._return_credit(packet.payload)
            return
        if kind is PacketKind.REPLY:
            self._return_credit(packet.xfer_id)
            self._record_delivery(packet)
            self._deliver_to_host(packet)
            return
        if kind is PacketKind.BULK_FRAGMENT:
            self._accept_fragment(packet)
            return
        # REQUEST
        if packet.one_way:
            self._send_nic_credit(packet)
        self._record_delivery(packet)
        self._deliver_to_host(packet)

    def _accept_fragment(self, packet: Packet) -> None:
        """Reassemble bulk fragments; deliver the message on the last."""
        _index, count = packet.fragment
        seen = self._fragments_seen.get(packet.xfer_id, 0) + 1
        if seen < count:
            self._fragments_seen[packet.xfer_id] = seen
            return
        self._fragments_seen.pop(packet.xfer_id, None)
        if packet.one_way:
            self._send_nic_credit(packet)
        elif packet.is_reply:
            # A bulk reply completes a request: the window credit its
            # request took comes back here, as for a short REPLY.
            self._return_credit(packet.xfer_id)
        self._record_delivery(packet)
        self._deliver_to_host(packet)

    def _record_delivery(self, packet: Packet) -> None:
        if self.tracer is not None:
            self.tracer.record("delivered", packet.xfer_id, self.sim.now)

    def _send_nic_credit(self, packet: Packet) -> None:
        """Firmware-level flow-control ack: straight back onto the wire,
        bypassing our transmit context (the LANai's dual-context
        property) and never touching the host."""
        credit = Packet(kind=PacketKind.CREDIT, src=self.node_id,
                        dst=packet.src, payload=packet.xfer_id,
                        size_bytes=8)
        self.wire.carry(credit)

    @property
    def delay_queue_depth(self) -> int:
        """Packets currently held by the latency delay queue."""
        return self._delay_queue_depth
