"""The LogGP machine characterisation (Culler et al.; Alexandrov et al.).

A distributed-memory machine is characterised by:

* ``L`` -- latency: wire + switch transit time for a short message, in µs.
* ``o`` -- overhead: processor time spent sending *or* receiving one
  message, in µs.  The paper calibrates separate send/receive overheads
  (1.8 µs / 4 µs on the NOW) and models ``o`` as their average; we keep
  both and expose the average.
* ``g`` -- gap: minimum interval between successive message injections
  (or receptions) at one node, in µs; ``1/g`` is the small-message rate.
* ``G`` -- Gap per byte for bulk transfers, in µs/byte; ``1/G`` is the
  bulk bandwidth in MB/s (bytes/µs ≡ MB/s).
* ``P`` -- number of processors (carried by the cluster, not here).

The network has finite capacity: at most ``ceil(L/g)`` short messages may
be in flight to or from any one node; a sender that would exceed this
stalls (Section 2 of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["LogGPParams"]


@dataclass(frozen=True)
class LogGPParams:
    """Baseline LogGP parameters of a machine, all times in microseconds.

    Instances are immutable; derive variants with :meth:`with_changes`.
    """

    #: Wire/switch transit latency for a short message (µs).
    latency: float = 5.0
    #: Processor overhead to *send* one short message (µs).
    send_overhead: float = 1.8
    #: Processor overhead to *receive* one short message (µs).
    recv_overhead: float = 4.0
    #: Minimum interval between message injections at one NIC (µs).
    gap: float = 5.8
    #: Bulk transfer time per byte (µs/byte); 1/G is bandwidth in MB/s.
    Gap: float = 1.0 / 38.0

    def __post_init__(self) -> None:
        for field_name in ("latency", "send_overhead", "recv_overhead",
                           "gap", "Gap"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be >= 0, got {value}")
        if self.gap <= 0:
            raise ValueError("gap must be > 0 (it bounds message rate)")

    # -- derived quantities ----------------------------------------------
    @property
    def overhead(self) -> float:
        """The paper's single ``o``: average of send and receive overhead."""
        return (self.send_overhead + self.recv_overhead) / 2.0

    @property
    def bulk_bandwidth_mb_s(self) -> float:
        """Bulk transfer bandwidth in MB/s (= 1/G)."""
        if self.Gap == 0:
            return math.inf
        return 1.0 / self.Gap

    @property
    def capacity(self) -> int:
        """Max short messages in flight to/from one node: ``ceil(L/g)``."""
        return max(1, math.ceil(self.latency / self.gap))

    def round_trip_time(self) -> float:
        """Model RTT of a request/response pair: ``2L + 4o`` (Section 2)."""
        return 2.0 * self.latency + 4.0 * self.overhead

    def one_way_time(self) -> float:
        """Model time for a single short message: ``L + 2o``."""
        return self.latency + 2.0 * self.overhead

    def with_changes(self, **changes: float) -> "LogGPParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # -- machine presets (Table 1 of the paper) ---------------------------
    @classmethod
    def berkeley_now(cls) -> "LogGPParams":
        """The Berkeley NOW baseline: o=2.9, g=5.8, L=5.0, 38 MB/s."""
        return cls(latency=5.0, send_overhead=1.8, recv_overhead=4.0,
                   gap=5.8, Gap=1.0 / 38.0)

    @classmethod
    def intel_paragon(cls) -> "LogGPParams":
        """Intel Paragon: o=1.8, g=7.6, L=6.5, 141 MB/s."""
        return cls(latency=6.5, send_overhead=1.8, recv_overhead=1.8,
                   gap=7.6, Gap=1.0 / 141.0)

    @classmethod
    def meiko_cs2(cls) -> "LogGPParams":
        """Meiko CS-2: o=1.7, g=13.6, L=7.5, 47 MB/s."""
        return cls(latency=7.5, send_overhead=1.7, recv_overhead=1.7,
                   gap=13.6, Gap=1.0 / 47.0)

    @classmethod
    def lan_tcp(cls) -> "LogGPParams":
        """A conventional LAN with a TCP/IP stack: ~100 µs overhead
        with latency and gap comparable to the NOW fabric (Section 5.1)."""
        return cls(latency=5.0, send_overhead=100.0, recv_overhead=100.0,
                   gap=5.8, Gap=1.0 / 10.0)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"LogGP(o={self.overhead:.1f}us, g={self.gap:.1f}us, "
                f"L={self.latency:.1f}us, "
                f"1/G={self.bulk_bandwidth_mb_s:.0f}MB/s)")
