"""Deterministic fault injection for the simulated fabric.

The paper's apparatus assumes a perfectly reliable Myrinet; this module
lets the wire misbehave in three seeded, reproducible ways so the AM
layer's reliability protocol (see :mod:`repro.network.nic`) has
something to recover from:

* **per-packet drops** -- every packet carried by the wire is dropped
  with probability ``drop_rate``, drawn from a ``RandomState`` derived
  from the run seed (so reruns are bit-identical and cache-keyable);
* **one-off delay spikes** -- in the style of Afzal et al. ("Propagation
  and Decay of Injected One-Off Delays on Clusters"), a node freezes for
  a window ``[start_us, start_us + duration_us)``: packets that would
  arrive at it during the window are held until the window ends;
* **per-node slowdown windows** -- a node's links degrade for a window,
  multiplying the transit latency of packets to or from it.

A :class:`FaultPlan` is a frozen value object describing *what* can go
wrong; it enters the run-cache key spec, so two runs with different
plans never share a cache entry.  A :class:`FaultInjector` is the
per-run realisation: it owns the RNG (derived from the run seed and the
plan's ``salt``) and makes the actual drop/delay decisions.

Drops only make sense with a recovery path.  Whenever a plan can drop
packets (``needs_reliability``), every NIC switches on its
sequence-number / ack / retransmit machinery; plans that only delay
packets leave the machinery off so decay traces measure pure delay
propagation.  A transfer whose retries are exhausted raises
:class:`RetryExhausted` (a :class:`FaultError`), which the sweep engine
surfaces as a structured ``N/A`` point rather than a livelock.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = ["DelaySpike", "SlowdownWindow", "FaultPlan", "FaultInjector",
           "FaultError", "RetryExhausted"]


class FaultError(RuntimeError):
    """Base class for injected-fault failures surfaced by a run."""


class RetryExhausted(FaultError):
    """A packet was retransmitted ``max_retries`` times without an ack.

    Carries enough structure for a sweep to report the failing transfer
    rather than livelocking the run.
    """

    def __init__(self, src: int, dst: int, xfer_id: int, seq: int,
                 attempts: int) -> None:
        self.src = src
        self.dst = dst
        self.xfer_id = xfer_id
        self.seq = seq
        self.attempts = attempts
        super().__init__(
            f"packet {src}->{dst} (xfer {xfer_id}, seq {seq}) unacked "
            f"after {attempts} retransmissions")


@dataclass(frozen=True)
class DelaySpike:
    """A one-off freeze of ``node`` (Afzal-style injected delay).

    Packets that would arrive at ``node`` inside
    ``[start_us, start_us + duration_us)`` are held on the wire until
    the window ends.
    """

    node: int
    start_us: float
    duration_us: float

    def __post_init__(self) -> None:
        if self.start_us < 0 or self.duration_us <= 0:
            raise ValueError(
                f"spike needs start_us >= 0 and duration_us > 0, got "
                f"({self.start_us}, {self.duration_us})")

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass(frozen=True)
class SlowdownWindow:
    """Degraded links at ``node`` for a window of simulated time.

    While active, the transit latency of every packet to or from
    ``node`` is multiplied by ``factor``.
    """

    node: int
    start_us: float
    duration_us: float
    factor: float

    def __post_init__(self) -> None:
        if self.start_us < 0 or self.duration_us <= 0:
            raise ValueError(
                f"window needs start_us >= 0 and duration_us > 0, got "
                f"({self.start_us}, {self.duration_us})")
        if self.factor < 1.0:
            raise ValueError(
                f"factor must be >= 1.0 (faults only slow the machine), "
                f"got {self.factor}")

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass(frozen=True)
class FaultPlan:
    """Everything that may go wrong on the wire during one run.

    The default-constructed plan is *null*: nothing misbehaves, and the
    reliability machinery stays completely off, so a run with
    ``FaultPlan()`` is bit-identical to a run with no plan at all.
    """

    #: Per-packet drop probability on the wire (0 disables drops).
    drop_rate: float = 0.0
    #: Restrict drops to these :class:`~repro.network.packet.PacketKind`
    #: values (e.g. ``("credit",)``); ``None`` means every kind.
    drop_kinds: Optional[Tuple[str, ...]] = None
    #: One-off node freezes.
    spikes: Tuple[DelaySpike, ...] = ()
    #: Degraded-link windows.
    slowdowns: Tuple[SlowdownWindow, ...] = ()
    #: Extra entropy mixed into the drop RNG so two otherwise identical
    #: plans can draw distinct streams.
    salt: int = 0
    #: Base retransmission timeout (µs); must exceed the round trip.
    retx_timeout_us: float = 200.0
    #: Exponential backoff factor applied per retransmission.
    retx_backoff: float = 2.0
    #: Retransmissions allowed before :class:`RetryExhausted`.
    max_retries: int = 10

    def __post_init__(self) -> None:
        # Normalise sequence arguments to tuples so the plan is hashable
        # and its asdict() form is canonical for the cache key.
        object.__setattr__(self, "spikes", tuple(self.spikes))
        object.__setattr__(self, "slowdowns", tuple(self.slowdowns))
        if self.drop_kinds is not None:
            object.__setattr__(self, "drop_kinds",
                               tuple(sorted(self.drop_kinds)))
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError(
                f"drop_rate must be in [0, 1], got {self.drop_rate}")
        if self.retx_timeout_us <= 0:
            raise ValueError(
                f"retx_timeout_us must be > 0, got {self.retx_timeout_us}")
        if self.retx_backoff < 1.0:
            raise ValueError(
                f"retx_backoff must be >= 1, got {self.retx_backoff}")
        if self.max_retries < 1:
            raise ValueError(
                f"max_retries must be >= 1, got {self.max_retries}")

    @property
    def is_null(self) -> bool:
        """True when nothing can misbehave (the perfectly reliable wire)."""
        return (self.drop_rate == 0.0 and not self.spikes
                and not self.slowdowns)

    @property
    def needs_reliability(self) -> bool:
        """True when packets can be *lost* (not merely delayed), which is
        what forces the ack/retransmit protocol on."""
        return self.drop_rate > 0.0

    def with_changes(self, **changes: Any) -> "FaultPlan":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def as_spec(self) -> Optional[Dict[str, Any]]:
        """JSON-safe form for the run-cache key (``None`` when null,
        so a null plan and no plan share the same cache entry)."""
        if self.is_null:
            return None
        return dataclasses.asdict(self)

    def describe(self) -> str:
        """One-line summary of the active faults."""
        parts = []
        if self.drop_rate:
            kinds = "" if self.drop_kinds is None else \
                f" of {','.join(self.drop_kinds)}"
            parts.append(f"drop={self.drop_rate:g}{kinds}")
        if self.spikes:
            parts.append(f"{len(self.spikes)} spike(s)")
        if self.slowdowns:
            parts.append(f"{len(self.slowdowns)} slowdown(s)")
        return " ".join(parts) if parts else "no faults"


class FaultInjector:
    """The per-run realisation of a :class:`FaultPlan`.

    Owns the drop RNG (a ``RandomState`` derived from the run seed, per
    the repo's seed-derivation rule) and decides, packet by packet, what
    the wire does.  All decisions are pure functions of (plan, seed,
    packet order), so reruns are bit-identical.
    """

    def __init__(self, plan: FaultPlan, seed: int) -> None:
        if plan.is_null:
            raise ValueError("a null FaultPlan needs no injector")
        self.plan = plan
        derived_seed = (seed * 1_000_003 + plan.salt * 7919 + 0xFA17) \
            % (2 ** 32)
        self._rng = np.random.RandomState(derived_seed)
        #: Packets removed from the wire (diagnostic).
        self.packets_dropped = 0
        #: Packets held by a delay spike (diagnostic).
        self.packets_spiked = 0
        #: Packets stretched by a slowdown window (diagnostic).
        self.packets_slowed = 0

    def _droppable(self, packet: "Packet") -> bool:  # noqa: F821
        if self.plan.drop_rate <= 0.0:
            return False
        return self.plan.drop_kinds is None or \
            packet.kind.value in self.plan.drop_kinds

    def transit_delay(self, packet: "Packet", now: float,  # noqa: F821
                      base_latency: float) -> Optional[float]:
        """The packet's transit delay under this plan, or ``None`` if it
        is dropped.

        The drop draw is consumed only for packets the plan can drop, so
        narrowing ``drop_kinds`` does not shift the stream seen by the
        remaining kinds' order.
        """
        if self._droppable(packet) and \
                self._rng.random_sample() < self.plan.drop_rate:
            self.packets_dropped += 1
            return None
        delay = base_latency
        for window in self.plan.slowdowns:
            if packet.src != window.node and packet.dst != window.node:
                continue
            if window.start_us <= now < window.end_us:
                delay *= window.factor
                self.packets_slowed += 1
        for spike in self.plan.spikes:
            if packet.dst != spike.node:
                continue
            arrival = now + delay
            if spike.start_us <= arrival < spike.end_us:
                delay = spike.end_us - now
                self.packets_spiked += 1
        return delay
