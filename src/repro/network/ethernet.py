"""A mid-90s shared-medium LAN fabric (the paper's comparison point).

Section 5.1 calibrates the top of the overhead sweep against "TCP/IP
protocol stacks" on conventional LANs, and Section 5.3 speaks of
"the latencies of store-and-forward networks (100 µs)".  This fabric
models that world, for contrast experiments against the Myrinet-class
wires:

* **a single shared medium** — one packet transmits at a time,
  cluster-wide (10BASE-like hubs/coax rather than a switched fabric);
* **store-and-forward transit** — a packet is fully serialised onto the
  medium at the link bandwidth before it appears at the receiver, plus
  a fixed propagation/forwarding time.

With the defaults (10 Mbit/s ≈ 1.25 MB/s, 50 µs forwarding), a short
packet takes ~75 µs of transit and the whole cluster contends for one
medium — pair it with ``LogGPParams.lan_tcp()`` (100 µs overheads) for
a faithful "the network before NOW" machine:
``Cluster(params=LogGPParams.lan_tcp(), fabric="ethernet")``.
"""

from __future__ import annotations

from typing import Dict

from repro.network.packet import Packet
from repro.sim import Resource, Simulator

__all__ = ["SharedMediumFabric", "ETHERNET_MB_S",
           "STORE_AND_FORWARD_US"]

#: 10 Mbit/s Ethernet in bytes/µs (= MB/s).
ETHERNET_MB_S = 1.25

#: Fixed per-packet propagation + forwarding time (µs).
STORE_AND_FORWARD_US = 50.0


class SharedMediumFabric:
    """One shared medium for the whole cluster; Wire-compatible."""

    def __init__(self, sim: Simulator,
                 bandwidth_mb_s: float = ETHERNET_MB_S,
                 forward_us: float = STORE_AND_FORWARD_US) -> None:
        if bandwidth_mb_s <= 0:
            raise ValueError(
                f"bandwidth must be > 0, got {bandwidth_mb_s}")
        if forward_us < 0:
            raise ValueError(f"forward_us must be >= 0: {forward_us}")
        self.sim = sim
        self.bandwidth_mb_s = bandwidth_mb_s
        self.forward_us = forward_us
        self._nics: Dict[int, "Nic"] = {}  # noqa: F821
        #: The single cable: everything serialises here.
        self._medium = Resource(sim, capacity=1, name="ether-medium")
        self._in_flight = 0
        self._max_in_flight = 0
        self._packets_carried = 0
        self.medium_busy_us = 0.0

    def transmit_time(self, packet: Packet) -> float:
        """Serialisation time of one packet on the medium."""
        return packet.size_bytes / self.bandwidth_mb_s

    # -- Wire-compatible interface ------------------------------------------
    def attach(self, node_id: int, nic: "Nic") -> None:  # noqa: F821
        """Register the NIC serving ``node_id``."""
        if node_id in self._nics:
            raise ValueError(f"node {node_id} already attached")
        self._nics[node_id] = nic

    def carry(self, packet: Packet) -> None:
        """Contend for the medium, then store-and-forward to ``dst``."""
        nic = self._nics.get(packet.dst)
        if nic is None:
            raise KeyError(f"no NIC attached for node {packet.dst}")
        self._in_flight += 1
        self._max_in_flight = max(self._max_in_flight, self._in_flight)
        self._packets_carried += 1
        packet.injected_at = self.sim.now
        self.sim.process(self._transmit(packet, nic),
                         name=f"ether:{packet.xfer_id}")

    def _transmit(self, packet: Packet, nic: "Nic"):  # noqa: F821
        grant = self._medium.request()
        yield grant
        try:
            hold = self.transmit_time(packet)
            self.medium_busy_us += hold
            yield self.sim.timeout(hold)
        finally:
            self._medium.release()
        # Store-and-forward: the receiver sees it after the fixed
        # forwarding/propagation time, off the medium.
        yield self.sim.timeout(self.forward_us)
        self._in_flight -= 1
        nic.receive_from_wire(packet)

    # -- diagnostics -----------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def max_in_flight(self) -> int:
        return self._max_in_flight

    @property
    def packets_carried(self) -> int:
        return self._packets_carried

    def utilisation(self) -> float:
        """Fraction of elapsed simulated time the medium was busy."""
        if self.sim.now == 0:
            return 0.0
        return self.medium_busy_us / self.sim.now
