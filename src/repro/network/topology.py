"""A detailed Myrinet-style switched fabric (optional substrate).

The flat :class:`~repro.network.wire.Wire` charges every packet the same
transit latency — the right abstraction for reproducing the paper, whose
LogP methodology deliberately hides network structure.  This module adds
the *actual* structure of the Berkeley NOW's network for studies that
want it: **ten 8-port M2F switches** (the paper's Section 3.1) arranged
as eight leaf switches of four hosts each plus two spine switches, with
160 MB/s links.

* Hosts on the same leaf are one switch hop apart; across leaves the
  route is leaf → spine → leaf (three hops).  The spine is chosen
  deterministically by source-leaf/destination-leaf parity, spreading
  load without reordering any (src, dst) pair's packets.
* Each inter-switch link serialises packets at the link bandwidth, so
  congestion through a shared spine is observable — something the flat
  wire cannot express.

Use ``Cluster(..., fabric="myrinet")`` to run the whole stack over this
fabric; per-hop latency defaults are calibrated so the *average* route
matches the flat wire's ``L``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.network.packet import Packet
from repro.sim import Resource, Simulator

__all__ = ["SwitchedFabric", "HOSTS_PER_LEAF", "N_LEAF_SWITCHES",
           "N_SPINE_SWITCHES"]

#: The Berkeley NOW: 32 hosts over ten 8-port switches.
HOSTS_PER_LEAF = 4
N_LEAF_SWITCHES = 8
N_SPINE_SWITCHES = 2
SWITCH_PORTS = 8

#: Per-port link bandwidth of the M2F switch (MB/s = bytes/µs).
LINK_MB_S = 160.0


class SwitchedFabric:
    """Ten-switch Myrinet fabric; drop-in replacement for ``Wire``.

    Parameters
    ----------
    sim:
        The simulator.
    hop_latency:
        Per-switch-traversal latency in µs.  The default (5.0/3) makes a
        cross-leaf route cost the flat wire's 5 µs.
    link_mb_s:
        Serialisation bandwidth of each inter-switch link.
    n_hosts:
        Hosts attached (≤ 32 for the standard geometry).
    """

    def __init__(self, sim: Simulator, hop_latency: float = 5.0 / 3.0,
                 link_mb_s: float = LINK_MB_S,
                 n_hosts: int = HOSTS_PER_LEAF * N_LEAF_SWITCHES) -> None:
        if hop_latency < 0:
            raise ValueError(f"hop_latency must be >= 0: {hop_latency}")
        if link_mb_s <= 0:
            raise ValueError(f"link_mb_s must be > 0: {link_mb_s}")
        max_hosts = HOSTS_PER_LEAF * N_LEAF_SWITCHES
        if not 1 <= n_hosts <= max_hosts:
            raise ValueError(
                f"this geometry supports 1..{max_hosts} hosts, "
                f"got {n_hosts}")
        self.sim = sim
        self.hop_latency = hop_latency
        self.link_mb_s = link_mb_s
        self.n_hosts = n_hosts
        self._nics: Dict[int, "Nic"] = {}  # noqa: F821
        #: One serialising resource per directed inter-switch link:
        #: (leaf, spine, direction) -> Resource.
        self._links: Dict[Tuple[str, int, int], Resource] = {}
        for leaf in range(N_LEAF_SWITCHES):
            for spine in range(N_SPINE_SWITCHES):
                for direction in ("up", "down"):
                    self._links[(direction, leaf, spine)] = Resource(
                        sim, capacity=1,
                        name=f"link-{direction}-{leaf}-{spine}")
        self._in_flight = 0
        self._max_in_flight = 0
        self._packets_carried = 0
        self._hop_histogram: Dict[int, int] = {}

    # -- topology queries ----------------------------------------------------
    @staticmethod
    def leaf_of(host: int) -> int:
        """The leaf switch a host hangs off."""
        return host // HOSTS_PER_LEAF

    @staticmethod
    def spine_for(src_leaf: int, dst_leaf: int) -> int:
        """Deterministic spine choice for a leaf pair (load spreading
        that keeps each (src, dst) pair on one path — no reordering)."""
        return (src_leaf + dst_leaf) % N_SPINE_SWITCHES

    def hops(self, src: int, dst: int) -> int:
        """Switch traversals on the route from ``src`` to ``dst``."""
        if self.leaf_of(src) == self.leaf_of(dst):
            return 1
        return 3  # leaf, spine, leaf

    def route_latency(self, src: int, dst: int) -> float:
        """Pure propagation latency of the route (no queueing)."""
        return self.hops(src, dst) * self.hop_latency

    @property
    def n_switches(self) -> int:
        return N_LEAF_SWITCHES + N_SPINE_SWITCHES

    # -- Wire-compatible interface ----------------------------------------------
    def attach(self, node_id: int, nic: "Nic") -> None:  # noqa: F821
        """Register the NIC serving ``node_id``."""
        if node_id in self._nics:
            raise ValueError(f"node {node_id} already attached")
        if not 0 <= node_id < self.n_hosts:
            raise ValueError(
                f"node {node_id} outside 0..{self.n_hosts - 1}")
        self._nics[node_id] = nic

    def carry(self, packet: Packet) -> None:
        """Route ``packet`` through the switches to its destination."""
        nic = self._nics.get(packet.dst)
        if nic is None:
            raise KeyError(f"no NIC attached for node {packet.dst}")
        self._in_flight += 1
        self._max_in_flight = max(self._max_in_flight, self._in_flight)
        self._packets_carried += 1
        packet.injected_at = self.sim.now
        hops = self.hops(packet.src, packet.dst)
        self._hop_histogram[hops] = self._hop_histogram.get(hops, 0) + 1
        self.sim.process(self._route(packet, nic),
                         name=f"route:{packet.xfer_id}")

    def _route(self, packet: Packet, nic: "Nic"):  # noqa: F821
        src_leaf = self.leaf_of(packet.src)
        dst_leaf = self.leaf_of(packet.dst)
        yield self.sim.timeout(self.hop_latency)  # source leaf switch
        if src_leaf != dst_leaf:
            spine = self.spine_for(src_leaf, dst_leaf)
            yield from self._traverse_link(("up", src_leaf, spine),
                                           packet)
            yield self.sim.timeout(self.hop_latency)  # spine switch
            yield from self._traverse_link(("down", dst_leaf, spine),
                                           packet)
            yield self.sim.timeout(self.hop_latency)  # destination leaf
        self._in_flight -= 1
        nic.receive_from_wire(packet)

    def _traverse_link(self, key: Tuple[str, int, int], packet: Packet):
        """Serialise the packet over one inter-switch link."""
        link = self._links[key]
        request = link.request()
        yield request
        try:
            yield self.sim.timeout(packet.size_bytes / self.link_mb_s)
        finally:
            link.release()

    # -- diagnostics -----------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def max_in_flight(self) -> int:
        return self._max_in_flight

    @property
    def packets_carried(self) -> int:
        return self._packets_carried

    @property
    def hop_histogram(self) -> Dict[int, int]:
        """How many packets took 1-hop vs 3-hop routes."""
        return dict(self._hop_histogram)

    def expected_mean_latency(self) -> float:
        """Mean propagation latency over uniform host pairs (no
        queueing, no link serialisation)."""
        total = 0.0
        pairs = 0
        for src in range(self.n_hosts):
            for dst in range(self.n_hosts):
                if src != dst:
                    total += self.route_latency(src, dst)
                    pairs += 1
        return total / pairs if pairs else 0.0
