"""The switch fabric.

The Berkeley NOW's Myrinet fabric (ten 8-port switches, 160 MB/s links)
was never the bottleneck in the paper -- the per-message rate was limited
by the LANai, and bulk bandwidth by the SBus DMA.  The paper also observes
that the effective capacity constraint of the system is the Active Message
layer's fixed flow-control window rather than the LogP ``L/g`` bound.  The
wire is therefore modelled as a pure transit delay of ``L`` microseconds
per packet with unlimited internal bandwidth; rate limits live in the NIC
(gap, Gap) and the AM layer (window).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.network.packet import Packet

__all__ = ["Wire"]


class Wire:
    """Point-to-point transit between NICs with latency ``L``.

    NICs register themselves via :meth:`attach`; :meth:`carry` schedules
    delivery of a packet into the destination NIC's receive context after
    the base latency.

    An optional :class:`~repro.network.faults.FaultInjector` makes the
    fabric imperfect: it may drop a packet outright or stretch its
    transit (delay spikes, slowdown windows).  Without an injector the
    fast path is untouched.
    """

    def __init__(self, sim: "Simulator", latency: float,  # noqa: F821
                 injector: Optional["FaultInjector"] = None,  # noqa: F821
                 stats: Optional["ClusterStats"] = None) -> None:  # noqa: F821
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.sim = sim
        self.latency = latency
        self.injector = injector
        self.stats = stats
        self._nics: Dict[int, "Nic"] = {}  # noqa: F821
        self._in_flight = 0
        self._max_in_flight = 0
        self._packets_carried = 0
        self._packets_dropped = 0

    def attach(self, node_id: int, nic: "Nic") -> None:  # noqa: F821
        """Register the NIC serving ``node_id``."""
        if node_id in self._nics:
            raise ValueError(f"node {node_id} already attached")
        self._nics[node_id] = nic

    def carry(self, packet: Packet) -> None:
        """Put ``packet`` on the wire; it arrives at ``dst`` after ``L``
        (or later -- or never -- under an active fault plan)."""
        nic = self._nics.get(packet.dst)
        if nic is None:
            raise KeyError(f"no NIC attached for node {packet.dst}")
        if self.injector is None:
            delay = self.latency
        else:
            delay = self.injector.transit_delay(packet, self.sim.now,
                                                self.latency)
            if delay is None:
                self._packets_dropped += 1
                if self.stats is not None:
                    self.stats.on_packet_dropped(packet.src, packet)
                return
        self._in_flight += 1
        self._max_in_flight = max(self._max_in_flight, self._in_flight)
        self._packets_carried += 1
        packet.injected_at = self.sim.now
        arrival = self.sim.event(name=f"arrive:{packet.xfer_id}")
        arrival.callbacks.append(lambda _e: self._deliver(nic, packet))
        arrival.succeed(None, delay=delay)

    def _deliver(self, nic: "Nic", packet: Packet) -> None:  # noqa: F821
        self._in_flight -= 1
        nic.receive_from_wire(packet)

    # -- diagnostics ------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Packets currently in transit."""
        return self._in_flight

    @property
    def max_in_flight(self) -> int:
        """High-water mark of packets simultaneously in transit."""
        return self._max_in_flight

    @property
    def packets_carried(self) -> int:
        """Total packets ever carried."""
        return self._packets_carried

    @property
    def packets_dropped(self) -> int:
        """Total packets removed by the fault injector."""
        return self._packets_dropped
