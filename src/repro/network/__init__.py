"""The LogGP network substrate.

This package models the machine resources that carry a message from one
node to another, mirroring the Berkeley NOW hardware the paper instruments:

* :mod:`repro.network.loggp` -- the four-parameter LogGP characterisation
  (``L``, ``o``, ``g``, ``G``, plus ``P``) and machine presets.
* :mod:`repro.network.packet` -- short packets and bulk fragments.
* :mod:`repro.network.wire` -- the switch fabric: transit latency and
  finite capacity.
* :mod:`repro.network.nic` -- the LANai-style network interface with
  independent transmit and receive contexts, per-message gap
  serialisation, and the receiver-side delay queue used to dial ``L``.
* :mod:`repro.network.faults` -- seeded fault injection (drops, delay
  spikes, slowdown windows) and the errors its reliability protocol
  can surface.
"""

from repro.network.faults import (DelaySpike, FaultError, FaultInjector,
                                  FaultPlan, RetryExhausted,
                                  SlowdownWindow)
from repro.network.loggp import LogGPParams
from repro.network.packet import BULK_FRAGMENT_BYTES, Packet
from repro.network.nic import Nic
from repro.network.wire import Wire

__all__ = ["LogGPParams", "Packet", "BULK_FRAGMENT_BYTES", "Nic", "Wire",
           "FaultPlan", "FaultInjector", "DelaySpike", "SlowdownWindow",
           "FaultError", "RetryExhausted"]
