"""The simflow effect & rank-taint fixpoint.

Every function gets a *summary*: a set of effect atoms over the lattice

* ``blocks``      -- suspends the simulation (``yield <event>``, or any
                     reachable blocking runtime primitive);
* ``sends``       -- injects network traffic;
* ``coll:<kind>`` -- reaches the named collective;
* ``banned:<p>``  -- reaches a primitive AM handlers must not call;

plus two structural facts — ``gen_like`` (the function is a generator,
or forwards one via ``return g(...)``) and a rank-taint summary (which
params/locals derive from ``proc.rank`` / ``self.rank``, and whether
the return value does).

Atoms join monotonically across *resolved* call edges regardless of
delegation context: a summary answers "what is in reach", the checks
decide whether reaching it is a bug.  Unresolved calls fall back to the
intrinsic runtime-primitive pattern shared with simlint, and an
unresolved ``yield from <expr>`` is conservatively blocking.  Each atom
remembers the call edge (or intrinsic site) that first introduced it,
so a finding can print the full chain down to the primitive.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.analysis.core import Frame
from repro.analysis.flow.graph import (CONTEXT_RETURNED, CallSite,
                                       FunctionInfo, ProgramIndex)
from repro.analysis.rules.spmd import (BLOCKING_PRIMITIVES, COLLECTIVES,
                                       HANDLER_BANNED,
                                       _is_runtime_primitive,
                                       _mentions_rank)

__all__ = ["infer_effects", "intrinsic_atoms", "chain_for",
           "COLLECTIVE_ROOTS"]

#: Primitives that put traffic on the wire (the ``sends`` atom).
_SEND_PRIMITIVES = frozenset({
    "rpc", "send_request", "send_oneway", "bulk_rpc", "bulk_store",
    "bulk_store_blocking", "bulk_oneway", "reply", "reply_bulk",
})

#: Runtime entry points whose collective identity cannot be inferred
#: from their bodies (they dispatch through the algorithm registry):
#: (path suffix, class name or None for module-level functions).
COLLECTIVE_ROOTS = (
    ("gas/collectives.py", None),
    ("coll/api.py", None),
    ("gas/runtime.py", "Proc"),
)

_MAX_CHAIN = 25


def intrinsic_atoms(call: ast.Call) -> Set[str]:
    """Effect atoms of an *unresolved* call, by runtime-name pattern."""
    atoms: Set[str] = set()
    if _is_runtime_primitive(call, BLOCKING_PRIMITIVES):
        atoms.add("blocks")
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr in COLLECTIVES:
            atoms.add(f"coll:{call.func.attr}")
    if _is_runtime_primitive(call, _SEND_PRIMITIVES):
        atoms.add("sends")
    if _is_runtime_primitive(call, HANDLER_BANNED):
        atoms.add(f"banned:{call.func.attr}")
    return atoms


def _is_collective_root(func: FunctionInfo) -> Optional[str]:
    if func.name not in COLLECTIVES or func.enclosing is not None:
        return None
    path = func.source.path.replace("\\", "/")
    for suffix, class_name in COLLECTIVE_ROOTS:
        if path.endswith(suffix) and func.class_name == class_name:
            return func.name
    return None


def _seed(func: FunctionInfo) -> None:
    """Intrinsic atoms from the function's own body."""
    kind = _is_collective_root(func)
    if kind is not None:
        for atom in (f"coll:{kind}", "blocks", "sends"):
            func.effects.add(atom)
            func.witness.setdefault(
                atom, ("intrinsic", func.node, f"collective root {kind}"))
    for call in func.calls:
        if call.resolved:
            continue
        for atom in intrinsic_atoms(call.node):
            func.effects.add(atom)
            name = ".".join(call.chain) if call.chain else "<call>"
            func.witness.setdefault(
                atom, ("intrinsic", call.node, f"{name}(...)"))
    # ``yield from <unresolvable>`` conservatively blocks: whatever is
    # being delegated to suspends on this function's behalf.
    for node in _own_yield_froms(func):
        value = node.value
        if isinstance(value, ast.Call):
            site = _site_for(func, value)
            if site is not None and site.resolved:
                continue
        func.effects.add("blocks")
        func.witness.setdefault(
            "blocks", ("intrinsic", node, "yield from <unresolved>"))
        break


def _own_yield_froms(func: FunctionInfo) -> List[ast.YieldFrom]:
    from repro.analysis.core import walk_scope
    return [n for n in walk_scope(func.node)
            if isinstance(n, ast.YieldFrom)]


def _site_for(func: FunctionInfo,
              node: ast.Call) -> Optional[CallSite]:
    for call in func.calls:
        if call.node is node:
            return call
    return None


def _tainted_expr(func: FunctionInfo, node: ast.AST) -> bool:
    """Whether an expression is rank-derived under current knowledge."""
    if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
        # Values received over the runtime are data, not rank identity
        # (a reduced sum is collectively uniform even when the request
        # that fetched it mentioned a rank).
        return False
    if _mentions_rank(node):
        return True
    tainted = func.tainted_locals | func.tainted_params
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id in tainted:
            return True
        if isinstance(child, ast.Call):
            site = _site_for(func, child)
            if site is not None and any(
                    t.returns_tainted for t in site.targets):
                return True
    return False


def _propagate_taint(func: FunctionInfo) -> bool:
    """One local taint pass; returns True when anything changed."""
    changed = False
    for name, value in func.assigns:
        if name in func.tainted_locals:
            continue
        if isinstance(value, (ast.Yield, ast.YieldFrom, ast.Await)):
            continue
        if _tainted_expr(func, value):
            func.tainted_locals.add(name)
            changed = True
    new_ret = any(_tainted_expr(func, value) for value in func.returns)
    if new_ret and not func.returns_tainted:
        func.returns_tainted = True
        changed = True
    return changed


def _propagate_call_taint(func: FunctionInfo) -> bool:
    """Push tainted arguments into callee parameter summaries."""
    changed = False
    for call in func.calls:
        if not call.targets:
            continue
        args = call.node.args
        keywords = call.node.keywords
        for target in call.targets:
            params = list(target.params)
            # Attribute-style calls bind the receiver to the first
            # parameter of a method; positional args start after it.
            offset = 0
            if call.chain and len(call.chain) >= 2 and \
                    target.class_name is not None and \
                    call.chain[0] != target.class_name and \
                    params and params[0] in ("self", "cls"):
                offset = 1
            for pos, arg in enumerate(args):
                if isinstance(arg, ast.Starred):
                    break
                idx = pos + offset
                if idx >= len(params):
                    break
                if params[idx] not in target.tainted_params and \
                        _tainted_expr(func, arg):
                    target.tainted_params.add(params[idx])
                    changed = True
            for kw in keywords:
                if kw.arg and kw.arg in params and \
                        kw.arg not in target.tainted_params and \
                        _tainted_expr(func, kw.value):
                    target.tainted_params.add(kw.arg)
                    changed = True
    return changed


def infer_effects(index: ProgramIndex) -> None:
    """Run the joint effect / gen-like / taint fixpoint to a fixpoint."""
    for func in index.functions:
        func.gen_like = func.is_generator
        _seed(func)
    changed = True
    passes = 0
    while changed and passes < 100:
        changed = False
        passes += 1
        for func in index.functions:
            # Effect atoms across resolved edges.
            for call in func.calls:
                for target in call.targets:
                    for atom in target.effects:
                        if atom not in func.effects:
                            func.effects.add(atom)
                            func.witness[atom] = ("call", call, target)
                            changed = True
            # Generator forwarding: ``return g(...)`` of a generator.
            if not func.gen_like:
                for call in func.calls:
                    if call.context != CONTEXT_RETURNED:
                        continue
                    if any(t.gen_like for t in call.targets) or \
                            (not call.resolved and
                             _is_runtime_primitive(call.node,
                                                   BLOCKING_PRIMITIVES)):
                        func.gen_like = True
                        changed = True
                        break
            # Taint.
            if _propagate_taint(func):
                changed = True
            if _propagate_call_taint(func):
                changed = True


def chain_for(func: FunctionInfo, atom: str) -> Tuple[Frame, ...]:
    """The recorded witness path from ``func`` down to ``atom``."""
    frames: List[Frame] = []
    current: Optional[FunctionInfo] = func
    while current is not None and len(frames) < _MAX_CHAIN:
        witness = current.witness.get(atom)
        if witness is None:
            break
        if witness[0] == "call":
            site = witness[1]
            frames.append(Frame(current.source.path, site.line,
                                current.display_name))
            current = witness[2]
        else:
            node = witness[1]
            frames.append(Frame(current.source.path,
                                getattr(node, "lineno", current.line),
                                current.display_name))
            break
    return tuple(frames)
