"""The simflow driver: sources in, suppression-filtered findings out.

``analyze_program`` is the whole-program counterpart of
:func:`repro.analysis.core.analyze_source`: it indexes every parsed
module once, runs the effect/taint fixpoint, applies the four checks,
and filters the results through the same ``# simlint: disable=...``
comment machinery — flow rule ids (``flow-*``) work in the same
suppression lists as the per-file rules.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.core import Finding, SourceFile
from repro.analysis.flow.checks import FLOW_RULES, run_checks
from repro.analysis.flow.effects import infer_effects
from repro.analysis.flow.graph import ProgramIndex, build_index

__all__ = ["analyze_program", "build_program", "FLOW_RULES",
           "DEFAULT_FLOW_BASELINE_NAME"]

#: Conventional flow baseline location at the repository root
#: (kept separate from simlint's: the two gates evolve independently).
DEFAULT_FLOW_BASELINE_NAME = "simflow.baseline.json"


def build_program(sources: Dict[str, SourceFile]) -> ProgramIndex:
    """Index + effect fixpoint over every parseable source."""
    ordered = [sources[path] for path in sorted(sources)]
    index = build_index(src for src in ordered if src.tree is not None)
    infer_effects(index)
    return index


def analyze_program(sources: Dict[str, SourceFile]) -> List[Finding]:
    """All unsuppressed flow findings across ``sources``."""
    index = build_program(sources)
    findings: List[Finding] = []
    for finding in run_checks(index):
        source = sources.get(finding.path)
        if source is not None and source.is_suppressed(finding):
            continue
        findings.append(finding)
    return findings
