"""simflow: whole-program effect & SPMD-congruence analysis.

The interprocedural tier of the correctness stack (simlint checks one
function at a time, simsan checks one execution at a time; simflow
checks every path through every call chain, statically).  See
:mod:`repro.analysis.flow.graph` for the call-graph approximations,
:mod:`repro.analysis.flow.effects` for the summary lattice, and
:mod:`repro.analysis.flow.checks` for the four shipped checks.  Run it
with ``python -m repro.analysis --deep``.
"""

from repro.analysis.flow.checks import FLOW_RULES, find_handlers, run_checks
from repro.analysis.flow.driver import (DEFAULT_FLOW_BASELINE_NAME,
                                        analyze_program, build_program)
from repro.analysis.flow.effects import chain_for, infer_effects
from repro.analysis.flow.graph import (CallSite, FunctionInfo,
                                       ProgramIndex, build_index)

__all__ = [
    "FLOW_RULES", "DEFAULT_FLOW_BASELINE_NAME", "analyze_program",
    "build_program", "build_index", "infer_effects", "run_checks",
    "find_handlers", "chain_for", "CallSite", "FunctionInfo",
    "ProgramIndex",
]
