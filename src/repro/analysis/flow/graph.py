"""The simflow program index: functions, classes, and the call graph.

One pass over every parsed module builds :class:`FunctionInfo` records
(module functions, methods, local defs, lambdas) with their call sites
pre-classified by *delegation context* — whether the call's generator
is driven (``yield from g(...)``), forwarded (``return g(...)``),
discarded (a bare expression statement), or merely used as a value.
Call targets are resolved with deliberately simple, documented
approximations:

* bare names -- lexically enclosing local defs, then module functions,
  then ``from``-imports into other analyzed modules;
* ``self.m()`` / ``cls.m()`` -- class-hierarchy approximation: the
  enclosing class, its ancestors by name, and every transitive
  subclass override;
* ``obj.m()`` -- when ``obj`` is a parameter with a (possibly quoted)
  class annotation, or a local assigned from ``ClassName(...)``;
* ``mod.f()`` -- when ``mod`` is an imported analyzed module.

Anything else (call-of-call, registry dispatch, attribute-of-attribute
receivers) stays unresolved; effect inference then falls back to the
same runtime-primitive *pattern* simlint matches, so an unresolved
``proc.am.rpc(...)`` still carries its intrinsic effect.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import SourceFile, dotted_name

__all__ = ["CallSite", "FunctionInfo", "ClassInfo", "ModuleInfo",
           "ProgramIndex", "build_index", "CONTEXT_DELEGATED",
           "CONTEXT_RETURNED", "CONTEXT_DROPPED", "CONTEXT_OTHER"]

#: Delegation contexts of a call site.
CONTEXT_DELEGATED = "delegated"   # yield from g(...) / yield g(...)
CONTEXT_RETURNED = "returned"     # return g(...)  (generator forwarding)
CONTEXT_DROPPED = "dropped"       # g(...) as a bare statement
CONTEXT_OTHER = "other"           # assigned, passed as argument, ...

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class CallSite:
    """One call expression inside one function's own scope."""

    __slots__ = ("node", "chain", "context", "targets", "line", "col")

    def __init__(self, node: ast.Call, chain: Optional[List[str]],
                 context: str) -> None:
        self.node = node
        self.chain = chain            # ["proc", "am", "rpc"] or None
        self.context = context
        self.targets: List["FunctionInfo"] = []   # resolved callees
        self.line = node.lineno
        self.col = node.col_offset + 1

    @property
    def resolved(self) -> bool:
        return bool(self.targets)


class FunctionInfo:
    """One function-like scope (def, method, local def, or lambda)."""

    def __init__(self, node: ast.AST, source: SourceFile,
                 module: "ModuleInfo", name: str, qualname: str,
                 class_name: Optional[str],
                 enclosing: Optional["FunctionInfo"]) -> None:
        self.node = node
        self.source = source
        self.module = module
        self.name = name
        self.qualname = qualname
        self.class_name = class_name
        self.enclosing = enclosing
        self.line = getattr(node, "lineno", 1)
        self.local_defs: Dict[str, FunctionInfo] = {}
        self.calls: List[CallSite] = []
        #: statement-list containers of every ``If`` in own scope:
        #: (if_node, containing stmt list, index within it).
        self.branches: List[Tuple[ast.If, List[ast.stmt], int]] = []
        self.params: List[str] = []
        self.annotations: Dict[str, str] = {}
        self.returns: List[ast.expr] = []          # non-None return values
        self.assigns: List[Tuple[str, ast.expr]] = []  # name = expr
        self.ctor_types: Dict[str, str] = {}       # name = ClassName(...)
        self.is_generator = False
        # -- filled by the effect/taint fixpoint --
        self.effects: Set[str] = set()
        self.witness: Dict[str, tuple] = {}
        self.gen_like = False
        self.tainted_params: Set[str] = set()
        self.tainted_locals: Set[str] = set()
        self.returns_tainted = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FunctionInfo {self.qualname}>"

    @property
    def display_name(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name

    def lookup_local(self, name: str) -> Optional["FunctionInfo"]:
        scope: Optional[FunctionInfo] = self
        while scope is not None:
            target = scope.local_defs.get(name)
            if target is not None:
                return target
            scope = scope.enclosing
        return None

    def lookup_annotation(self, name: str) -> Optional[str]:
        scope: Optional[FunctionInfo] = self
        while scope is not None:
            if name in scope.annotations:
                return scope.annotations[name]
            if name in scope.ctor_types:
                return scope.ctor_types[name]
            if name in scope.params:
                return None   # unannotated parameter shadows outer scopes
            scope = scope.enclosing
        return None

    def is_param(self, name: str) -> bool:
        scope: Optional[FunctionInfo] = self
        while scope is not None:
            if name in scope.params:
                return True
            scope = scope.enclosing
        return False


class ClassInfo:
    """One class definition with its methods and base-name list."""

    def __init__(self, node: ast.ClassDef, module: "ModuleInfo") -> None:
        self.node = node
        self.module = module
        self.name = node.name
        self.bases: List[str] = []
        for base in node.bases:
            base_name = dotted_name(base)
            if base_name:
                self.bases.append(base_name.rsplit(".", 1)[-1])
        self.methods: Dict[str, FunctionInfo] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClassInfo {self.name}>"


class ModuleInfo:
    """One analyzed module: top-level functions, classes, and imports."""

    def __init__(self, source: SourceFile, modname: str) -> None:
        self.source = source
        self.modname = modname
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: alias -> ("module", dotted) | ("symbol", dotted, name)
        self.imports: Dict[str, tuple] = {}


def _module_name(path: str) -> str:
    parts = path.replace("\\", "/").split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if "repro" in parts[:-1]:
        pkg = parts[parts.index("repro"):-1]
        if stem == "__init__":
            return ".".join(pkg)
        return ".".join(pkg + [stem])
    return stem


class ProgramIndex:
    """Every function/class in the analyzed file set, plus resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}       # modname -> info
        self.by_path: Dict[str, ModuleInfo] = {}       # source path -> info
        self.functions: List[FunctionInfo] = []        # every scope
        self.classes: Dict[str, List[ClassInfo]] = {}  # bare name -> defs
        self.subclasses: Dict[str, List[ClassInfo]] = {}

    # -- construction -------------------------------------------------------
    def add_module(self, source: SourceFile) -> None:
        if source.tree is None:
            return
        module = ModuleInfo(source, _module_name(source.path))
        self.modules[module.modname] = module
        self.by_path[source.path] = module
        _scan_imports(source.tree, module)
        for stmt in source.tree.body:
            if isinstance(stmt, _FUNC_NODES):
                module.functions[stmt.name] = self._index_function(
                    stmt, source, module, class_name=None, enclosing=None,
                    prefix=module.modname)
            elif isinstance(stmt, ast.ClassDef):
                info = ClassInfo(stmt, module)
                module.classes[stmt.name] = info
                self.classes.setdefault(stmt.name, []).append(info)
                for sub in stmt.body:
                    if isinstance(sub, _FUNC_NODES):
                        info.methods[sub.name] = self._index_function(
                            sub, source, module, class_name=stmt.name,
                            enclosing=None,
                            prefix=f"{module.modname}.{stmt.name}")

    def finish(self) -> None:
        """Link subclasses and resolve every call site."""
        for infos in self.classes.values():
            for info in infos:
                for base in info.bases:
                    self.subclasses.setdefault(base, []).append(info)
        for func in self.functions:
            for call in func.calls:
                call.targets = self._resolve(func, call)

    def _index_function(self, node, source: SourceFile,
                        module: ModuleInfo, class_name: Optional[str],
                        enclosing: Optional[FunctionInfo],
                        prefix: str) -> FunctionInfo:
        name = getattr(node, "name", "<lambda>")
        qualname = f"{prefix}.{name}" if enclosing is None else \
            f"{enclosing.qualname}.<locals>.{name}"
        func = FunctionInfo(node, source, module, name, qualname,
                            class_name, enclosing)
        self.functions.append(func)
        args = node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            func.params.append(arg.arg)
            note = _annotation_name(arg.annotation)
            if note:
                func.annotations[arg.arg] = note
        if isinstance(node, ast.Lambda):
            _index_body(func, [ast.Expr(value=node.body)], self,
                        synthetic=True)
        else:
            _index_body(func, node.body, self, synthetic=False)
        return func

    # -- resolution ---------------------------------------------------------
    def _resolve(self, func: FunctionInfo,
                 call: CallSite) -> List[FunctionInfo]:
        chain = call.chain
        if not chain:
            return []
        if len(chain) == 1:
            return self._resolve_bare(func, chain[0])
        if len(chain) == 2:
            return self._resolve_attr(func, chain[0], chain[1])
        return []

    def _resolve_bare(self, func: FunctionInfo,
                      name: str) -> List[FunctionInfo]:
        local = func.lookup_local(name)
        if local is not None:
            return [local]
        module = func.module
        target = module.functions.get(name)
        if target is not None:
            return [target]
        if name in module.classes:
            init = module.classes[name].methods.get("__init__")
            return [init] if init else []
        imported = module.imports.get(name)
        if imported and imported[0] == "symbol":
            other = self.modules.get(imported[1])
            if other is not None:
                target = other.functions.get(imported[2])
                if target is not None:
                    return [target]
                if imported[2] in other.classes:
                    init = other.classes[imported[2]].methods.get("__init__")
                    return [init] if init else []
        return []

    def _resolve_attr(self, func: FunctionInfo, base: str,
                      attr: str) -> List[FunctionInfo]:
        module = func.module
        if base in ("self", "cls") and func.class_name:
            cls = module.classes.get(func.class_name)
            if cls is not None:
                return self._lookup_method(cls, attr)
            return []
        # Parameter with a class annotation, or local built in-scope.
        note = func.lookup_annotation(base)
        if note:
            cls = self._find_class(module, note)
            if cls is not None:
                return self._lookup_method(cls, attr)
        # Imported analyzed module: mod.f(...).
        imported = module.imports.get(base)
        if imported:
            if imported[0] == "module":
                other = self.modules.get(imported[1])
            else:
                other = self.modules.get(f"{imported[1]}.{imported[2]}")
            if other is not None:
                target = other.functions.get(attr)
                if target is not None:
                    return [target]
        # Unbound ClassName.method(...).
        cls = module.classes.get(base)
        if cls is not None:
            return self._lookup_method(cls, attr)
        return []

    def _find_class(self, module: ModuleInfo,
                    name: str) -> Optional[ClassInfo]:
        bare = name.rsplit(".", 1)[-1]
        if bare in module.classes:
            return module.classes[bare]
        candidates = self.classes.get(bare)
        return candidates[0] if candidates else None

    def _lookup_method(self, cls: ClassInfo,
                       attr: str) -> List[FunctionInfo]:
        found: List[FunctionInfo] = []
        seen: Set[int] = set()
        # The class and its ancestors (first definition wins per branch).
        stack = [cls]
        while stack:
            info = stack.pop()
            if id(info) in seen:
                continue
            seen.add(id(info))
            method = info.methods.get(attr)
            if method is not None:
                found.append(method)
            else:
                for base in info.bases:
                    stack.extend(self.classes.get(base, []))
        # Every transitive subclass override (CHA).
        stack = list(self.subclasses.get(cls.name, []))
        while stack:
            info = stack.pop()
            if id(info) in seen:
                continue
            seen.add(id(info))
            method = info.methods.get(attr)
            if method is not None:
                found.append(method)
            stack.extend(self.subclasses.get(info.name, []))
        return found


def _annotation_name(node: Optional[ast.expr]) -> Optional[str]:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip("'\" ") or None
    name = dotted_name(node)
    return name


def _scan_imports(tree: ast.Module, module: ModuleInfo) -> None:
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                name = alias.asname or alias.name.split(".")[0]
                module.imports[name] = ("module", alias.name)
        elif isinstance(stmt, ast.ImportFrom) and stmt.module and \
                stmt.level == 0:
            for alias in stmt.names:
                name = alias.asname or alias.name
                module.imports[name] = ("symbol", stmt.module, alias.name)


def _index_body(func: FunctionInfo, body: Sequence[ast.stmt],
                index: ProgramIndex, synthetic: bool) -> None:
    """Walk one function's own scope, classifying calls and branches."""
    # Parent links within this scope only; nested defs become their own
    # FunctionInfo and are not descended into here.
    delegated: Set[int] = set()
    returned: Set[int] = set()
    dropped: Set[int] = set()

    def walk_stmts(stmts: Sequence[ast.stmt]) -> None:
        stmt_list = list(stmts)
        for pos, stmt in enumerate(stmt_list):
            if isinstance(stmt, _FUNC_NODES):
                func.local_defs[stmt.name] = index._index_function(
                    stmt, func.source, func.module,
                    class_name=func.class_name, enclosing=func,
                    prefix=func.qualname)
                continue
            if isinstance(stmt, ast.ClassDef):
                continue   # local classes: out of scope
            if isinstance(stmt, ast.If):
                func.branches.append((stmt, stmt_list, pos))
                walk_exprs(stmt.test)
                walk_stmts(stmt.body)
                walk_stmts(stmt.orelse)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                walk_exprs(stmt.iter)
                walk_stmts(stmt.body)
                walk_stmts(stmt.orelse)
                continue
            if isinstance(stmt, ast.While):
                walk_exprs(stmt.test)
                walk_stmts(stmt.body)
                walk_stmts(stmt.orelse)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    walk_exprs(item.context_expr)
                walk_stmts(stmt.body)
                continue
            if isinstance(stmt, ast.Try):
                walk_stmts(stmt.body)
                for handler in stmt.handlers:
                    walk_stmts(handler.body)
                walk_stmts(stmt.orelse)
                walk_stmts(stmt.finalbody)
                continue
            if isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    func.returns.append(stmt.value)
                    if isinstance(stmt.value, ast.Call):
                        returned.add(id(stmt.value))
                    walk_exprs(stmt.value)
                continue
            if isinstance(stmt, ast.Expr):
                value = stmt.value
                if isinstance(value, ast.Call):
                    # A lambda body is an implicit return, not a drop.
                    (returned if synthetic else dropped).add(id(value))
                walk_exprs(value)
                continue
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                record_assign(stmt)
                walk_exprs(stmt)
                continue
            walk_exprs(stmt)

    def record_assign(stmt: ast.stmt) -> None:
        value = getattr(stmt, "value", None)
        if value is None:
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            func.assigns.append((target.id, value))
            if isinstance(value, ast.Call):
                ctor = dotted_name(value.func)
                if ctor and "." not in ctor and \
                        (ctor in func.module.classes
                         or ctor in index.classes):
                    func.ctor_types[target.id] = ctor
                imported = func.module.imports.get(ctor or "")
                if imported and imported[0] == "symbol":
                    func.ctor_types.setdefault(target.id, imported[2])
            if isinstance(value, ast.Lambda):
                lam = index._index_function(
                    value, func.source, func.module,
                    class_name=func.class_name, enclosing=func,
                    prefix=func.qualname)
                func.local_defs[target.id] = lam

    def walk_exprs(node: ast.AST) -> None:
        stack: List[ast.AST] = [node]
        while stack:
            child = stack.pop()
            if isinstance(child, (ast.Lambda,) + _FUNC_NODES):
                continue   # separate scope (lambdas named via assigns)
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                if not synthetic:
                    func.is_generator = True
                if isinstance(child.value, ast.Call):
                    delegated.add(id(child.value))
                if isinstance(child, ast.Yield) and \
                        child.value is not None:
                    # ``yield <event>`` suspends the process: an
                    # intrinsic blocking effect of this function.
                    func.effects.add("blocks")
                    func.witness.setdefault(
                        "blocks", ("intrinsic", child, "yield <event>"))
            if isinstance(child, ast.Await) and \
                    isinstance(child.value, ast.Call):
                delegated.add(id(child.value))
            if isinstance(child, ast.Call):
                if id(child) in delegated:
                    context = CONTEXT_DELEGATED
                elif id(child) in returned:
                    context = CONTEXT_RETURNED
                elif id(child) in dropped:
                    context = CONTEXT_DROPPED
                else:
                    context = CONTEXT_OTHER
                name = dotted_name(child.func)
                chain = name.split(".") if name else None
                func.calls.append(CallSite(child, chain, context))
            stack.extend(ast.iter_child_nodes(child))

    walk_stmts(body)


def build_index(sources: Iterable[SourceFile]) -> ProgramIndex:
    """Index every parseable source and resolve the call graph."""
    index = ProgramIndex()
    for source in sources:
        index.add_module(source)
    index.finish()
    return index
