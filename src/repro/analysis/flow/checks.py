"""The four simflow checks.

Each check consumes the fixpoint summaries from
:mod:`repro.analysis.flow.effects` and reports only what the
intra-procedural simlint rules *cannot* see: a defect becomes a flow
finding when the offending effect sits behind at least one resolved
call edge (or when the rank taint that guards it flowed in through a
parameter).  Sites the simlint pack already flags directly are skipped,
so ``--deep`` never double-reports.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, Frame
from repro.analysis.flow.effects import chain_for, intrinsic_atoms
from repro.analysis.flow.graph import (CONTEXT_DROPPED, CallSite,
                                       FunctionInfo, ProgramIndex)
from repro.analysis.rules.spmd import (BLOCKING_PRIMITIVES, COLLECTIVES,
                                       _CONTRACT_FUNCTIONS,
                                       _is_runtime_primitive,
                                       _mentions_rank)

__all__ = ["FLOW_RULES", "run_checks", "find_handlers"]

#: rule id -> (severity, one-line description) for the CLI catalogue.
FLOW_RULES = {
    "flow-transitive-blocking": (
        "error",
        "a generator discards a call whose callee blocks further down "
        "the call chain"),
    "flow-handler-purity": (
        "error",
        "an Active Message handler reaches a banned primitive through "
        "helper calls"),
    "flow-rank-collective": (
        "error",
        "a collective is reachable only under a rank-dependent branch, "
        "through any call depth"),
    "flow-yield-integrity": (
        "error",
        "a non-generator function discards a blocking call it cannot "
        "drive"),
}


def _finding(func: FunctionInfo, node: ast.AST, rule: str, message: str,
             chain: Tuple[Frame, ...]) -> Finding:
    return Finding(
        path=func.source.path,
        line=getattr(node, "lineno", func.line),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        severity=FLOW_RULES[rule][0],
        message=message,
        end_line=getattr(node, "end_lineno", None)
        or getattr(node, "lineno", func.line),
        chain=chain,
    )


def _call_display(call: CallSite) -> str:
    return ".".join(call.chain) if call.chain else "<call>"


# -- handler discovery ------------------------------------------------------

def find_handlers(index: ProgramIndex) -> Set[FunctionInfo]:
    """Every function registered as an Active Message handler."""
    handlers: Set[FunctionInfo] = set()
    for func in index.functions:
        for call in func.calls:
            if not call.chain or call.chain[-1] != "register" or \
                    len(call.node.args) < 2:
                continue
            target = call.node.args[1]
            if isinstance(target, ast.Name):
                handlers.update(index._resolve_bare(func, target.id))
            elif isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name):
                handlers.update(index._resolve_attr(
                    func, target.value.id, target.attr))
    return handlers


# -- check 1: transitive unyielded blocking ---------------------------------

def _check_transitive_blocking(
        index: ProgramIndex,
        handlers: Set[FunctionInfo]) -> Iterator[Finding]:
    for func in index.functions:
        if not (func.gen_like or func.name in _CONTRACT_FUNCTIONS
                or func in handlers):
            continue
        for call in func.calls:
            if call.context != CONTEXT_DROPPED:
                continue
            if _is_runtime_primitive(call.node, BLOCKING_PRIMITIVES):
                continue   # direct primitive: simlint's finding
            guilty = [t for t in call.targets
                      if t.gen_like and "blocks" in t.effects]
            if not guilty:
                continue
            target = guilty[0]
            chain = (Frame(func.source.path, call.line,
                           func.display_name),) + chain_for(target, "blocks")
            yield _finding(
                func, call.node, "flow-transitive-blocking",
                f"{_call_display(call)}(...) returns a blocking "
                f"generator ({target.display_name} blocks "
                f"{_depth_word(chain)}) but the result is discarded; "
                "its simulated time is silently skipped",
                chain)


def _depth_word(chain: Tuple[Frame, ...]) -> str:
    edges = max(len(chain) - 1, 1)
    return f"{edges} call edge{'s' if edges != 1 else ''} down"


# -- check 2: transitive handler purity -------------------------------------

def _check_handler_purity(
        index: ProgramIndex,
        handlers: Set[FunctionInfo]) -> Iterator[Finding]:
    for handler in sorted(handlers, key=lambda f: (f.source.path, f.line)):
        for atom in sorted(handler.effects):
            if not atom.startswith("banned:"):
                continue
            witness = handler.witness.get(atom)
            if witness is None or witness[0] != "call":
                continue   # direct in the handler body: simlint's
            primitive = atom.split(":", 1)[1]
            site = witness[1]
            chain = chain_for(handler, atom)
            yield _finding(
                handler, site.node, "flow-handler-purity",
                f"handler {handler.display_name} reaches "
                f"{primitive}(...) through "
                f"{_call_display(site)}(...); handlers run at "
                "interrupt level and may only compute and reply",
                chain)


# -- check 3: interprocedural SPMD congruence -------------------------------

def _collective_kinds(func: FunctionInfo, stmts: List[ast.stmt]
                      ) -> Dict[str, Tuple[CallSite,
                                           Optional[FunctionInfo], bool]]:
    """kind -> (witness site, callee or None, textually-direct?) for
    every collective reachable from ``stmts``."""
    ids: Set[int] = set()
    for stmt in stmts:
        ids.update(id(node) for node in ast.walk(stmt))
    kinds: Dict[str, Tuple[CallSite, Optional[FunctionInfo], bool]] = {}
    for call in func.calls:
        if id(call.node) not in ids:
            continue
        # Textually direct collectives — what simlint's balance logic
        # sees: any bare or attribute call named like a collective.
        direct = None
        if call.chain and call.chain[-1] in COLLECTIVES:
            direct = call.chain[-1]
            kinds.setdefault(direct, (call, None, True))
        for target in call.targets:
            for atom in sorted(target.effects):
                if atom.startswith("coll:"):
                    kind = atom.split(":", 1)[1]
                    if kind != direct:
                        kinds.setdefault(kind, (call, target, False))
        if not call.targets:
            for atom in sorted(intrinsic_atoms(call.node)):
                if atom.startswith("coll:"):
                    kinds.setdefault(atom.split(":", 1)[1],
                                     (call, None, True))
    return kinds


def _terminates(stmts: List[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


def _test_tainted(func: FunctionInfo, test: ast.expr) -> Tuple[bool, bool]:
    """(tainted?, visible-to-simlint?) for a branch condition."""
    if _mentions_rank(test):
        return True, True
    tainted = func.tainted_locals | func.tainted_params
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id in tainted:
            return True, False
    return False, False


def _check_rank_collective(index: ProgramIndex) -> Iterator[Finding]:
    for func in index.functions:
        for if_node, block, pos in func.branches:
            tainted, syntactic = _test_tainted(func, if_node.test)
            if not tainted:
                continue
            eff_body = _collective_kinds(func, if_node.body)
            eff_else = _collective_kinds(func, if_node.orelse)
            # A side that exits early (``if rank...: return``) makes the
            # rest of the block part of the *other* side's path.  A
            # direct collective there is invisible to simlint's
            # branch-local balance check, so it never counts as direct.
            body_term = _terminates(if_node.body)
            else_term = bool(if_node.orelse) and _terminates(if_node.orelse)
            if body_term != else_term:
                continuation = _collective_kinds(func, block[pos + 1:])
                grown = eff_else if body_term else eff_body
                for kind, (site, target, _direct) in continuation.items():
                    grown.setdefault(kind, (site, target, False))
            for kinds, other in ((eff_body, eff_else),
                                 (eff_else, eff_body)):
                for kind, (site, target, direct) in sorted(kinds.items()):
                    if kind in other:
                        continue   # balanced: both paths reach it
                    if direct and syntactic:
                        continue   # simlint's rank-dependent-collective
                    chain = (Frame(func.source.path, site.line,
                                   func.display_name),)
                    if target is not None:
                        chain += chain_for(target, f"coll:{kind}")
                    guard = ("rank-dependent guard"
                             if syntactic else
                             "guard on a rank-tainted value")
                    yield _finding(
                        func, site.node, "flow-rank-collective",
                        f"{kind}() is reachable by only some ranks "
                        f"because of a {guard} at line "
                        f"{if_node.lineno}; ranks on the other path "
                        "never join, risking livelock",
                        chain)


# -- check 4: yield-chain integrity -----------------------------------------

def _check_yield_integrity(
        index: ProgramIndex,
        handlers: Set[FunctionInfo]) -> Iterator[Finding]:
    for func in index.functions:
        if func.gen_like or func.name in _CONTRACT_FUNCTIONS or \
                func in handlers:
            continue
        for call in func.calls:
            if call.context != CONTEXT_DROPPED:
                continue
            if not call.resolved and \
                    _is_runtime_primitive(call.node, BLOCKING_PRIMITIVES):
                chain = (Frame(func.source.path, call.line,
                               func.display_name),)
                yield _finding(
                    func, call.node, "flow-yield-integrity",
                    f"{_call_display(call)}(...) is a blocking "
                    f"primitive but {func.display_name} is not a "
                    "generator and cannot drive it; its simulated time "
                    "is silently skipped",
                    chain)
                continue
            guilty = [t for t in call.targets
                      if t.gen_like and "blocks" in t.effects]
            if not guilty:
                continue
            target = guilty[0]
            chain = (Frame(func.source.path, call.line,
                           func.display_name),) + chain_for(target, "blocks")
            yield _finding(
                func, call.node, "flow-yield-integrity",
                f"{_call_display(call)}(...) returns a blocking "
                f"generator but {func.display_name} is not a generator "
                "and cannot drive it; make it a generator and 'yield "
                "from' the call",
                chain)


def run_checks(index: ProgramIndex) -> List[Finding]:
    """All flow findings over an indexed, effect-annotated program."""
    handlers = find_handlers(index)
    findings: List[Finding] = []
    findings.extend(_check_transitive_blocking(index, handlers))
    findings.extend(_check_handler_purity(index, handlers))
    findings.extend(_check_rank_collective(index))
    findings.extend(_check_yield_integrity(index, handlers))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return findings
