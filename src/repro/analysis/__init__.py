"""simlint: static determinism & SPMD-correctness analysis.

The reproduction's methodology rests on two mechanical invariants —
every run is a pure, bit-deterministic function of its configuration,
and every SPMD program drives the runtime's blocking primitives through
``yield from`` — and this package enforces both with an AST-based
linter.  See :mod:`repro.analysis.core` for the engine,
:mod:`repro.analysis.rules` for the shipped packs, and
``python -m repro.analysis --list-rules`` for the catalogue.
"""

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.cli import main
from repro.analysis.core import (Finding, Frame, Rule, SourceFile,
                                 all_rules, analyze_file, analyze_paths,
                                 analyze_source, default_rules,
                                 load_source, register_rule)
from repro.analysis.flow import (DEFAULT_FLOW_BASELINE_NAME, FLOW_RULES,
                                 analyze_program, build_program)

__all__ = [
    "Finding", "Frame", "Rule", "SourceFile", "Baseline",
    "DEFAULT_BASELINE_NAME", "DEFAULT_FLOW_BASELINE_NAME", "FLOW_RULES",
    "all_rules", "default_rules", "register_rule", "analyze_file",
    "analyze_paths", "analyze_program", "analyze_source",
    "build_program", "load_source", "main",
]
