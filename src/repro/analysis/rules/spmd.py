"""SPMD / generator-contract rules.

Applications run as cooperative generators: every blocking runtime
primitive (``proc.compute``, ``proc.am.rpc``, ``proc.barrier``, ...)
returns a generator that only advances simulated time when it is driven
with ``yield from``.  Calling one *without* yielding silently discards
the generator — the program computes the right answer while skipping
the time, corrupting every measurement built on it.  Collectives add a
second contract: all ranks must reach the same collective calls in the
same order, so a collective inside a rank-dependent branch is a
potential livelock.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.core import (Finding, Rule, SourceFile, dotted_name,
                                 register_rule, walk_scope)

__all__ = ["UnyieldedBlockingCallRule", "RankDependentCollectiveRule",
           "HandlerArityRule", "HandlerPurityRule"]

#: Runtime primitives that must be driven with ``yield from`` (or, for
#: raw simulator events, ``yield``).
BLOCKING_PRIMITIVES = frozenset({
    "compute", "poll", "timeout", "barrier", "broadcast", "reduce",
    "allreduce", "gather", "scatter", "allgather", "alltoall",
    "read", "write", "sync", "bulk_get", "bulk_put",
    "lock", "unlock", "rpc", "send_request", "bulk_rpc", "bulk_store",
    "bulk_oneway", "drain", "wait_until", "reply", "reply_bulk",
})

#: Receiver spellings that identify the simulation runtime (``proc.*``,
#: ``am.*``, ``self.am.*``, ``self.sim.*`` ...), so that unrelated
#: objects with a ``write``/``read`` method are not flagged.
_RUNTIME_BASES = frozenset({"proc", "am", "self"})
_RUNTIME_SEGMENTS = frozenset({"am", "sim"})

#: Collective operations every rank must reach identically (the
#: ``repro.coll`` entry points mirrored as ``Proc`` methods).
COLLECTIVES = frozenset({"barrier", "broadcast", "reduce", "allreduce",
                         "gather", "scatter", "allgather", "alltoall"})

#: Entry points of the application contract; checked even when the
#: author forgot every ``yield`` (the degenerate form of the bug).
_CONTRACT_FUNCTIONS = frozenset({"run_rank", "setup_rank"})


def _receiver_chain(call: ast.Call) -> Optional[List[str]]:
    name = dotted_name(call.func)
    return name.split(".") if name else None


def _is_runtime_primitive(call: ast.Call, primitives: frozenset) -> bool:
    """Whether ``call`` invokes one of ``primitives`` on the runtime."""
    chain = _receiver_chain(call)
    if chain is None or len(chain) < 2:
        return False
    if chain[-1] not in primitives:
        return False
    return chain[0] in _RUNTIME_BASES or \
        bool(_RUNTIME_SEGMENTS & set(chain[1:-1]))


def _is_runtime_call(call: ast.Call) -> bool:
    return _is_runtime_primitive(call, BLOCKING_PRIMITIVES)


@register_rule
class UnyieldedBlockingCallRule(Rule):
    """A blocking primitive whose generator is never driven skips time."""

    rule_id = "unyielded-blocking-call"
    description = ("blocking runtime primitive called without yield "
                   "from inside a generator/SPMD entry point")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for func in ast.walk(source.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            nodes = list(walk_scope(func))
            is_generator = any(
                isinstance(n, (ast.Yield, ast.YieldFrom)) for n in nodes)
            if not is_generator and \
                    func.name not in _CONTRACT_FUNCTIONS:
                continue
            yielded = set()
            for node in nodes:
                if isinstance(node, (ast.Yield, ast.YieldFrom)) and \
                        isinstance(node.value, ast.Call):
                    yielded.add(id(node.value))
            for node in nodes:
                if isinstance(node, ast.Call) and \
                        id(node) not in yielded and \
                        _is_runtime_call(node):
                    name = dotted_name(node.func)
                    yield self.finding(
                        source, node,
                        f"{name}(...) is a blocking primitive but is "
                        "not driven with 'yield from'; its simulated "
                        "time is silently skipped")


def _mentions_rank(node: ast.AST) -> bool:
    """Whether an expression depends on the calling rank's identity."""
    for child in ast.walk(node):
        ident = None
        if isinstance(child, ast.Name):
            ident = child.id
        elif isinstance(child, ast.Attribute):
            ident = child.attr
        if ident is None:
            continue
        if ident == "rank" or (ident.endswith("rank")
                               and not ident.endswith("n_rank")):
            return True
    return False


def _collective_calls(stmts: List[ast.stmt]) -> Dict[str, List[ast.Call]]:
    calls: Dict[str, List[ast.Call]] = {}
    for stmt in stmts:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            name = None
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in COLLECTIVES:
                name = node.func.attr
            elif isinstance(node.func, ast.Name) and \
                    node.func.id in COLLECTIVES:
                name = node.func.id
            if name is not None:
                calls.setdefault(name, []).append(node)
    return calls


@register_rule
class RankDependentCollectiveRule(Rule):
    """A collective only some ranks reach deadlocks the others."""

    rule_id = "rank-dependent-collective"
    description = ("collective call inside a rank-dependent branch; "
                   "ranks taking the other branch never arrive")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.If) or \
                    not _mentions_rank(node.test):
                continue
            body = _collective_calls(node.body)
            orelse = _collective_calls(node.orelse)
            for name, calls in body.items():
                if name in orelse:
                    continue  # balanced: both branches reach it
                for call in calls:
                    yield self.finding(
                        source, call,
                        f"{name}() inside a rank-dependent branch: "
                        "ranks on the other path never join, risking "
                        "livelock")
            for name, calls in orelse.items():
                if name in body:
                    continue
                for call in calls:
                    yield self.finding(
                        source, call,
                        f"{name}() inside a rank-dependent else-branch: "
                        "ranks on the other path never join, risking "
                        "livelock")


#: Active Message handlers receive exactly ``(am, packet)``.
_HANDLER_ARITY = 2


@register_rule
class HandlerArityRule(Rule):
    """``register(name, handler)`` with a handler of the wrong shape."""

    rule_id = "handler-arity"
    description = ("registered Active Message handler does not take "
                   "exactly (am, packet)")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        functions: Dict[str, ast.FunctionDef] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, node)
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "register"
                    and len(node.args) >= 2):
                continue
            handler = node.args[1]
            arity = None
            if isinstance(handler, ast.Lambda):
                args = handler.args
                if args.vararg is None:
                    arity = len(args.posonlyargs) + len(args.args)
            elif isinstance(handler, ast.Name) and \
                    handler.id in functions:
                args = functions[handler.id].args
                if args.vararg is None:
                    arity = len(args.posonlyargs) + len(args.args)
            if arity is not None and arity != _HANDLER_ARITY:
                yield self.finding(
                    source, node,
                    f"handler takes {arity} positional argument(s); "
                    "Active Message handlers are called as "
                    "handler(am, packet)")


#: Primitives an Active Message handler must never call.  Handlers run
#: at interrupt level in the GAM model: they may compute, read host
#: state, and answer via ``reply``/``reply_bulk`` — but blocking on the
#: network (or recursing into it with fresh requests) from handler
#: context wedges or reenters the layer.  ``reply``, ``reply_bulk``,
#: ``compute`` and ``timeout`` stay allowed.
HANDLER_BANNED = frozenset({
    "lock", "unlock", "barrier", "broadcast", "reduce", "allreduce",
    "gather", "scatter", "allgather", "alltoall",
    "rpc", "send_request", "send_oneway", "bulk_rpc", "bulk_store",
    "bulk_store_blocking", "bulk_oneway", "bulk_get", "bulk_put",
    "read", "write", "sync", "drain", "wait_until", "poll",
})


@register_rule
class HandlerPurityRule(Rule):
    """A registered AM handler calling a blocking/yielding primitive."""

    rule_id = "handler-purity"
    description = ("Active Message handler calls a blocking primitive; "
                   "handlers run at interrupt level and may only "
                   "compute and reply")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        functions: Dict[str, ast.FunctionDef] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, node)
        handlers: List[ast.AST] = []
        seen: Set[int] = set()
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "register"
                    and len(node.args) >= 2):
                continue
            target = node.args[1]
            if isinstance(target, ast.Lambda):
                body = target
            elif isinstance(target, ast.Name) and target.id in functions:
                body = functions[target.id]
            else:
                continue
            if id(body) not in seen:
                seen.add(id(body))
                handlers.append(body)
        for handler in handlers:
            nodes = ast.walk(handler.body) \
                if isinstance(handler, ast.Lambda) else walk_scope(handler)
            for node in nodes:
                if isinstance(node, ast.Call) and \
                        _is_runtime_primitive(node, HANDLER_BANNED):
                    name = dotted_name(node.func)
                    yield self.finding(
                        source, node,
                        f"{name}(...) called from an Active Message "
                        "handler; handlers run at interrupt level and "
                        "may only compute and reply")
