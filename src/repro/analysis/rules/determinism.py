"""Determinism rules: bit-identical reruns are the methodology.

The run cache (PR 1) and the serial-vs-parallel identity guarantee both
assume a run is a pure function of its configuration.  These rules flag
the ways that assumption silently breaks: wall-clock reads, ambient
environment reads, RNGs that ignore the run seed, and iteration over
sets (whose order is a function of hash seeding and insertion history,
not of the configuration).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.core import (Finding, Rule, SourceFile, dotted_name,
                                 register_rule, walk_scope)

__all__ = ["WallClockRule", "EnvReadRule", "UnseededRngRule",
           "SeedIndependentRngRule", "SetIterationRule"]

#: Exact dotted calls that read a real clock.
_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock",
}

#: Dotted-call suffixes that read a real calendar clock.
_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "datetime.today",
                   "date.today")


@register_rule
class WallClockRule(Rule):
    """Wall-clock reads inside the simulation make reruns diverge."""

    rule_id = "wall-clock"
    description = ("real-time clock call; simulated code must take time "
                   "from the simulator, not the host")
    #: The harness may report real elapsed time around a run.
    exempt_path_parts = ("harness",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _CLOCK_CALLS or name.endswith(_CLOCK_SUFFIXES):
                yield self.finding(
                    source, node,
                    f"call to {name}() reads the host clock; use "
                    "sim.now / simulated time instead")


@register_rule
class EnvReadRule(Rule):
    """Environment reads smuggle host state into run outcomes."""

    rule_id = "env-read"
    description = ("os.environ / os.getenv read; configuration must "
                   "arrive through explicit run parameters")
    #: The harness owns process-level configuration (cache dir etc.).
    exempt_path_parts = ("harness",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            name = dotted_name(node) if isinstance(node, ast.Attribute) \
                else None
            if name == "os.environ":
                yield self.finding(
                    source, node,
                    "os.environ read outside the harness; pass the value "
                    "as an explicit parameter")
            elif isinstance(node, ast.Call) and \
                    dotted_name(node.func) == "os.getenv":
                yield self.finding(
                    source, node,
                    "os.getenv() outside the harness; pass the value as "
                    "an explicit parameter")


#: Constructors whose argument must mix in the run seed.
_RNG_CTORS = {"Random", "RandomState", "default_rng", "SeedSequence"}

#: Module-level sampling functions backed by a shared global RNG.
_GLOBAL_SAMPLERS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normal", "standard_normal", "rand",
    "randn", "permutation", "bytes", "getrandbits", "seed",
}

_RNG_MODULES = ("random", "np.random", "numpy.random")


def _references_seed(call: ast.Call) -> bool:
    """Whether any constructor argument mentions a seed-ish identifier."""
    values = list(call.args) + [kw.value for kw in call.keywords]
    for value in values:
        for node in ast.walk(value):
            ident = None
            if isinstance(node, ast.Name):
                ident = node.id
            elif isinstance(node, ast.Attribute):
                ident = node.attr
            if ident is not None and "seed" in ident.lower():
                return True
    return False


def _rng_constructor(call: ast.Call) -> Optional[str]:
    """The dotted name of an RNG constructor call, else None."""
    name = dotted_name(call.func)
    if name is None:
        return None
    last = name.rsplit(".", 1)[-1]
    return name if last in _RNG_CTORS else None


@register_rule
class UnseededRngRule(Rule):
    """Unseeded RNGs (and the global RNG) are host-entropy sources."""

    rule_id = "unseeded-rng"
    description = ("RNG constructed without a seed, or module-level "
                   "global-RNG sampling call")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            ctor = _rng_constructor(node)
            if ctor is not None and not node.args and not node.keywords:
                yield self.finding(
                    source, node,
                    f"{ctor}() constructed without a seed; derive the "
                    "seed from the run seed")
                continue
            name = dotted_name(node.func)
            if name is None or "." not in name:
                continue
            module, func = name.rsplit(".", 1)
            if module in _RNG_MODULES and func in _GLOBAL_SAMPLERS:
                yield self.finding(
                    source, node,
                    f"{name}() samples the shared global RNG; construct "
                    "a per-run instance seeded from the run seed")


@register_rule
class SeedIndependentRngRule(Rule):
    """An RNG seeded without the run seed repeats across ``--seed``.

    The canonical bug: ``RandomState(rank + 17)`` gives every seed the
    same per-rank streams, so sweeps that believe they vary the input
    actually rerun one input.
    """

    rule_id = "seed-independent-rng"
    description = ("RNG seeded by an expression that never mentions the "
                   "run seed")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            ctor = _rng_constructor(node)
            if ctor is None or (not node.args and not node.keywords):
                continue
            if not _references_seed(node):
                yield self.finding(
                    source, node,
                    f"{ctor}(...) seed expression never references the "
                    "run seed; different --seed values will replay "
                    "identical streams")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.IfExp):
        return _is_set_expr(node.body) and _is_set_expr(node.orelse)
    return False


def _set_typed_names(scope: ast.AST) -> Set[str]:
    """Local names every one of whose assignments is a set expression."""
    assigned: Dict[str, bool] = {}
    for node in walk_scope(scope):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name):
                is_set = _is_set_expr(value)
                assigned[target.id] = assigned.get(target.id, True) \
                    and is_set
    return {name for name, is_set in assigned.items() if is_set}


@register_rule
class SetIterationRule(Rule):
    """Set iteration order is not part of the run configuration."""

    rule_id = "set-iteration"
    description = ("iteration over a set; order depends on hashing, "
                   "wrap in sorted() for a deterministic walk")

    def _flag(self, source: SourceFile, iter_node: ast.expr,
              set_names: Set[str]) -> Iterator[Finding]:
        if _is_set_expr(iter_node) or (
                isinstance(iter_node, ast.Name)
                and iter_node.id in set_names):
            yield self.finding(
                source, iter_node,
                "iterating over a set has hash-dependent order; "
                "use sorted(...) to make the walk deterministic")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        scopes: List[ast.AST] = [source.tree]
        scopes.extend(node for node in ast.walk(source.tree)
                      if isinstance(node,
                                    (ast.FunctionDef,
                                     ast.AsyncFunctionDef)))
        for scope in scopes:
            set_names = _set_typed_names(scope)
            for node in walk_scope(scope):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    yield from self._flag(source, node.iter, set_names)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    for gen in node.generators:
                        yield from self._flag(source, gen.iter, set_names)
