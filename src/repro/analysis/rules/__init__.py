"""The shipped rule packs; importing this module registers them all."""

from repro.analysis.rules import determinism, hygiene, spmd  # noqa: F401

__all__ = ["determinism", "spmd", "hygiene"]
