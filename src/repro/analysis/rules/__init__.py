"""The shipped rule packs; importing this module registers them all."""

from repro.analysis.rules import (determinism, dialcost,  # noqa: F401
                                  hygiene, spmd)

__all__ = ["determinism", "dialcost", "spmd", "hygiene"]
