"""Hygiene rules: failure modes that erode reproducibility slowly.

Broad exception handlers swallow the very assertion errors the suite
uses to detect wrong answers; mutable default arguments and module-level
mutable state leak one run's data into the next, breaking the
run-as-pure-function contract the cache depends on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (Finding, Rule, SourceFile, register_rule,
                                 walk_scope)

__all__ = ["BroadExceptRule", "MutableDefaultArgRule",
           "ModuleMutableStateRule"]

_BROAD_EXCEPTIONS = ("Exception", "BaseException")


def _names_broad_exception(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _BROAD_EXCEPTIONS
    if isinstance(node, ast.Attribute):
        return node.attr in _BROAD_EXCEPTIONS
    if isinstance(node, ast.Tuple):
        return any(_names_broad_exception(el) for el in node.elts)
    return False


@register_rule
class BroadExceptRule(Rule):
    """Bare/broad handlers swallow wrong-answer assertions."""

    rule_id = "broad-except"
    description = ("bare or Exception/BaseException handler that does "
                   "not re-raise")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is not None and \
                    not _names_broad_exception(node.type):
                continue
            # A handler that re-raises is cleanup, not swallowing.
            reraises = any(isinstance(child, ast.Raise)
                           for stmt in node.body
                           for child in ast.walk(stmt))
            if reraises:
                continue
            caught = "bare except" if node.type is None else \
                f"except {ast.unparse(node.type)}"
            yield self.finding(
                source, node,
                f"{caught} swallows correctness failures; catch the "
                "specific exceptions or re-raise")


_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque",
                  "Counter", "OrderedDict"}


def _is_mutable_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS)


@register_rule
class MutableDefaultArgRule(Rule):
    """Mutable defaults persist across calls (and across runs)."""

    rule_id = "mutable-default-arg"
    severity = "warning"
    description = "mutable default argument shared across calls"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for func in ast.walk(source.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_expr(default):
                    yield self.finding(
                        source, default,
                        "mutable default argument is shared across "
                        "calls; default to None and allocate inside")


@register_rule
class ModuleMutableStateRule(Rule):
    """Module-level mutable containers leak state between runs.

    Scoped to ``apps/``: applications are re-run back to back inside
    sweeps, so any module-level container is cross-run shared state.
    """

    rule_id = "module-mutable-state"
    severity = "warning"
    description = "module-level mutable container in apps/"

    def applies_to(self, source: SourceFile) -> bool:
        return "apps" in source.path.replace("\\", "/").split("/")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in walk_scope(source.tree):
            targets = []
            value = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and \
                    node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_mutable_expr(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and \
                        not target.id.startswith("__"):
                    yield self.finding(
                        source, node,
                        f"module-level mutable {target.id!r} is shared "
                        "across runs; use a tuple/frozen value or move "
                        "it into per-run state")
