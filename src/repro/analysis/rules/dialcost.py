"""Dial-accounting rule: every charge must flow through the knobs.

The whole methodology turns four dials — o, g, L, G — through
:class:`~repro.am.tuning.TuningKnobs`, and both the sweep harness and
the simcost predictor assume those are the *only* places simulated time
is charged in the messaging layers.  A hard-coded ``timeout(3.0)`` or
``succeed(..., delay=0.5)`` inside ``am/`` or ``network/`` is invisible
to every one of them: sweeps can't turn it, the predictor's symbolic
edge costs don't include it, and predicted-vs-simulated error quietly
grows.  This rule flags any timeout/delay charge whose duration is a
compile-time numeric constant instead of a value derived from the
machine parameters or knobs.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import Finding, Rule, SourceFile, register_rule

__all__ = ["UntrackedDialCostRule"]


def _constant_value(node: ast.AST) -> Optional[float]:
    """The numeric value of a compile-time constant expression.

    Covers bare literals plus arithmetic over literals (``2 * 1.5``,
    ``-(3)``); anything touching a name, attribute, or call is not a
    constant and returns None.
    """
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or \
                not isinstance(node.value, (int, float)):
            return None
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and \
            isinstance(node.op, (ast.UAdd, ast.USub)):
        inner = _constant_value(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)):
        left = _constant_value(node.left)
        right = _constant_value(node.right)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            return left / right
        except ZeroDivisionError:
            return None
    return None


@register_rule
class UntrackedDialCostRule(Rule):
    """Constant-duration charges in the messaging layers bypass knobs.

    Scoped to ``am/`` and ``network/``: those layers own the o/g/L/G
    accounting, so any stall or delivery delay there must be a function
    of the machine parameters / TuningKnobs, never a literal.  A zero
    constant is allowed (``timeout(0)`` is the idiomatic yield point).
    """

    rule_id = "untracked-dial-cost"
    description = ("constant-duration time charge in am/ or network/; "
                   "derive it from LogGPParams/TuningKnobs so sweeps "
                   "and simcost can see it")

    def applies_to(self, source: SourceFile) -> bool:
        parts = source.path.replace("\\", "/").split("/")
        return "am" in parts or "network" in parts

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = callee.attr if isinstance(callee, ast.Attribute) \
                else callee.id if isinstance(callee, ast.Name) else None
            if name == "timeout" and node.args:
                value = _constant_value(node.args[0])
                if value is not None and value != 0.0:
                    yield self.finding(
                        source, node,
                        f"timeout({value:g}) charges a hard-coded "
                        "duration the dials cannot turn")
            elif name == "succeed":
                for keyword in node.keywords:
                    if keyword.arg != "delay":
                        continue
                    value = _constant_value(keyword.value)
                    if value is not None and value != 0.0:
                        yield self.finding(
                            source, node,
                            f"succeed(delay={value:g}) schedules a "
                            "hard-coded delivery delay outside the "
                            "knob accounting")
