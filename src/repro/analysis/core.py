"""The simlint engine: sources, findings, rules, and the driver.

The methodology of the paper only holds if every run is bit-deterministic
and every SPMD program obeys the simulator's cooperative-scheduling
contract.  ``repro.analysis`` enforces both mechanically: each
:class:`Rule` walks a parsed module and emits :class:`Finding` objects;
the driver applies per-line ``# simlint: disable=rule-id`` suppressions
and an optional committed baseline of grandfathered findings.

Layout
------
* this module -- :class:`SourceFile`, :class:`Finding`, :class:`Rule`,
  the rule registry, and :func:`analyze_file` / :func:`analyze_paths`.
* :mod:`repro.analysis.baseline` -- the grandfathered-findings file.
* :mod:`repro.analysis.rules` -- the three shipped rule packs
  (determinism, SPMD contract, hygiene).
* :mod:`repro.analysis.cli` -- ``python -m repro.analysis``.
"""

from __future__ import annotations

import abc
import ast
import dataclasses
import hashlib
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding", "Frame", "SourceFile", "Rule", "register_rule",
    "all_rules", "default_rules", "analyze_file", "analyze_paths",
    "dotted_name", "walk_scope", "scope_functions", "load_source",
    "parse_cache_stats", "clear_parse_cache", "PARSE_ERROR_RULE",
]

#: Pseudo-rule id attached to findings for unparseable files.
PARSE_ERROR_RULE = "parse-error"

#: ``# simlint: disable=a,b`` / ``# simlint: disable-next-line=a`` /
#: ``# simlint: disable-file=a`` (omitting ``=...`` disables every
#: rule); free text after the rule list is a justification.
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(disable(?:-next-line|-file)?)"
    r"(?:=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*))?")

#: Wildcard marker: a suppression with no rule list silences all rules.
_ALL = "all"


@dataclasses.dataclass(frozen=True)
class Frame:
    """One hop of an interprocedural call chain (simflow findings)."""

    path: str
    line: int
    function: str

    def render(self) -> str:
        return f'  File "{self.path}", line {self.line}, in {self.function}'

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line,
                "function": self.function}


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str
    #: Last physical line of the offending statement (suppression scope).
    end_line: int = 0
    #: Interprocedural witness: the call chain from the reported site
    #: down to the intrinsic effect, rendered like a traceback.
    chain: Tuple[Frame, ...] = ()

    def render(self) -> str:
        head = (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity} [{self.rule}] {self.message}")
        if not self.chain:
            return head
        return "\n".join([head] + [frame.render() for frame in self.chain])

    def to_dict(self) -> dict:
        data = {
            "path": self.path, "line": self.line, "col": self.col,
            "rule": self.rule, "severity": self.severity,
            "message": self.message,
        }
        if self.chain:
            data["chain"] = [frame.to_dict() for frame in self.chain]
        return data

    def fingerprint(self, source: Optional["SourceFile"] = None) -> str:
        """Content-addressed identity for the baseline: path + rule +
        the offending line's text, so findings survive line shifts."""
        text = ""
        if source is not None and 1 <= self.line <= len(source.lines):
            text = source.lines[self.line - 1].strip()
        raw = f"{self.path}|{self.rule}|{text}"
        return hashlib.sha256(raw.encode()).hexdigest()[:16]


class SourceFile:
    """A parsed module plus its simlint suppression comments."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        #: line number -> rule ids disabled on that physical line.
        self.line_suppressions: Dict[int, Set[str]] = {}
        #: line number -> rule ids disabled on the *next* statement line.
        self.next_line_suppressions: Dict[int, Set[str]] = {}
        #: rule ids disabled for the whole file.
        self.file_suppressions: Set[str] = set()
        try:
            self.tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            self.parse_error = exc
            return
        self._scan_suppressions()

    @classmethod
    def load(cls, path: Path) -> "SourceFile":
        return cls(str(path), path.read_text(encoding="utf-8"))

    def _scan_suppressions(self) -> None:
        reader = io.StringIO(self.text).readline
        try:
            tokens = list(tokenize.generate_tokens(reader))
        except (tokenize.TokenError, IndentationError):
            tokens = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            kind = match.group(1)
            listed = match.group(2)
            rules = ({_ALL} if listed is None else
                     {r.strip() for r in listed.split(",") if r.strip()})
            line = tok.start[0]
            if kind == "disable-file":
                self.file_suppressions |= rules
            elif kind == "disable-next-line":
                self.next_line_suppressions.setdefault(
                    line, set()).update(rules)
            else:
                self.line_suppressions.setdefault(line, set()).update(rules)

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether a suppression comment covers ``finding``."""
        rule = finding.rule
        if _ALL in self.file_suppressions or rule in self.file_suppressions:
            return True
        last = max(finding.end_line, finding.line)
        for line in range(finding.line, last + 1):
            rules = self.line_suppressions.get(line)
            if rules and (_ALL in rules or rule in rules):
                return True
        rules = self.next_line_suppressions.get(finding.line - 1)
        return bool(rules and (_ALL in rules or rule in rules))


class Rule(abc.ABC):
    """One statically checkable invariant.

    Subclasses set ``rule_id``, ``severity``, ``description`` and
    implement :meth:`check`; :func:`register_rule` adds them to the
    registry that :func:`default_rules` instantiates.
    """

    rule_id: str = ""
    severity: str = "error"
    description: str = ""
    #: Path components on which this rule does not apply (e.g. the
    #: harness may read wall clocks; the simulation may not).
    exempt_path_parts: Tuple[str, ...] = ()

    @abc.abstractmethod
    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Yield every violation found in ``source``."""

    def applies_to(self, source: SourceFile) -> bool:
        parts = Path(source.path).parts
        return not any(part in parts for part in self.exempt_path_parts)

    def finding(self, source: SourceFile, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            path=source.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            severity=self.severity,
            message=message,
            end_line=getattr(node, "end_lineno", None)
            or getattr(node, "lineno", 1),
        )


# -- registry ---------------------------------------------------------------

_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """The registry (importing the shipped packs as a side effect)."""
    import repro.analysis.rules  # noqa: F401 - registers the packs
    return dict(_REGISTRY)


def default_rules(only: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instances of every registered rule (or the ``only`` subset)."""
    registry = all_rules()
    if only is None:
        wanted = sorted(registry)
    else:
        wanted = list(only)
        unknown = [rule for rule in wanted if rule not in registry]
        if unknown:
            raise KeyError(f"unknown rule ids: {', '.join(unknown)}")
    return [registry[rule_id]() for rule_id in wanted]


# -- AST helpers shared by the rule packs -----------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                   ast.ClassDef)


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _SCOPE_BARRIERS):
            stack.extend(ast.iter_child_nodes(child))


def scope_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Every function definition in a module, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# -- parse cache ------------------------------------------------------------
#
# Parsing + tokenizing dominates lint time, and a ``--deep`` run needs
# every file twice: once for the per-file rules and once for the
# whole-program flow summaries.  The cache keys on (display path,
# content hash) so both consumers share one AST/tokenize pass per file
# content, and stale entries die naturally when the file changes.

_SOURCE_CACHE: Dict[Tuple[str, str], "SourceFile"] = {}
_SOURCE_CACHE_MAX = 2048
_CACHE_STATS = {"hits": 0, "misses": 0}


def load_source(path: Path, display: Optional[str] = None) -> SourceFile:
    """A (possibly cached) parsed ``SourceFile`` for an on-disk file."""
    name = display if display is not None else str(path)
    text = path.read_text(encoding="utf-8")
    key = (name, hashlib.sha256(text.encode()).hexdigest())
    cached = _SOURCE_CACHE.get(key)
    if cached is not None:
        _CACHE_STATS["hits"] += 1
        return cached
    _CACHE_STATS["misses"] += 1
    source = SourceFile(name, text)
    if len(_SOURCE_CACHE) >= _SOURCE_CACHE_MAX:
        _SOURCE_CACHE.clear()
    _SOURCE_CACHE[key] = source
    return source


def parse_cache_stats() -> Dict[str, int]:
    """``{"hits": ..., "misses": ...}`` counters (for the perf smoke)."""
    return dict(_CACHE_STATS)


def clear_parse_cache() -> None:
    _SOURCE_CACHE.clear()
    _CACHE_STATS["hits"] = _CACHE_STATS["misses"] = 0


# -- driver -----------------------------------------------------------------

def analyze_file(path: Path, rules: Sequence[Rule],
                 root: Optional[Path] = None) -> List[Finding]:
    """All unsuppressed findings for one file, sorted by location."""
    display = str(path if root is None else path.relative_to(root))
    try:
        source = load_source(path, display)
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding(display, 1, 1, PARSE_ERROR_RULE, "error",
                        f"unreadable file: {exc}")]
    return analyze_source(source, rules)


def analyze_source(source: SourceFile,
                   rules: Sequence[Rule]) -> List[Finding]:
    """All unsuppressed findings for an in-memory source."""
    if source.parse_error is not None:
        exc = source.parse_error
        return [Finding(source.path, exc.lineno or 1, 1, PARSE_ERROR_RULE,
                        "error", f"syntax error: {exc.msg}")]
    findings: Set[Finding] = set()
    for rule in rules:
        if not rule.applies_to(source):
            continue
        for finding in rule.check(source):
            if not source.is_suppressed(finding):
                findings.add(finding)
    return sorted(findings,
                  key=lambda f: (f.line, f.col, f.rule, f.message))


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, in sorted order."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def analyze_paths(paths: Iterable[Path], rules: Sequence[Rule],
                  root: Optional[Path] = None
                  ) -> Tuple[List[Finding], int]:
    """``(findings, files_checked)`` across files and directories."""
    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        findings.extend(analyze_file(path, rules, root=root))
    return findings, checked
