"""The committed baseline of grandfathered findings.

A baseline lets the CI gate fail on *new* findings while tolerating a
known set of old ones.  Entries are content-addressed — path + rule +
the offending line's text — so findings survive unrelated line shifts
but die (and must be re-justified) when the offending line changes.

The repo policy (see docs/ARCHITECTURE.md) keeps the baseline empty for
``apps/``: application findings are fixed, never grandfathered.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.core import Finding, SourceFile

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

#: Conventional baseline location at the repository root.
DEFAULT_BASELINE_NAME = "simlint.baseline.json"

_FORMAT = 1


class Baseline:
    """A set of grandfathered finding fingerprints."""

    def __init__(self, entries: Optional[List[dict]] = None) -> None:
        self.entries: List[dict] = entries or []
        self._index: Set[Tuple[str, str, str]] = {
            (e["path"], e["rule"], e["fingerprint"]) for e in self.entries
        }

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: Tuple[str, str, str]) -> bool:
        return key in self._index

    # -- queries ------------------------------------------------------------
    def covers(self, finding: Finding,
               source: Optional[SourceFile] = None) -> bool:
        key = (finding.path, finding.rule, finding.fingerprint(source))
        return key in self._index

    def split(self, findings: List[Finding],
              sources: Dict[str, SourceFile]
              ) -> Tuple[List[Finding], List[Finding]]:
        """``(new, grandfathered)`` partition of ``findings``."""
        new, old = [], []
        for finding in findings:
            source = sources.get(finding.path)
            (old if self.covers(finding, source) else new).append(finding)
        return new, old

    # -- persistence --------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: List[Finding],
                      sources: Dict[str, SourceFile]) -> "Baseline":
        entries = []
        for finding in findings:
            source = sources.get(finding.path)
            entries.append({
                "path": finding.path,
                "rule": finding.rule,
                "fingerprint": finding.fingerprint(source),
                "message": finding.message,
                "line": finding.line,
            })
        entries.sort(key=lambda e: (e["path"], e["line"], e["rule"]))
        return cls(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("format") != _FORMAT:
            raise ValueError(
                f"unsupported baseline format in {path}: "
                f"{data.get('format')!r}")
        return cls(data.get("findings", []))

    def save(self, path: Path) -> None:
        payload = {"format": _FORMAT, "findings": self.entries}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
