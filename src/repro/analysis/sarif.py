"""SARIF 2.1.0 output for the analysis CLI.

``--format sarif`` lets CI upload the report and annotate offending
lines directly on pull requests.  One run per report; simlint and
simflow findings share it (the rule metadata distinguishes them), and
a flow finding's call chain becomes a SARIF ``codeFlow`` so the viewer
can walk the frames down to the blocking primitive.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.analysis.core import Finding, all_rules
from repro.analysis.flow.checks import FLOW_RULES

__all__ = ["render_sarif"]

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _rule_catalogue() -> List[dict]:
    rules: Dict[str, Tuple[str, str]] = {}
    for rule_id, cls in sorted(all_rules().items()):
        rules[rule_id] = (cls.severity, cls.description)
    for rule_id, (severity, description) in sorted(FLOW_RULES.items()):
        rules[rule_id] = (severity, description)
    return [
        {
            "id": rule_id,
            "shortDescription": {"text": description},
            "defaultConfiguration": {
                "level": _LEVELS.get(severity, "warning")},
        }
        for rule_id, (severity, description) in sorted(rules.items())
    ]


def _location(path: str, line: int, col: int = 1) -> dict:
    region = {"startLine": max(line, 1)}
    if col > 0:
        region["startColumn"] = col
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": region,
        },
    }


def _result(finding: Finding) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
    }
    if finding.chain:
        result["codeFlows"] = [{
            "threadFlows": [{
                "locations": [
                    {
                        "location": dict(
                            _location(frame.path, frame.line),
                            message={"text": f"in {frame.function}"}),
                    }
                    for frame in finding.chain
                ],
            }],
        }]
    return result


def render_sarif(new: List[Finding], baselined: List[Finding]) -> str:
    """A SARIF 2.1.0 document; baselined findings ride along marked
    ``unchanged`` so viewers can hide them."""
    results = [_result(finding) for finding in new]
    for finding in baselined:
        entry = _result(finding)
        entry["baselineState"] = "unchanged"
        results.append(entry)
    document = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.analysis",
                    "informationUri":
                        "https://example.invalid/repro/analysis",
                    "rules": _rule_catalogue(),
                },
            },
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
