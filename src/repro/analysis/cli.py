"""``python -m repro.analysis`` — the simlint command line.

Exit codes: 0 clean (or every finding baselined), 1 findings, 2 usage
errors.  ``--format json`` emits a machine-readable report; CI runs
the text form and fails on any finding not in the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.core import (Finding, SourceFile, analyze_source,
                                 default_rules, iter_python_files)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: determinism & SPMD-correctness linter")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--baseline", type=Path, default=None,
                        metavar="FILE",
                        help="baseline of grandfathered findings "
                        f"(default: ./{DEFAULT_BASELINE_NAME} if present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                        "file and exit 0")
    parser.add_argument("--rules", default=None, metavar="ID,ID",
                        help="comma-separated subset of rule ids to run")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def _resolve_baseline_path(args: argparse.Namespace) -> Optional[Path]:
    if args.baseline is not None:
        return args.baseline
    default = Path(DEFAULT_BASELINE_NAME)
    if args.write_baseline or default.is_file():
        return default
    return None


def _render_text(new: List[Finding], baselined: List[Finding],
                 checked: int) -> str:
    lines = [finding.render() for finding in new]
    lines.append(
        f"simlint: {len(new)} finding(s)"
        + (f" ({len(baselined)} baselined)" if baselined else "")
        + f" across {checked} file(s)")
    return "\n".join(lines)


def _render_json(new: List[Finding], baselined: List[Finding],
                 checked: int) -> str:
    return json.dumps({
        "version": 1,
        "files_checked": checked,
        "findings": [finding.to_dict() for finding in new],
        "baselined": [finding.to_dict() for finding in baselined],
    }, indent=2)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id:28s} {rule.severity:8s} "
                  f"{rule.description}")
        return 0

    try:
        only = ([r.strip() for r in args.rules.split(",") if r.strip()]
                if args.rules else None)
        rules = default_rules(only)
    except KeyError as exc:
        print(f"simlint: {exc.args[0]}", file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"simlint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    findings: List[Finding] = []
    sources: Dict[str, SourceFile] = {}
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        try:
            source = SourceFile(str(path),
                                path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError) as exc:
            print(f"simlint: cannot read {path}: {exc}",
                  file=sys.stderr)
            return 2
        sources[source.path] = source
        findings.extend(analyze_source(source, rules))

    baseline_path = _resolve_baseline_path(args)
    if args.write_baseline:
        baseline = Baseline.from_findings(findings, sources)
        baseline.save(baseline_path)
        print(f"simlint: wrote {len(baseline)} finding(s) to "
              f"{baseline_path}")
        return 0

    baselined: List[Finding] = []
    if baseline_path is not None and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"simlint: cannot load baseline {baseline_path}: "
                  f"{exc}", file=sys.stderr)
            return 2
        findings, baselined = baseline.split(findings, sources)

    render = _render_json if args.format == "json" else _render_text
    print(render(findings, baselined, checked))
    return 1 if findings else 0
