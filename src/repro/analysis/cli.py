"""``python -m repro.analysis`` — the simlint/simflow command line.

Exit codes: 0 clean (or every finding baselined), 1 findings, 2 usage
errors.  ``--deep`` adds the whole-program simflow checks on top of the
per-file rules, gated by their own ``simflow.baseline.json``.
``--format json`` emits a machine-readable report and ``--format
sarif`` a SARIF 2.1.0 document CI can upload to annotate PR lines; CI
runs the text form and fails on any finding not in a committed
baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.core import (Finding, SourceFile, analyze_source,
                                 default_rules, iter_python_files,
                                 load_source)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: determinism & SPMD-correctness linter")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    parser.add_argument("--deep", action="store_true",
                        help="also run the whole-program simflow checks "
                        "(call-graph effect & SPMD-congruence analysis)")
    parser.add_argument("--baseline", type=Path, default=None,
                        metavar="FILE",
                        help="baseline of grandfathered findings "
                        f"(default: ./{DEFAULT_BASELINE_NAME} if present)")
    parser.add_argument("--flow-baseline", type=Path, default=None,
                        metavar="FILE",
                        help="baseline for --deep findings (default: "
                        "./simflow.baseline.json if present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                        "file(s) and exit 0")
    parser.add_argument("--rules", default=None, metavar="ID,ID",
                        help="comma-separated subset of rule ids to run")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def _resolve_baseline_path(args: argparse.Namespace) -> Optional[Path]:
    if args.baseline is not None:
        return args.baseline
    default = Path(DEFAULT_BASELINE_NAME)
    if args.write_baseline or default.is_file():
        return default
    return None


def _resolve_flow_baseline_path(
        args: argparse.Namespace) -> Optional[Path]:
    from repro.analysis.flow.driver import DEFAULT_FLOW_BASELINE_NAME
    if args.flow_baseline is not None:
        return args.flow_baseline
    default = Path(DEFAULT_FLOW_BASELINE_NAME)
    if args.write_baseline or default.is_file():
        return default
    return None


def _render_text(new: List[Finding], baselined: List[Finding],
                 checked: int, deep: bool) -> str:
    lines = [finding.render() for finding in new]
    lines.append(
        f"simlint: {len(new)} finding(s)"
        + (f" ({len(baselined)} baselined)" if baselined else "")
        + f" across {checked} file(s)"
        + (" [deep]" if deep else ""))
    return "\n".join(lines)


def _render_json(new: List[Finding], baselined: List[Finding],
                 checked: int, deep: bool) -> str:
    report = {
        "version": 1,
        "files_checked": checked,
        "findings": [finding.to_dict() for finding in new],
        "baselined": [finding.to_dict() for finding in baselined],
    }
    if deep:
        report["deep"] = True
    return json.dumps(report, indent=2)


def _split(findings: List[Finding], baseline_path: Optional[Path],
           sources: Dict[str, SourceFile], label: str
           ) -> Optional[Tuple[List[Finding], List[Finding]]]:
    """Partition against a baseline file; None on a load error."""
    if baseline_path is None or not baseline_path.is_file():
        return findings, []
    try:
        baseline = Baseline.load(baseline_path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"simlint: cannot load {label} {baseline_path}: {exc}",
              file=sys.stderr)
        return None
    return baseline.split(findings, sources)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        from repro.analysis.flow.checks import FLOW_RULES
        for rule in default_rules():
            print(f"{rule.rule_id:28s} {rule.severity:8s} "
                  f"{rule.description}")
        for rule_id, (severity, description) in sorted(FLOW_RULES.items()):
            print(f"{rule_id:28s} {severity:8s} {description} "
                  "(--deep)")
        return 0

    try:
        only = ([r.strip() for r in args.rules.split(",") if r.strip()]
                if args.rules else None)
        rules = default_rules(only)
    except KeyError as exc:
        print(f"simlint: {exc.args[0]}", file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"simlint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    findings: List[Finding] = []
    sources: Dict[str, SourceFile] = {}
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        try:
            source = load_source(path)
        except (OSError, UnicodeDecodeError) as exc:
            print(f"simlint: cannot read {path}: {exc}",
                  file=sys.stderr)
            return 2
        sources[source.path] = source
        findings.extend(analyze_source(source, rules))

    flow_findings: List[Finding] = []
    if args.deep:
        from repro.analysis.flow.driver import analyze_program
        flow_findings = analyze_program(sources)

    baseline_path = _resolve_baseline_path(args)
    flow_baseline_path = (_resolve_flow_baseline_path(args)
                          if args.deep else None)
    if args.write_baseline:
        baseline = Baseline.from_findings(findings, sources)
        baseline.save(baseline_path)
        print(f"simlint: wrote {len(baseline)} finding(s) to "
              f"{baseline_path}")
        if args.deep:
            flow_baseline = Baseline.from_findings(flow_findings, sources)
            flow_baseline.save(flow_baseline_path)
            print(f"simlint: wrote {len(flow_baseline)} flow finding(s) "
                  f"to {flow_baseline_path}")
        return 0

    split = _split(findings, baseline_path, sources, "baseline")
    if split is None:
        return 2
    findings, baselined = split
    if args.deep:
        split = _split(flow_findings, flow_baseline_path, sources,
                       "flow baseline")
        if split is None:
            return 2
        flow_new, flow_old = split
        findings = findings + flow_new
        baselined = baselined + flow_old

    if args.format == "sarif":
        from repro.analysis.sarif import render_sarif
        print(render_sarif(findings, baselined))
    elif args.format == "json":
        print(_render_json(findings, baselined, checked, args.deep))
    else:
        print(_render_text(findings, baselined, checked, args.deep))
    return 1 if findings else 0
