"""``python -m repro.cost`` — record, predict, report.

Follows the analysis-CLI contract (see ``repro.analysis.cli``):

* exit 0 — success (and, for ``report``, the error gate holds);
* exit 1 — ``report``'s median relative error exceeded the gate;
* exit 2 — usage error (argparse's convention).

Subcommands::

    python -m repro.cost record --app Radix --nodes 8 --out radix.json
    python -m repro.cost predict radix.json --parameter overhead
    python -m repro.cost report --apps Radix,Sample --nodes 8 \\
        --parameter overhead --max-median-error 0.10 --format json

``record`` runs one instrumented simulation and writes the dependency
graph; ``predict`` replays a graph over a dial grid (no simulation at
all); ``report`` does both *and* simulates the same grid (served from
the RunCache when warm) to print per-point relative errors — the
validation loop CI gates on.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
from typing import List, Optional, Sequence

from repro.cost.graph import CostGraph
from repro.cost.predict import (latency_tolerance, lp_bound,
                                predict_sweep)
from repro.cost.recorder import record_run

__all__ = ["main", "REDUCED_GRIDS"]

#: Reduced per-dial grids (the ``scripts/generate_experiments.py``
#: defaults): small enough to simulate for validation, wide enough to
#: span the paper's dynamic range.  First value is the baseline.
REDUCED_GRIDS = {
    "overhead": (2.9, 12.9, 52.9, 102.9),
    "gap": (5.8, 15.0, 55.0, 105.0),
    "latency": (5.0, 15.0, 55.0, 105.0),
    "bulk_mb_s": (38.0, 15.0, 10.0, 5.5, 1.0),
}


def _apps_for(names: Sequence[str], nodes: int, scale: float):
    from repro.harness.suite import suite_for
    return suite_for(nodes, scale=scale, names=list(names))


def _parse_values(text: Optional[str],
                  parameter: str) -> List[float]:
    if text is None:
        return list(REDUCED_GRIDS[parameter])
    return [float(part) for part in text.split(",") if part.strip()]


def _emit(payload: dict, text: str, fmt: str) -> None:
    if fmt == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(text)


# -- record -----------------------------------------------------------------

def _cmd_record(args) -> int:
    apps = _apps_for([args.app], args.nodes, args.scale)
    graph, result = record_run(apps[0], args.nodes, seed=args.seed,
                               window=args.window)
    payload = graph.to_dict()
    if args.out is not None:
        args.out.write_text(json.dumps(payload) + "\n")
        print(f"{graph.describe()}\nwrote {args.out}")
    else:
        print(json.dumps(payload))
    return 0


# -- predict ----------------------------------------------------------------

def _cmd_predict(args) -> int:
    graph = CostGraph.from_json(args.graph.read_text())
    values = _parse_values(args.values, args.parameter)
    sweep = predict_sweep(graph, args.parameter, values)
    tolerance = latency_tolerance(graph, args.parameter,
                                  threshold=args.threshold)
    baseline_bound = lp_bound(graph)
    payload = {
        "schema": "repro-simcost-predict-v1",
        "app": graph.app_name,
        "n_nodes": graph.n_nodes,
        "parameter": args.parameter,
        "points": [{"value": p.value, "runtime_us": round(p.runtime_us, 3),
                    "slowdown": round(s, 4)}
                   for p, s in zip(sweep.points, sweep.slowdowns())],
        "latency_tolerance": tolerance,
        "threshold": args.threshold,
        "lp_bound_us": round(baseline_bound, 3),
        "simulations_used": 0,
    }
    lines = [f"{graph.app_name} (P={graph.n_nodes}): predicted "
             f"{args.parameter} sweep"]
    for point in payload["points"]:
        lines.append(f"  {args.parameter}={point['value']:<8g} "
                     f"runtime={point['runtime_us']:<12.1f} "
                     f"slowdown={point['slowdown']:.2f}")
    cross = "never crosses" if tolerance is None else f"{tolerance:g}"
    lines.append(f"  {args.threshold:g}x tolerance: {cross}; "
                 f"LP bound at baseline: {baseline_bound:.1f} us")
    _emit(payload, "\n".join(lines), args.format)
    return 0


# -- report -----------------------------------------------------------------

def report_rows(apps, nodes: int, parameter: str,
                values: Sequence[float], seed: int = 0,
                cache=None, jobs: Optional[int] = None) -> List[dict]:
    """Predicted-vs-simulated slowdown rows for a suite of apps.

    One recording per app predicts the whole grid; the same grid is
    simulated through :func:`repro.harness.sweeps.run_sweep` (cache-
    served when warm) for ground truth.  Each row carries both
    slowdowns and their relative error; per-app ``median_rel_err``
    rides on every row for easy aggregation.
    """
    from repro.harness.sweeps import knob_factory, run_sweep
    rows: List[dict] = []
    for app in apps:
        graph, _ = record_run(app, nodes, seed=seed)
        predicted = predict_sweep(graph, parameter, values)
        simulated = run_sweep(app, nodes, parameter, values,
                              knob_factory(parameter, graph.params),
                              seed=seed, cache=cache, jobs=jobs)
        sim_slow = simulated.slowdowns()
        pred_slow = predicted.slowdowns()
        errs = []
        app_rows = []
        for value, sim, pred in zip(values, sim_slow, pred_slow):
            err = None if sim is None else abs(pred - sim) / sim
            if err is not None:
                errs.append(err)
            app_rows.append({"app": app.name, parameter: value,
                             "simulated": sim, "predicted": round(pred, 4),
                             "rel_err": None if err is None
                             else round(err, 4)})
        median = statistics.median(errs) if errs else None
        for row in app_rows:
            row["median_rel_err"] = None if median is None \
                else round(median, 4)
        rows.extend(app_rows)
    return rows


def render_report(rows: List[dict], parameter: str) -> str:
    lines = [f"| app | {parameter} | simulated | predicted | rel err |",
             "|---|---|---|---|---|"]
    for row in rows:
        sim = "N/A" if row["simulated"] is None \
            else f"{row['simulated']:.2f}"
        err = "N/A" if row["rel_err"] is None \
            else f"{row['rel_err'] * 100:.1f}%"
        lines.append(f"| {row['app']} | {row[parameter]:g} | {sim} | "
                     f"{row['predicted']:.2f} | {err} |")
    return "\n".join(lines)


def _cmd_report(args) -> int:
    names = [part.strip() for part in args.apps.split(",") if part.strip()]
    if not names:
        print("report: --apps named no applications", file=sys.stderr)
        return 2
    apps = _apps_for(names, args.nodes, args.scale)
    values = _parse_values(args.values, args.parameter)
    cache = None
    if not args.no_cache:
        from repro.harness.runcache import RunCache
        cache = RunCache(args.cache_dir)
    rows = report_rows(apps, args.nodes, args.parameter, values,
                       seed=args.seed, cache=cache, jobs=args.jobs)
    errs = [row["rel_err"] for row in rows if row["rel_err"] is not None]
    median = statistics.median(errs) if errs else None
    predicted_points = len(rows)
    recordings = len(apps)
    payload = {
        "schema": "repro-simcost-bench-v1",
        "parameter": args.parameter,
        "n_nodes": args.nodes,
        "scale": args.scale,
        "recordings": recordings,
        "predicted_points": predicted_points,
        "simulations_classic": predicted_points,
        "simulations_avoided_ratio": (
            round(predicted_points / recordings, 2) if recordings else None),
        "median_rel_err": None if median is None else round(median, 4),
        "max_median_error": args.max_median_error,
        "rows": rows,
    }
    text = render_report(rows, args.parameter)
    if median is not None:
        text += (f"\n\nmedian relative error: {median * 100:.1f}% "
                 f"(gate: {args.max_median_error * 100:.0f}%)")
    _emit(payload, text, args.format)
    if args.bench_out is not None:
        args.bench_out.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.bench_out}", file=sys.stderr)
    if median is not None and median > args.max_median_error:
        return 1
    return 0


# -- argument parsing --------------------------------------------------------

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cost",
        description="simcost: predict dial sweeps from one recorded run.")
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record",
                            help="run one instrumented simulation and "
                            "write its dependency graph")
    record.add_argument("--app", required=True,
                        help="application name (as in the suite)")
    record.add_argument("--nodes", type=int, default=8)
    record.add_argument("--scale", type=float, default=1.0)
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--window", type=int, default=8)
    record.add_argument("--out", type=pathlib.Path, default=None,
                        help="graph JSON path (default: stdout)")

    predict = sub.add_parser("predict",
                             help="replay a recorded graph over a dial "
                             "grid (no simulation)")
    predict.add_argument("graph", type=pathlib.Path,
                         help="graph JSON written by `record`")
    predict.add_argument("--parameter", default="overhead",
                         choices=sorted(REDUCED_GRIDS))
    predict.add_argument("--values", default=None,
                         help="comma-separated dial values "
                         "(default: the reduced grid)")
    predict.add_argument("--threshold", type=float, default=2.0,
                         help="slowdown threshold for the tolerance "
                         "metric (default 2.0)")
    predict.add_argument("--format", choices=("text", "json"),
                         default="text")

    report = sub.add_parser("report",
                            help="record + predict + simulate the same "
                            "grid; gate on median relative error")
    report.add_argument("--apps", required=True,
                        help="comma-separated application names")
    report.add_argument("--nodes", type=int, default=8)
    report.add_argument("--scale", type=float, default=1.0)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--parameter", default="overhead",
                        choices=sorted(REDUCED_GRIDS))
    report.add_argument("--values", default=None)
    report.add_argument("--max-median-error", type=float, default=0.10)
    report.add_argument("--jobs", type=int, default=None)
    report.add_argument("--no-cache", action="store_true")
    report.add_argument("--cache-dir", default=None)
    report.add_argument("--bench-out", type=pathlib.Path, default=None,
                        help="also write the report payload as a BENCH "
                        "JSON file")
    report.add_argument("--format", choices=("text", "json"),
                        default="text")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "record":
        return _cmd_record(args)
    if args.command == "predict":
        return _cmd_predict(args)
    return _cmd_report(args)
