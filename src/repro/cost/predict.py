"""Longest-path replay of a recorded DAG under re-dialed parameters.

:func:`predict_runtime` re-evaluates one recorded run at a new
:class:`~repro.am.tuning.TuningKnobs` point in a single O(events)
forward scan — the recorded order is a topological order of the
happens-before DAG (see :mod:`repro.cost.graph`), so each event's
predicted completion is a max over its already-computed predecessors
plus its re-dialed edge costs:

* **program order**: the previous event on the same rank, plus the
  dial-independent *busy* compute between them (recorded elapsed time
  minus blocked time minus the recorded charge, clamped at zero);
* **message edges**: a reception waits for its sender's NIC delivery
  — the per-fragment transmit chain (DMA, injection, gap stall) of
  :class:`~repro.cost.model.DialedCost` plus the wire;
* **window credits**: a credit-taking send with a full window waits
  for the earliest credit return among its outstanding transfers —
  a reply's delivery, or a one-way's NIC CREDIT round (delivery plus
  one more wire leg).

Every edge weight is linear in each dial, and predicted runtime is a
max over path sums, so runtime is piecewise-linear in every dial:
:func:`predict_sweep` evaluates it over a grid, and
:func:`latency_tolerance` bisects it for the 2x-slowdown crossing.
:func:`lp_bound` gives the complementary LP-style lower bound — the
most-loaded resource (host or NIC transmit context) can never finish
faster than its summed work.

What replays exactly, what is approximated, and what is refused is
documented in ARCHITECTURE.md section 16; graphs from unsupported
regimes raise :class:`UnsupportedGraphError` here, and recording
refuses them up front in ``Cluster.run``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.am.tuning import TuningKnobs
from repro.cost.graph import CostGraph
from repro.cost.model import DialedCost
from repro.harness.sweeps import knob_factory

__all__ = ["UnsupportedGraphError", "predict_runtime", "PredictedPoint",
           "PredictedSweep", "predict_sweep", "latency_tolerance",
           "lp_bound"]


class UnsupportedGraphError(ValueError):
    """The dial point or graph is outside the replay model's domain."""


def _check_supported(graph: CostGraph, knobs: TuningKnobs) -> None:
    if knobs.delta_occ > 0:
        raise UnsupportedGraphError(
            "dialed occupancy (delta_occ > 0) serialises the receive "
            "context; predict cannot replay it — simulate instead")
    if graph.knobs.delta_occ > 0:
        raise UnsupportedGraphError(
            "graph was recorded with dialed occupancy; re-record at "
            "delta_occ = 0")


def predict_runtime(graph: CostGraph,
                    knobs: Optional[TuningKnobs] = None) -> float:
    """Predicted runtime (µs) of the recorded run at a new dial point.

    ``knobs=None`` replays the graph at its own recorded dials — the
    self-check that the model reproduces the measured
    ``graph.runtime_us``.
    """
    knobs = knobs if knobs is not None else graph.knobs
    _check_supported(graph, knobs)
    cost = DialedCost(graph.params, knobs)
    window = graph.window
    per_dest = graph.window_scope == "per-destination"

    # Per-rank replay state.
    clock: Dict[int, float] = {}       # predicted completion of last event
    last_t: Dict[int, float] = {}      # recorded completion of last event
    nic_free: Dict[int, float] = {}    # predicted transmit-context free time
    # Message / flow-control state.
    delivery: Dict[Tuple[int, bool], float] = {}
    credit_return: Dict[int, float] = {}
    outstanding: Dict[Tuple[int, int], List[int]] = {}

    t_start: Optional[float] = None
    t_stop: Optional[float] = None

    for event in graph.events:
        rank = event.rank
        busy = max(0.0, (event.t - last_t.get(rank, 0.0))
                   - event.blocked - event.charge)
        last_t[rank] = event.t
        ready = clock.get(rank, 0.0) + busy

        if event.kind == "mark":
            clock[rank] = ready
            if event.label == "start":
                t_start = ready
            elif event.label == "stop":
                t_stop = ready
            continue

        if event.kind == "recv":
            arrived = delivery.get((event.xfer, event.reply_like))
            if arrived is not None and arrived > ready:
                ready = arrived
            clock[rank] = ready + cost.recv_charge
            continue

        # -- send -----------------------------------------------------------
        if event.takes_credit:
            key = (rank, event.peer if per_dest else -1)
            slots = outstanding.setdefault(key, [])
            if len(slots) >= window:
                # Wait for the earliest *known* credit return.  Returns
                # recorded after this point in the scan are treated as
                # later — consistent with the recorded schedule, where
                # the freeing return had already happened.
                best_i = -1
                best_rt = 0.0
                for i, xfer in enumerate(slots):
                    rt = credit_return.get(xfer)
                    if rt is not None and (best_i < 0 or rt < best_rt):
                        best_i, best_rt = i, rt
                if best_i >= 0:
                    slots.pop(best_i)
                    if best_rt > ready:
                        ready = best_rt
                else:  # pragma: no cover - cannot happen in a valid graph
                    slots.pop(0)
            slots.append(event.xfer)
        done = ready + cost.send_charge
        clock[rank] = done

        # NIC transmit chain: fragments enter the tx queue at `done`.
        free = nic_free.get(rank, 0.0)
        arrival = done
        if event.bulk:
            for size in cost.fragment_sizes(event.nbytes):
                pre, stall = cost.tx_cycle(size, True)
                inject = max(done, free) + pre
                free = inject + stall
                arrival = inject + cost.wire
        else:
            pre, stall = cost.tx_cycle(event.nbytes, False)
            inject = max(done, free) + pre
            free = inject + stall
            arrival = inject + cost.wire
        nic_free[rank] = free

        delivery[(event.xfer, event.reply_like)] = arrival
        if event.reply_like:
            # A reply's arrival returns the request's window credit.
            credit_return[event.xfer] = arrival
        elif event.one_way:
            # NIC CREDIT: generated at delivery, one more wire leg back
            # (CREDITs bypass the transmit gap but ride the delay queue).
            credit_return[event.xfer] = arrival + cost.wire

    if t_start is None or t_stop is None:
        raise UnsupportedGraphError(
            "graph has no measurement markers; was the run recorded "
            "through Cluster.run?")
    return t_stop - t_start


@dataclass
class PredictedPoint:
    """One predicted configuration of a sweep (no simulation behind it)."""

    value: float
    knobs: TuningKnobs
    runtime_us: float

    @property
    def completed(self) -> bool:
        return True


@dataclass
class PredictedSweep:
    """Drop-in for :class:`~repro.harness.sweeps.SweepResult`, predicted.

    Same reading API (``values`` / ``slowdowns`` / ``series`` /
    ``as_rows``), but every point comes from replaying one recorded
    graph: :attr:`simulations_used` is the whole sweep's simulation
    bill.
    """

    app_name: str
    n_nodes: int
    parameter: str
    points: List[PredictedPoint] = field(default_factory=list)
    #: Instrumented simulations behind this sweep (the recording).
    simulations_used: int = 1

    @property
    def baseline(self) -> PredictedPoint:
        return self.points[0]

    def values(self) -> List[float]:
        return [p.value for p in self.points]

    def slowdowns(self) -> List[float]:
        base = self.baseline.runtime_us
        return [p.runtime_us / base for p in self.points]

    def series(self) -> List[tuple]:
        base = self.baseline.runtime_us
        return [(p.value, p.runtime_us / base) for p in self.points]

    def as_rows(self) -> List[dict]:
        base = self.baseline.runtime_us
        return [{
            "app": self.app_name,
            self.parameter: p.value,
            "runtime_us": round(p.runtime_us, 1),
            "slowdown": round(p.runtime_us / base, 2),
            "failure": "",
        } for p in self.points]


def predict_sweep(graph: CostGraph, parameter: str,
                  values: Sequence[float],
                  knob_for: Optional[Callable[[float], TuningKnobs]] = None,
                  ) -> PredictedSweep:
    """Predict a whole dial sweep from one recorded graph.

    The analytical counterpart of :func:`repro.harness.sweeps.
    run_sweep`: ``parameter`` and ``values`` mean exactly what they
    mean there (absolute targets; first value is the baseline), and
    ``knob_for`` defaults to the shared :func:`~repro.harness.sweeps.
    knob_factory` dial semantics against the graph's recorded params.
    """
    if knob_for is None:
        knob_for = knob_factory(parameter, graph.params)
    sweep = PredictedSweep(app_name=graph.app_name,
                           n_nodes=graph.n_nodes, parameter=parameter)
    for value in values:
        knobs = knob_for(value)
        sweep.points.append(PredictedPoint(
            value=value, knobs=knobs,
            runtime_us=predict_runtime(graph, knobs)))
    return sweep


#: Baseline (undialed) absolute value of each sweepable dial.
def _dial_baseline(graph: CostGraph, parameter: str) -> float:
    params = graph.params
    if parameter == "overhead":
        return params.overhead
    if parameter == "gap":
        return params.gap
    if parameter == "latency":
        return params.latency
    if parameter == "bulk_mb_s":
        return 1.0 / params.Gap
    raise ValueError(f"unknown dial {parameter!r}")


def latency_tolerance(graph: CostGraph, parameter: str,
                      threshold: float = 2.0,
                      tol: float = 0.01,
                      max_value: float = 100_000.0) -> Optional[float]:
    """The dial value at which predicted slowdown crosses ``threshold``.

    The per-app "latency tolerance" metric (for any of the four dials,
    despite the name): how far the dial can be turned before the
    application slows down by ``threshold``x.  Slowdown is
    piecewise-linear and monotone in each dial, so the crossing is
    found by doubling + bisection to relative precision ``tol``.
    Returns ``None`` when the app never crosses within ``max_value``
    (for ``bulk_mb_s``, when it still holds at 1/1000 of the baseline
    bandwidth — effectively bandwidth-insensitive).
    """
    knob_for = knob_factory(parameter, graph.params)
    base_value = _dial_baseline(graph, parameter)
    base_runtime = predict_runtime(graph, knob_for(base_value))

    def slowdown(value: float) -> float:
        return predict_runtime(graph, knob_for(value)) / base_runtime

    if parameter == "bulk_mb_s":
        # Slowdown grows as bandwidth *drops*: search downward.
        lo, hi = base_value, base_value  # hi = crossing side (small mb)
        floor = base_value / 1000.0
        while slowdown(hi) < threshold:
            hi /= 2.0
            if hi < floor:
                return None
        lo = hi * 2.0 if hi < base_value else base_value
        while (lo - hi) > tol * max(1e-9, lo):
            mid = (lo + hi) / 2.0
            if slowdown(mid) >= threshold:
                hi = mid
            else:
                lo = mid
        return hi

    if slowdown(base_value) >= threshold:
        return base_value
    hi = max(base_value, 1.0)
    while slowdown(hi) < threshold:
        hi *= 2.0
        if hi > max_value:
            return None
    lo = max(base_value, hi / 2.0)
    while (hi - lo) > tol * max(1e-9, hi):
        mid = (lo + hi) / 2.0
        if slowdown(mid) >= threshold:
            hi = mid
        else:
            lo = mid
    return hi


def lp_bound(graph: CostGraph,
             knobs: Optional[TuningKnobs] = None) -> float:
    """LP-style lower bound on runtime at a dial point (µs).

    Relaxes all ordering constraints and keeps only per-resource work
    conservation over the measured region: every rank's host must
    execute its busy compute plus its per-message charges, and every
    rank's NIC transmit context must execute its injection cycles.
    The longest-path prediction always dominates this bound; a large
    gap between them means the app hides communication well (the
    dial's cost overlaps compute), a small gap means it is
    resource-bound on that dial.
    """
    knobs = knobs if knobs is not None else graph.knobs
    _check_supported(graph, knobs)
    cost = DialedCost(graph.params, knobs)

    # Recorded bounds of the measured region.
    marks = {e.label: e.t for e in graph.events if e.kind == "mark"}
    if "start" not in marks or "stop" not in marks:
        raise UnsupportedGraphError("graph has no measurement markers")
    t0, t1 = marks["start"], marks["stop"]

    host: Dict[int, float] = {}
    nic: Dict[int, float] = {}
    last_t: Dict[int, float] = {}
    for event in graph.events:
        rank = event.rank
        busy = max(0.0, (event.t - last_t.get(rank, 0.0))
                   - event.blocked - event.charge)
        last_t[rank] = event.t
        if not (t0 < event.t <= t1):
            continue
        host[rank] = host.get(rank, 0.0) + busy
        if event.kind == "recv":
            host[rank] += cost.recv_charge
        elif event.kind == "send":
            host[rank] += cost.send_charge
            if event.bulk:
                work = sum(sum(cost.tx_cycle(size, True))
                           for size in cost.fragment_sizes(event.nbytes))
            else:
                work = sum(cost.tx_cycle(event.nbytes, False))
            nic[rank] = nic.get(rank, 0.0) + work
    bounds = list(host.values()) + list(nic.values())
    return max(bounds) if bounds else 0.0
