"""simcost: predict o/g/L/G sweeps from one instrumented run.

The fourth tier of the analysis stack (simlint → simflow → simsan →
simcost).  See ARCHITECTURE.md section 16.
"""

from repro.cost.graph import CostGraph, DepEvent, GRAPH_SCHEMA
from repro.cost.model import DialedCost, collective_phase_cost
from repro.cost.predict import (PredictedPoint, PredictedSweep,
                                UnsupportedGraphError, latency_tolerance,
                                lp_bound, predict_runtime, predict_sweep)
from repro.cost.recorder import DepRecorder, record_run

__all__ = ["CostGraph", "DepEvent", "GRAPH_SCHEMA", "DepRecorder",
           "record_run", "DialedCost", "collective_phase_cost",
           "PredictedPoint", "PredictedSweep", "UnsupportedGraphError",
           "latency_tolerance", "lp_bound", "predict_runtime",
           "predict_sweep"]
