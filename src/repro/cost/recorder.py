"""Observation-only recording of a run's dependency DAG.

A :class:`DepRecorder` is passed to :meth:`Cluster.run(app,
recorder=...) <repro.cluster.machine.Cluster.run>` exactly like a
``MessageTracer``: the AM layer invokes its hooks at every host-level
send and reception and around every blocked wait, and the cluster
brackets the measured region with markers.  The hooks only *read*
simulator state (``sim.now``, packet fields) and append to Python
lists — they schedule nothing, charge nothing, and touch no
randomness, so an instrumented run is bit-identical to an unrecorded
one (same ``runtime_us``, ``events_processed``, stats, and RunCache
keys).  This is the same contract simsan established, and it is
pinned by tests and CI.

Recording is supported on the flat fabric with a perfectly reliable
wire and undialed occupancy; other regimes (fault plans with their
retransmission timers, switched fabrics with contention, a serialised
receive context) have scheduling dynamics the replay model does not
reproduce, so :func:`record_run` refuses them up front rather than
returning graphs that mispredict.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cost.graph import CostGraph, DepEvent
from repro.network.packet import Packet, PacketKind

__all__ = ["DepRecorder", "record_run"]


class DepRecorder:
    """Collects :class:`DepEvent` rows during one instrumented run.

    One recorder serves exactly one run: :meth:`begin_run` arms it and
    :meth:`finish` seals it (both called by ``Cluster.run``).  The
    finished graph is available as :attr:`graph`.
    """

    def __init__(self) -> None:
        self.events: List[DepEvent] = []
        #: Per-rank blocked time accumulated since the previous recorded
        #: event on that rank (consumed by the next event).
        self._blocked: Dict[int, float] = {}
        self._armed = False
        self._finished = False
        self.graph: Optional[CostGraph] = None
        # Filled by begin_run from the cluster configuration.
        self._app_name = ""
        self._n_nodes = 0
        self._params = None
        self._knobs = None
        self._window = 0
        self._window_scope = ""
        self._seed = 0

    # -- lifecycle (driven by Cluster.run) ---------------------------------
    def begin_run(self, cluster, app_name: str) -> None:
        if self._armed or self._finished:
            raise RuntimeError(
                "a DepRecorder records exactly one run; make a new one")
        self._armed = True
        self._app_name = app_name
        self._n_nodes = cluster.n_nodes
        self._params = cluster.params
        self._knobs = cluster.knobs
        self._window = cluster.window
        self._window_scope = cluster.window_scope
        self._seed = cluster.seed

    def finish(self, runtime_us: float) -> CostGraph:
        if not self._armed:
            raise RuntimeError("finish() before begin_run()")
        self._armed = False
        self._finished = True
        self.graph = CostGraph(
            app_name=self._app_name, n_nodes=self._n_nodes,
            params=self._params, knobs=self._knobs, window=self._window,
            window_scope=self._window_scope, seed=self._seed,
            runtime_us=runtime_us, events=self.events)
        return self.graph

    # -- hooks (called from the AM layer / cluster driver) -----------------
    def _take_blocked(self, rank: int) -> float:
        return self._blocked.pop(rank, 0.0)

    def on_send(self, rank: int, packet: Packet, now: float,
                charge: float) -> None:
        """Completion of one host-level send (after its ``o`` charge)."""
        reply_like = packet.kind is PacketKind.REPLY or packet.is_reply
        bulk = packet.is_bulk
        if bulk:
            nbytes = packet.message_bytes \
                if packet.message_bytes is not None else packet.size_bytes
            frags = packet.fragment[1]
        else:
            nbytes = packet.size_bytes
            frags = 1
        self.events.append(DepEvent(
            kind="send", rank=rank, t=now, charge=charge,
            blocked=self._take_blocked(rank), xfer=packet.xfer_id,
            peer=packet.dst, reply_like=reply_like,
            takes_credit=not reply_like, one_way=packet.one_way,
            bulk=bulk, nbytes=nbytes, frags=frags))

    def on_recv(self, rank: int, packet: Packet, now: float,
                charge: float) -> None:
        """Completion of one host-level reception (after its charge)."""
        reply_like = packet.kind is PacketKind.REPLY or packet.is_reply
        self.events.append(DepEvent(
            kind="recv", rank=rank, t=now, charge=charge,
            blocked=self._take_blocked(rank), xfer=packet.xfer_id,
            peer=packet.src, reply_like=reply_like))

    def on_blocked(self, rank: int, duration: float) -> None:
        """The rank was parked in ``wait_until`` for ``duration`` µs."""
        if duration > 0:
            self._blocked[rank] = self._blocked.get(rank, 0.0) + duration

    def on_mark(self, rank: int, label: str, now: float) -> None:
        """Measurement-region marker (``start`` / ``stop`` on rank 0)."""
        self.events.append(DepEvent(
            kind="mark", rank=rank, t=now,
            blocked=self._take_blocked(rank), label=label))


def record_run(app, n_nodes: int, params=None, knobs=None, seed: int = 0,
               window: Optional[int] = None,
               window_scope: str = "per-destination",
               run_limit_us: Optional[float] = None,
               livelock_limit: int = 200_000,
               engine: Optional[str] = None):
    """Run ``app`` once with recording on; return ``(graph, result)``.

    The single instrumented simulation that replaces a dial sweep.
    Configuration keywords mirror :class:`~repro.cluster.machine.
    Cluster`; the run itself is bit-identical to an unrecorded run of
    the same configuration.
    """
    from repro.am.layer import DEFAULT_WINDOW
    from repro.cluster.machine import Cluster

    if getattr(app, "open_system", False):
        from repro.cost.predict import UnsupportedGraphError
        raise UnsupportedGraphError(
            f"simcost cannot record open-system app {app.name!r}: "
            "request arrivals come from outside the rank set, so the "
            "closed SPMD dependency graph the replay re-weights does "
            "not exist — run a real serving sweep instead")
    cluster = Cluster(
        n_nodes=n_nodes, params=params, knobs=knobs, seed=seed,
        window=window if window is not None else DEFAULT_WINDOW,
        window_scope=window_scope, run_limit_us=run_limit_us,
        livelock_limit=livelock_limit, engine=engine)
    recorder = DepRecorder()
    result = cluster.run(app, recorder=recorder)
    return recorder.graph, result
