"""The recorded communication dependency DAG ("simcost" graphs).

A :class:`CostGraph` is the durable artifact of one instrumented run:
every host-level communication event (sends, receptions, flow-control
blocking, the measurement markers) in the order the simulator executed
them, together with the machine configuration the run used.  Because
the simulator processes events in nondecreasing simulated time, the
recorded order is a valid topological order of the happens-before DAG:
every dependency of an event (the matching send of a reception, the
reply that returned a window credit) appears earlier in the list.  The
predictor (:mod:`repro.cost.predict`) exploits this: longest-path
evaluation is a single forward scan.

Nodes and edges, concretely:

* a ``send`` event is the completion of one host-level send (request,
  one-way, bulk last fragment, reply, or auto-ack) — program-order
  edge from the previous event on the same rank, plus a window-credit
  edge from the reply/CREDIT that freed its flow-control slot;
* a ``recv`` event is the completion of one host-level reception —
  program-order edge plus a message edge from the matching send,
  weighted by the sender's NIC transmit chain and the wire;
* a ``mark`` event brackets the measured region on rank 0.

Program-order edges carry the *busy* time between events: recorded
elapsed time minus blocked time minus the event's own recorded charge
— the dial-independent compute the replay preserves verbatim.

Graphs round-trip through JSON (``schema: repro-cost-graph-v1``) so
``python -m repro.cost record`` and ``predict`` can run as separate
processes.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.am.tuning import TuningKnobs
from repro.network.loggp import LogGPParams

__all__ = ["DepEvent", "CostGraph", "GRAPH_SCHEMA"]

#: JSON schema tag of serialized graphs.
GRAPH_SCHEMA = "repro-cost-graph-v1"


@dataclass
class DepEvent:
    """One node of the dependency DAG (see the module docstring)."""

    #: ``"send"`` | ``"recv"`` | ``"mark"``.
    kind: str
    rank: int
    #: Recorded completion time of the event (simulated µs).
    t: float
    #: Host charge paid at this event in the recorded run (µs):
    #: ``o_send + delta_o`` for sends, ``o_recv + delta_o`` for recvs.
    charge: float = 0.0
    #: Time this rank spent blocked (parked in ``wait_until``) between
    #: the previous event on this rank and this one (µs).
    blocked: float = 0.0
    #: Transfer id linking sends to their receptions and replies to
    #: their requests (-1 for marks).
    xfer: int = -1
    #: Destination rank for sends, source rank for recvs.
    peer: int = -1
    #: True for replies (short REPLY or bulk ``is_reply``); a send's
    #: reception key is ``(xfer, reply_like)`` since a request and its
    #: reply share one xfer id.
    reply_like: bool = False
    #: True for sends that consumed a flow-control window slot
    #: (requests and non-reply bulk transfers; replies/acks never do).
    takes_credit: bool = False
    #: True for one-way sends (credit returns as a NIC-level CREDIT).
    one_way: bool = False
    #: True for bulk transfers (the send stands for all fragments).
    bulk: bool = False
    #: Logical bytes of the message (bulk: whole transfer).
    nbytes: int = 0
    #: Fragment count of a bulk transfer (1 for short messages).
    frags: int = 1
    #: Marker label (``"start"`` / ``"stop"``) for ``mark`` events.
    label: str = ""

    # -- compact serialisation (graphs can hold 1e5+ events) -------------
    def to_row(self) -> list:
        if self.kind == "mark":
            return ["m", self.rank, self.t, self.blocked, self.label]
        if self.kind == "recv":
            return ["r", self.rank, self.t, self.charge, self.blocked,
                    self.xfer, self.peer, int(self.reply_like)]
        return ["s", self.rank, self.t, self.charge, self.blocked,
                self.xfer, self.peer, int(self.reply_like),
                int(self.takes_credit), int(self.one_way),
                int(self.bulk), self.nbytes, self.frags]

    @classmethod
    def from_row(cls, row: list) -> "DepEvent":
        tag = row[0]
        if tag == "m":
            return cls(kind="mark", rank=row[1], t=row[2],
                       blocked=row[3], label=row[4])
        if tag == "r":
            return cls(kind="recv", rank=row[1], t=row[2], charge=row[3],
                       blocked=row[4], xfer=row[5], peer=row[6],
                       reply_like=bool(row[7]))
        if tag == "s":
            return cls(kind="send", rank=row[1], t=row[2], charge=row[3],
                       blocked=row[4], xfer=row[5], peer=row[6],
                       reply_like=bool(row[7]), takes_credit=bool(row[8]),
                       one_way=bool(row[9]), bulk=bool(row[10]),
                       nbytes=row[11], frags=row[12])
        raise ValueError(f"unknown event row tag {tag!r}")


@dataclass
class CostGraph:
    """One instrumented run's dependency DAG plus its configuration."""

    app_name: str
    n_nodes: int
    #: Baseline machine of the recorded run.
    params: LogGPParams
    #: Dials of the recorded run (the sweep baseline, usually all-zero).
    knobs: TuningKnobs
    window: int
    window_scope: str
    seed: int
    #: Measured runtime of the recorded run (ground truth at the
    #: recorded dials; the predictor's self-check).
    runtime_us: float
    events: List[DepEvent] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        """Event-population summary (for ``describe`` and reports)."""
        sends = sum(1 for e in self.events if e.kind == "send")
        recvs = sum(1 for e in self.events if e.kind == "recv")
        bulk = sum(1 for e in self.events
                   if e.kind == "send" and e.bulk)
        return {"events": len(self.events), "sends": sends,
                "recvs": recvs, "bulk_sends": bulk}

    def describe(self) -> str:
        c = self.counts()
        return (f"CostGraph({self.app_name}, P={self.n_nodes}, "
                f"{c['events']} events: {c['sends']} sends / "
                f"{c['recvs']} recvs / {c['bulk_sends']} bulk, "
                f"runtime {self.runtime_us:.1f}us)")

    # -- JSON round trip ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": GRAPH_SCHEMA,
            "app_name": self.app_name,
            "n_nodes": self.n_nodes,
            "params": dataclasses.asdict(self.params),
            "knobs": dataclasses.asdict(self.knobs),
            "window": self.window,
            "window_scope": self.window_scope,
            "seed": self.seed,
            "runtime_us": self.runtime_us,
            "events": [event.to_row() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CostGraph":
        schema = data.get("schema")
        if schema != GRAPH_SCHEMA:
            raise ValueError(
                f"not a simcost graph (schema {schema!r}, "
                f"expected {GRAPH_SCHEMA!r})")
        return cls(
            app_name=data["app_name"],
            n_nodes=data["n_nodes"],
            params=LogGPParams(**data["params"]),
            knobs=TuningKnobs(**data["knobs"]),
            window=data["window"],
            window_scope=data["window_scope"],
            seed=data["seed"],
            runtime_us=data["runtime_us"],
            events=[DepEvent.from_row(row) for row in data["events"]],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "CostGraph":
        return cls.from_dict(json.loads(text))
