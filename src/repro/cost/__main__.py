"""Entry point for ``python -m repro.cost``."""

import sys

from repro.cost.cli import main

if __name__ == "__main__":
    sys.exit(main())
