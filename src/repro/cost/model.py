"""Closed-form LogGP edge costs for the symbolic analyzer.

Every edge weight of the replayed DAG is a closed-form expression in
the paper's four dials.  :class:`DialedCost` materialises those
expressions at one ``(params, knobs)`` point, mirroring the charging
code exactly:

* host edges (``repro.am.layer``): a send costs ``o_send + delta_o``,
  a reception ``o_recv + delta_o``;
* NIC transmit edges (``repro.network.nic``): per fragment, a
  pre-injection DMA of ``delta_occ + size * G`` (bulk only; short
  packets are staged by the host as part of ``o``), then a
  post-injection stall of ``max(0, g - pre) + delta_g`` plus
  ``size * delta_G`` for bulk — the short-vs-bulk rule of
  ``network/loggp.py`` (Section 5.4: small messages are never slowed
  by the bandwidth dial);
* wire edges: ``L + delta_L`` — the baseline fabric latency plus the
  receiving NIC's delay queue, which applies to *every* packet,
  including flow-control CREDITs.

Each form is linear in its dial, so predicted runtime — a max over
path sums of these forms — is piecewise-linear in every dial: the
property :func:`repro.cost.predict.latency_tolerance` exploits.

Collective phases need no special casing in the replay (their
constituent AMs are recorded like any others), but
:func:`collective_phase_cost` exposes the matching closed form from
``coll/model.py`` so reports can cross-check whole recorded phases
against the analytical collective model.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.am.tuning import TuningKnobs
from repro.network.loggp import LogGPParams
from repro.network.packet import BULK_FRAGMENT_BYTES

__all__ = ["DialedCost", "collective_phase_cost"]


class DialedCost:
    """All edge-cost forms evaluated at one ``(params, knobs)`` point."""

    __slots__ = ("params", "knobs", "send_charge", "recv_charge", "wire",
                 "_gap", "_delta_g", "_Gap", "_delta_G", "_delta_occ")

    def __init__(self, params: LogGPParams, knobs: TuningKnobs) -> None:
        self.params = params
        self.knobs = knobs
        #: Host time per send / reception (``o + delta_o``).
        self.send_charge = params.send_overhead + knobs.delta_o
        self.recv_charge = params.recv_overhead + knobs.delta_o
        #: Injection-to-valid time per packet (``L + delta_L``).
        self.wire = params.latency + knobs.delta_L
        self._gap = params.gap
        self._delta_g = knobs.delta_g
        self._Gap = params.Gap
        self._delta_G = knobs.delta_G
        self._delta_occ = knobs.delta_occ

    def tx_cycle(self, size_bytes: int, bulk: bool) -> Tuple[float, float]:
        """One transmit-context cycle: ``(pre_injection, post_stall)``.

        Mirrors ``Nic._pre_injection_time`` / ``_post_injection_stall``
        term for term.
        """
        pre = self._delta_occ
        if bulk:
            pre += size_bytes * self._Gap
        stall = max(0.0, self._gap - pre) + self._delta_g
        if bulk:
            stall += size_bytes * self._delta_G
        return pre, stall

    @staticmethod
    def fragment_sizes(nbytes: int) -> List[int]:
        """Fragment sizes of a bulk transfer, as the AM layer cuts it."""
        count = max(1, math.ceil(nbytes / BULK_FRAGMENT_BYTES))
        sizes = [BULK_FRAGMENT_BYTES] * (count - 1)
        sizes.append(max(1, nbytes - BULK_FRAGMENT_BYTES * (count - 1)))
        return sizes


def collective_phase_cost(primitive: str, algo: str, n_ranks: int,
                          nbytes: int, params: LogGPParams,
                          knobs: TuningKnobs, bulk: bool = False) -> float:
    """Closed-form LogGP cost of one collective phase.

    A thin dial-aware wrapper over :func:`repro.coll.model.
    estimate_cost` — the same analytical forms the tuned-collectives
    tier selects schedules with — for cross-checking recorded
    collective phases against the model.
    """
    from repro.coll.model import estimate_cost
    return estimate_cost(primitive, algo, n_ranks, nbytes, params,
                         knobs=knobs, bulk=bulk)
