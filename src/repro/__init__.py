"""repro — reproduction of Martin et al., *Effects of Communication Latency,
Overhead, and Bandwidth in a Cluster Architecture* (ISCA 1997).

The package provides a discrete-event cluster simulator whose network layer
implements the LogGP abstract machine, an Active Message layer with the
paper's four independent tuning knobs (latency ``L``, overhead ``o``,
per-message gap ``g``, per-byte Gap ``G``), a Split-C-style global address
space, the full ten-application benchmark suite, the calibration
microbenchmarks, the analytical sensitivity models, and the experiment
harness that regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import Cluster, LogGPParams, TuningKnobs
    from repro.apps import RadixSort

    cluster = Cluster(n_nodes=32, params=LogGPParams.berkeley_now())
    result = cluster.run(RadixSort(keys_per_proc=2048))
    print(result.runtime_us, result.stats.total_messages)
"""

from repro.network.loggp import LogGPParams
from repro.am.tuning import TuningKnobs
from repro.cluster.machine import Cluster, RunResult
from repro.cluster.node import CostModel

__version__ = "1.0.0"

__all__ = ["LogGPParams", "TuningKnobs", "Cluster", "RunResult",
           "CostModel", "__version__"]
