"""Distributed locks with try/retry semantics.

Split-C/AM blocking locks are implemented as a *test-and-set at the home
node*: the requester sends a short request; the home's handler either
grants the lock or denies it, and a denied requester simply retries.
Under high overhead every retry costs ``2 o`` at the requester and ``2 o``
at the home node, so contended homes saturate servicing futile retries --
the mechanism behind Barnes' livelock in Section 5.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

__all__ = ["DistributedLock", "acquire", "release"]


@dataclass(frozen=True)
class DistributedLock:
    """A named lock homed on one rank.

    All ranks referring to the same ``(home_rank, lock_id)`` pair contend
    for the same lock.
    """

    home_rank: int
    lock_id: int


def acquire(proc: "Proc", lock: DistributedLock,  # noqa: F821
            retry_backoff_us: float = 1.0) -> Generator:
    """Blocking acquire: try, and on denial retry until granted.

    Each failed attempt is recorded (the paper instruments exactly this
    to diagnose the livelock) and checked against the run's livelock
    limit.
    """
    while True:
        if lock.home_rank == proc.rank:
            # Local test-and-set: atomic because nothing yields inside.
            held = proc.lock_table.get(lock.lock_id, False)
            if not held:
                proc.lock_table[lock.lock_id] = True
            granted = not held
            yield from proc.compute(proc.cost.ops(5))
        else:
            granted = yield from proc.am.rpc(
                lock.home_rank, "_gas_lock_try", lock.lock_id)
        if granted:
            if proc.sanitizer is not None:
                proc.sanitizer.on_lock_acquired(proc.rank, lock)
            return
        if proc.sanitizer is not None:
            # Record the pursuit before the livelock budget can trip,
            # so a lock-cycle diagnosis sees this rank's edge.
            proc.sanitizer.on_lock_wait(proc.rank, lock)
        proc.note_failed_lock()
        if retry_backoff_us > 0:
            yield from proc.compute(retry_backoff_us)
        # Service incoming traffic between attempts; in particular a
        # spinner on a *local* lock must still process the release
        # message (and grant/deny others) or the whole cluster wedges.
        yield from proc.poll()


def release(proc: "Proc", lock: DistributedLock) -> Generator:
    """Release a held lock (fire-and-forget to the home node)."""
    if proc.sanitizer is not None:
        proc.sanitizer.on_lock_released(proc.rank, lock)
    if lock.home_rank == proc.rank:
        if not proc.lock_table.get(lock.lock_id, False):
            raise RuntimeError(
                f"rank {proc.rank} released lock {lock.lock_id} "
                "it does not hold")
        proc.lock_table[lock.lock_id] = False
        yield from proc.compute(proc.cost.ops(5))
        return
    yield from proc.am.send_request(
        lock.home_rank, "_gas_lock_release", lock.lock_id)
