"""A Split-C-style global address space over Active Messages.

Split-C provides a global address space on distributed memory: blocking
reads, pipelined (split-phase) writes with ``sync``, bulk gets/stores,
barriers, and locks — all compiled down to Active Messages.  This package
is the equivalent layer for the simulated cluster:

* :mod:`repro.gas.runtime` -- :class:`Proc`, the per-rank SPMD context
  applications program against.
* :mod:`repro.gas.memory` -- :class:`GlobalArray` distributed arrays.
* :mod:`repro.gas.collectives` -- dissemination barrier, binomial-tree
  broadcast and reductions.
* :mod:`repro.gas.sync` -- distributed locks with try/retry semantics
  (the source of Barnes' livelock under high overhead).
"""

from repro.gas.memory import GlobalArray
from repro.gas.pointers import GlobalRef
from repro.gas.runtime import LivelockError, Proc
from repro.gas.sync import DistributedLock

__all__ = ["Proc", "GlobalArray", "GlobalRef", "DistributedLock",
           "LivelockError"]
