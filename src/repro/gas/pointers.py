"""Global pointers — Split-C's signature abstraction.

A Split-C global pointer names a (processor, local address) pair; it can
be dereferenced from anywhere (paying the full communication cost when
remote), compared, and advanced with pointer arithmetic.  Here a
:class:`GlobalRef` names an element of a :class:`~repro.gas.memory.
GlobalArray`; arithmetic follows the array's layout, so ``ref + 1`` on a
cyclic array hops to the next processor, exactly like a spread pointer
in Split-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.gas.memory import GlobalArray

__all__ = ["GlobalRef"]


@dataclass(frozen=True)
class GlobalRef:
    """A global pointer into a distributed array."""

    array: GlobalArray
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.array.length:
            raise IndexError(
                f"global pointer outside {self.array.name}"
                f"[{self.array.length}]: {self.index}")

    # -- locality -----------------------------------------------------------
    @property
    def owner(self) -> int:
        """The processor whose memory holds the referent."""
        owner, _local = self.array.owner_of(self.index)
        return owner

    @property
    def local_index(self) -> int:
        """Offset of the referent within the owner's local part."""
        _owner, local = self.array.owner_of(self.index)
        return local

    def is_local_to(self, rank: int) -> bool:
        """Whether dereferencing from ``rank`` stays in local memory."""
        return self.owner == rank

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, offset: int) -> "GlobalRef":
        return GlobalRef(self.array, self.index + offset)

    def __sub__(self, other) -> Any:
        if isinstance(other, GlobalRef):
            if other.array.array_id != self.array.array_id:
                raise ValueError(
                    "pointer difference across different arrays")
            return self.index - other.index
        return GlobalRef(self.array, self.index - other)

    def __lt__(self, other: "GlobalRef") -> bool:
        if other.array.array_id != self.array.array_id:
            raise ValueError("pointer comparison across arrays")
        return self.index < other.index

    # -- dereference -----------------------------------------------------------
    def read(self, proc: "Proc") -> Generator:  # noqa: F821
        """Blocking dereference (``x := *p`` in Split-C)."""
        value = yield from proc.read(self.array, self.index)
        return value

    def write(self, proc: "Proc", value: Any,  # noqa: F821
              mode: str = "put") -> Generator:
        """Split-phase assignment (``*p := x``); see ``proc.sync()``."""
        yield from proc.write(self.array, self.index, value, mode=mode)

    def __repr__(self) -> str:
        return (f"<GlobalRef {self.array.name}[{self.index}] "
                f"on rank {self.owner}>")
