"""Distributed global arrays (the Split-C spread array equivalent).

A :class:`GlobalArray` is declared collectively (every rank calls
:meth:`~repro.gas.runtime.Proc.allocate` in the same order); each rank
stores its local part as a numpy array.  Element ownership follows a
block or cyclic layout.  Reads, writes, and bulk transfers on the array
go through the owning node's Active Message handlers, so every remote
access pays the full LogGP cost.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["GlobalArray", "ITEM_BYTES"]

#: Simulated size of one array element on the wire (32-bit words, as the
#: paper's sort keys).
ITEM_BYTES = 4


class GlobalArray:
    """Metadata of a distributed array; storage lives on each rank.

    Do not construct directly — use ``proc.allocate(length, ...)``.
    """

    def __init__(self, array_id: int, length: int, n_ranks: int,
                 layout: str = "block", dtype: str = "int64",
                 item_bytes: int = ITEM_BYTES, name: str = "") -> None:
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        if layout not in ("block", "cyclic"):
            raise ValueError(f"unknown layout {layout!r}")
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.array_id = array_id
        self.length = length
        self.n_ranks = n_ranks
        self.layout = layout
        self.dtype = dtype
        self.item_bytes = item_bytes
        self.name = name or f"garray{array_id}"
        # Block layout: first `remainder` ranks get `base + 1` elements.
        self._base = length // n_ranks
        self._remainder = length % n_ranks

    # -- ownership ---------------------------------------------------------
    def local_length(self, rank: int) -> int:
        """Number of elements rank ``rank`` stores."""
        if self.layout == "block":
            return self._base + (1 if rank < self._remainder else 0)
        count = self.length // self.n_ranks
        if rank < self.length % self.n_ranks:
            count += 1
        return count

    def local_start(self, rank: int) -> int:
        """Global index of rank's first element (block layout only)."""
        if self.layout != "block":
            raise ValueError("local_start is only defined for block layout")
        return rank * self._base + min(rank, self._remainder)

    def owner_of(self, index: int) -> Tuple[int, int]:
        """``(owner_rank, local_index)`` for global ``index``."""
        if not 0 <= index < self.length:
            raise IndexError(
                f"index {index} out of range for {self.name}"
                f"[{self.length}]")
        if self.layout == "cyclic":
            return index % self.n_ranks, index // self.n_ranks
        # Block layout.
        wide = self._base + 1
        boundary = self._remainder * wide
        if index < boundary:
            return index // wide, index % wide
        offset = index - boundary
        return (self._remainder + offset // self._base
                if self._base else self._remainder,
                offset % self._base if self._base else 0)

    def owner_of_range(self, start: int, count: int) -> Tuple[int, int]:
        """Owner of a contiguous run; the run must not cross ranks."""
        if count <= 0:
            raise ValueError(f"count must be > 0, got {count}")
        first_owner, first_local = self.owner_of(start)
        last_owner, _last_local = self.owner_of(start + count - 1)
        if first_owner != last_owner:
            raise ValueError(
                f"range [{start}, {start + count}) of {self.name} spans "
                f"ranks {first_owner}..{last_owner}; split the transfer")
        return first_owner, first_local

    def make_local_storage(self, rank: int) -> np.ndarray:
        """Allocate this rank's backing store."""
        return np.zeros(self.local_length(rank), dtype=self.dtype)

    def transfer_bytes(self, count: int) -> int:
        """Wire size of ``count`` elements."""
        return max(1, count * self.item_bytes)

    def element_name(self, index: int) -> str:
        """Human-readable name of one element, for sanitizer reports."""
        return f"{self.name}[{index}]"

    def __repr__(self) -> str:
        return (f"<GlobalArray {self.name} len={self.length} "
                f"{self.layout} over {self.n_ranks} ranks>")
