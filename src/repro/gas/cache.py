"""A software-managed read cache over a global array.

The paper's applications do not get hardware coherence — "a number of
the applications perform application-specific software caching" (P-Ray
and Barnes manage fixed-size caches of remote objects; Barnes also
caches tree cells during the read-only force phase).  This is that
pattern, extracted: a per-processor LRU cache of remote elements,
fetched with bulk gets, with hit/miss accounting.

The cache is only correct while the cached region is read-only (as in
P-Ray's scene and Barnes' interaction phase); call :meth:`invalidate`
at phase boundaries when the underlying data changes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Generator

from repro.gas.memory import GlobalArray

__all__ = ["SoftwareCache"]


class SoftwareCache:
    """Fixed-capacity LRU cache of one global array's remote elements.

    Parameters
    ----------
    array:
        The (read-only while cached) global array.
    capacity:
        Maximum cached elements; the oldest unused entry is evicted.
    """

    def __init__(self, array: GlobalArray, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.array = array
        self.capacity = capacity
        self._entries: "OrderedDict[int, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.local_accesses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits over all remote accesses (local accesses excluded)."""
        remote = self.hits + self.misses
        return self.hits / remote if remote else 0.0

    def read(self, proc: "Proc", index: int) -> Generator:  # noqa: F821
        """Cached blocking read of ``array[index]``.

        Local elements go straight to memory (a processor never caches
        its own storage); remote hits cost a couple of table ops;
        remote misses do a bulk get and insert with LRU eviction.
        """
        owner, local_index = self.array.owner_of(index)
        if owner == proc.rank:
            self.local_accesses += 1
            yield from proc.compute(proc.cost.ops(1))
            return proc.local(self.array)[local_index]
        if index in self._entries:
            self.hits += 1
            self._entries.move_to_end(index)
            yield from proc.compute(proc.cost.ops(2))
            return self._entries[index]
        self.misses += 1
        values = yield from proc.bulk_get(self.array, index, 1)
        value = values[0]
        self._entries[index] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return value

    def invalidate(self, index: int = None) -> None:
        """Drop one entry (or everything) when the data changes."""
        if index is None:
            self._entries.clear()
        else:
            self._entries.pop(index, None)

    def stats_row(self) -> dict:
        """Flat summary for reporting."""
        return {
            "capacity": self.capacity,
            "resident": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 3),
        }
