"""Collective operations built from Active Messages.

* barrier -- dissemination algorithm: ``ceil(log2 P)`` rounds, each rank
  sending one short message per round; all ranks leave within one round
  trip of each other.
* broadcast / reduce -- binomial trees.
* allreduce -- reduce to rank 0 followed by broadcast (2·ceil(log2 P)
  message rounds; every rank gets the reduced value).

Every collective instance is tagged with a per-type epoch counter that
all ranks advance identically (SPMD order), so back-to-back collectives
never confuse each other's messages.

These are the *legacy* single-schedule primitives — the fixed-policy
defaults of :mod:`repro.coll`, which registers them alongside
alternative algorithms and re-exports them as ``legacy_barrier`` /
``legacy_broadcast`` / ``legacy_reduce`` / ``legacy_allreduce``.  New
call sites should go through :mod:`repro.coll` (or the ``Proc``
methods, which dispatch there).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

__all__ = ["barrier", "broadcast", "reduce", "allreduce"]


def _rounds(n_ranks: int) -> int:
    rounds = 0
    while (1 << rounds) < n_ranks:
        rounds += 1
    return rounds


def barrier(proc: "Proc") -> Generator:  # noqa: F821
    """Dissemination barrier across all ranks."""
    n = proc.n_ranks
    if n > 1:
        epoch = proc.next_epoch("barrier")
        for rnd in range(_rounds(n)):
            partner = (proc.rank + (1 << rnd)) % n
            token = (epoch, rnd)
            yield from proc.am.send_request(
                partner, "_gas_barrier", token)
            wait = None if proc.sanitizer is None else \
                ("barrier", ((proc.rank - (1 << rnd)) % n,),
                 f"barrier epoch {epoch} round {rnd}")
            yield from proc.am.wait_until(
                lambda t=token: t in proc.barrier_tokens, wait=wait)
            proc.barrier_tokens.discard(token)
    if proc.stats is not None:
        proc.stats.on_barrier(proc.rank)


def broadcast(proc: "Proc", value: Any = None, root: int = 0,
              size: int = 32, bulk: bool = False) -> Generator:  # noqa: F821
    """Binomial-tree broadcast; returns the broadcast value on all ranks.

    ``size`` is the simulated wire size of the value; with ``bulk=True``
    the value moves as a bulk transfer (for splitter tables etc.).
    """
    n = proc.n_ranks
    epoch = proc.next_epoch("bcast")
    if n == 1:
        return value
    vrank = (proc.rank - root) % n
    key = ("bcast", epoch)
    if vrank != 0:
        wait = None
        if proc.sanitizer is not None:
            # The binomial-tree parent: clear the top set bit of vrank.
            parent_v = vrank - (1 << (vrank.bit_length() - 1))
            parent = (parent_v + root) % n
            wait = ("collective", (parent,), f"bcast epoch {epoch}")
        yield from proc.am.wait_until(
            lambda: key in proc.collective_box, wait=wait)
        value = proc.collective_box.pop(key)
    # Forward down the binomial tree: the child spanning the largest
    # subtree first, so deep subtrees start as early as possible.
    top = _rounds(n)
    for k in reversed(range(top)):
        peer = vrank + (1 << k)
        if vrank < (1 << k) and peer < n:
            dst = (peer + root) % n
            if bulk:
                yield from proc.am.bulk_store(
                    dst, "_gas_bcast", (epoch, value), max(1, size))
            else:
                yield from proc.am.send_request(
                    dst, "_gas_bcast", (epoch, value), size=size)
    return value


def reduce(proc: "Proc", value: Any,  # noqa: F821
           op: Callable[[Any, Any], Any], root: int = 0,
           size: int = 32) -> Generator:
    """Binomial-tree reduction; the result lands on ``root`` (others get
    ``None``)."""
    n = proc.n_ranks
    epoch = proc.next_epoch("reduce")
    if n == 1:
        return value
    vrank = (proc.rank - root) % n
    partial = value
    for k in range(_rounds(n)):
        bit = 1 << k
        if vrank & bit:
            dst = ((vrank - bit) + root) % n
            yield from proc.am.send_request(
                dst, "_gas_reduce", (epoch, k, partial), size=size)
            return None
        peer = vrank + bit
        if peer < n:
            key = ("reduce", epoch, k)
            wait = None if proc.sanitizer is None else \
                ("collective", ((peer + root) % n,),
                 f"reduce epoch {epoch} round {k}")
            yield from proc.am.wait_until(
                lambda kk=key: kk in proc.collective_box, wait=wait)
            partial = op(partial, proc.collective_box.pop(key))
    return partial


def allreduce(proc: "Proc", value: Any,  # noqa: F821
              op: Callable[[Any, Any], Any], size: int = 32) -> Generator:
    """Reduce to rank 0, then broadcast the result to everyone."""
    total = yield from reduce(proc, value, op, root=0, size=size)
    result = yield from broadcast(proc, total, root=0, size=size)
    return result
