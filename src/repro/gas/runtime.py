"""The per-rank SPMD execution context.

A :class:`Proc` is what application code programs against: it bundles the
rank id, the node (CPU cost model, disks), the Active Message endpoint,
the global-address-space operations, collectives, and locks.  One Proc
exists per node per run; the application's ``run_rank(proc)`` generator
executes as that node's host process.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Any, Dict, Generator, Iterable, List, Optional, Set

import numpy as np

from repro.am.layer import AmLayer, HandlerTable
from repro.cluster.node import Node
from repro.gas import sync
from repro.gas.memory import GlobalArray
from repro.gas.sync import DistributedLock
from repro.instruments.stats import ClusterStats
from repro.sim import Simulator

__all__ = ["Proc", "LivelockError", "register_gas_handlers"]

#: Default per-rank cap on failed lock attempts before a run is declared
#: livelocked (the paper reports Barnes "does not complete" past a point).
DEFAULT_LIVELOCK_LIMIT = 200_000


class LivelockError(RuntimeError):
    """A run exceeded its failed-lock-attempt budget (Barnes livelock)."""


class Proc:
    """One SPMD rank: the application-facing API of the whole substrate."""

    def __init__(self, sim: Simulator, rank: int, n_ranks: int, node: Node,
                 am: AmLayer, stats: Optional[ClusterStats] = None,
                 seed: int = 0,
                 livelock_limit: int = DEFAULT_LIVELOCK_LIMIT,
                 sanitizer: Optional["Sanitizer"] = None,  # noqa: F821
                 coll_tuner: Optional[Any] = None) -> None:
        self.sim = sim
        self.rank = rank
        self.n_ranks = n_ranks
        self.node = node
        self.am = am
        self.stats = stats
        self.livelock_limit = livelock_limit
        self.sanitizer = sanitizer
        #: The cluster's collective tuning policy (``None`` -> the fixed
        #: legacy schedules); consulted by ``repro.coll.api`` dispatch.
        self.coll_tuner = coll_tuner
        #: Owner rank -> count of unacknowledged writes toward it; kept
        #: only under the sanitizer, for sync() wait-for annotations.
        self._pending_write_dsts: Dict[int, int] = {}
        #: Deterministic per-rank random stream for application use.
        self.rng = random.Random(seed * 1_000_003 + rank)
        #: Application-local scratch space (handlers reach it as
        #: ``am.host.state``).
        self.state: Dict[str, Any] = {}
        # Global address space bookkeeping.
        self._arrays: Dict[int, np.ndarray] = {}
        self._array_meta: Dict[int, GlobalArray] = {}
        self._next_array_id = 0
        self._pending_writes = 0
        # Collectives and locks.
        self._epochs: defaultdict = defaultdict(int)
        self.barrier_tokens: Set[tuple] = set()
        self.collective_box: Dict[tuple, Any] = {}
        self.lock_table: Dict[int, bool] = {}
        self._failed_locks = 0

    # -- identity ------------------------------------------------------------
    @property
    def cost(self):
        """The node's CPU cost model."""
        return self.node.cost

    def next_epoch(self, kind: str) -> int:
        """Advance and return the epoch counter for a collective type."""
        self._epochs[kind] += 1
        return self._epochs[kind]

    # -- computation -----------------------------------------------------------
    def compute(self, us: float,
                poll_every_us: Optional[float] = None) -> Generator:
        """Charge ``us`` microseconds of local computation.

        With ``poll_every_us`` the computation is chopped into chunks with
        a network poll between chunks, the way long Split-C compute loops
        service incoming requests.
        """
        if us < 0:
            raise ValueError(f"negative compute time: {us}")
        self.node.compute_us += us
        if poll_every_us is None or poll_every_us >= us:
            if us > 0:
                yield self.sim.timeout(us)
            return
        if poll_every_us <= 0:
            raise ValueError("poll_every_us must be > 0")
        remaining = us
        while remaining > 0:
            chunk = min(poll_every_us, remaining)
            yield self.sim.timeout(chunk)
            remaining -= chunk
            yield from self.am.poll()

    def poll(self) -> Generator:
        """Service any pending incoming messages."""
        yield from self.am.poll()

    # -- global address space ----------------------------------------------------
    def allocate(self, length: int, layout: str = "block",
                 dtype: str = "int64", item_bytes: int = 4,
                 name: str = "") -> GlobalArray:
        """Collectively declare a global array (all ranks, same order)."""
        array_id = self._next_array_id
        self._next_array_id += 1
        meta = GlobalArray(array_id, length, self.n_ranks, layout=layout,
                           dtype=dtype, item_bytes=item_bytes, name=name)
        self._array_meta[array_id] = meta
        self._arrays[array_id] = meta.make_local_storage(self.rank)
        return meta

    def local(self, array: GlobalArray) -> np.ndarray:
        """This rank's local part of ``array`` (direct numpy access)."""
        return self._arrays[array.array_id]

    def read(self, array: GlobalArray, index: int) -> Generator:
        """Blocking read of a global element (Split-C ``x := g[i]``)."""
        owner, local_index = array.owner_of(index)
        if self.sanitizer is not None:
            self.sanitizer.on_access(self.rank, array, index, "read")
        if owner == self.rank:
            yield from self.compute(self.cost.ops(1))
            return self._arrays[array.array_id][local_index]
        value = yield from self.am.rpc(
            owner, "_gas_read", (array.array_id, local_index),
            is_read=True)
        return value

    def write(self, array: GlobalArray, index: int, value: Any,
              mode: str = "put") -> Generator:
        """Pipelined (split-phase) write; completion observed by
        :meth:`sync`.  ``mode='add'`` accumulates, ``mode='min'`` keeps
        the smaller value (monotone hooking for connected components)."""
        if mode not in ("put", "add", "min"):
            raise ValueError(f"unknown write mode {mode!r}")
        owner, local_index = array.owner_of(index)
        if self.sanitizer is not None:
            self.sanitizer.on_access(self.rank, array, index, mode)
        if owner == self.rank:
            _apply_write(self._arrays[array.array_id], local_index,
                         value, mode)
            yield from self.compute(self.cost.ops(1))
            return
        self._pending_writes += 1
        yield from self.am.send_request(
            owner, "_gas_write",
            (array.array_id, local_index, value, mode),
            on_reply=self._ack_tracker(owner))

    def _write_acked(self, _payload: Any) -> None:
        self._pending_writes -= 1

    def _ack_tracker(self, owner: int):
        """The on-reply callback for a split-phase write toward ``owner``.

        Flag off this is the shared :meth:`_write_acked` bound method
        (no allocation); under the sanitizer a closure also maintains
        the per-destination count that sync() annotations report.
        """
        if self.sanitizer is None:
            return self._write_acked
        dsts = self._pending_write_dsts
        dsts[owner] = dsts.get(owner, 0) + 1

        def acked(_payload: Any) -> None:
            self._pending_writes -= 1
            remaining = dsts[owner] - 1
            if remaining:
                dsts[owner] = remaining
            else:
                del dsts[owner]

        return acked

    @property
    def pending_writes(self) -> int:
        """Writes issued but not yet acknowledged."""
        return self._pending_writes

    def sync(self) -> Generator:
        """Wait for all outstanding writes to be acknowledged
        (Split-C's ``sync()``)."""
        wait = None
        if self.sanitizer is not None and self._pending_writes:
            wait = ("sync", tuple(sorted(self._pending_write_dsts)),
                    f"{self._pending_writes} unacknowledged write(s)")
        yield from self.am.wait_until(
            lambda: self._pending_writes == 0, wait=wait)

    def bulk_get(self, array: GlobalArray, start: int,
                 count: int) -> Generator:
        """Blocking bulk read of a contiguous remote run."""
        owner, local_start = array.owner_of_range(start, count)
        if self.sanitizer is not None:
            self.sanitizer.on_range(self.rank, array, start, count,
                                    "bulk_get")
        if owner == self.rank:
            storage = self._arrays[array.array_id]
            values = storage[local_start:local_start + count].copy()
            yield from self.compute(
                self.cost.copy_bytes(count * array.item_bytes))
            return values
        reply = yield from self.am.bulk_rpc(
            owner, "_gas_bulk_get", (array.array_id, local_start, count))
        payload, _nbytes = reply
        return payload

    def bulk_put(self, array: GlobalArray, start: int,
                 values: Iterable[Any]) -> Generator:
        """Split-phase bulk write of a contiguous run; see :meth:`sync`."""
        values = np.asarray(values)
        count = len(values)
        owner, local_start = array.owner_of_range(start, count)
        if self.sanitizer is not None:
            self.sanitizer.on_range(self.rank, array, start, count,
                                    "bulk_put")
        if owner == self.rank:
            storage = self._arrays[array.array_id]
            storage[local_start:local_start + count] = values
            yield from self.compute(
                self.cost.copy_bytes(count * array.item_bytes))
            return
        self._pending_writes += 1
        yield from self.am.bulk_store(
            owner, "_gas_bulk_put",
            (array.array_id, local_start, values),
            array.transfer_bytes(count),
            on_complete=self._ack_tracker(owner))

    # -- collectives -----------------------------------------------------------
    # All collectives dispatch through ``repro.coll`` (imported lazily:
    # the package's registry pulls the legacy ``gas.collectives``
    # schedules back in).  With no tuner configured the dispatch picks
    # exactly the legacy schedules, bit-identical to the pre-coll
    # machine.

    def barrier(self, algo: Optional[str] = None) -> Generator:
        """Barrier over all ranks (default: dissemination)."""
        from repro.coll import api
        yield from api.barrier(self, algo=algo)

    def broadcast(self, value: Any = None, root: int = 0, size: int = 32,
                  bulk: bool = False,
                  algo: Optional[str] = None) -> Generator:
        """Broadcast from ``root``; returns the value on every rank."""
        from repro.coll import api
        result = yield from api.broadcast(
            self, value, root=root, size=size, bulk=bulk, algo=algo)
        return result

    def reduce(self, value: Any, op, root: int = 0,
               size: int = 32, bulk: bool = False,
               algo: Optional[str] = None) -> Generator:
        """Tree reduction to ``root`` (others receive ``None``)."""
        from repro.coll import api
        result = yield from api.reduce(
            self, value, op, root=root, size=size, bulk=bulk, algo=algo)
        return result

    def allreduce(self, value: Any, op, size: int = 32,
                  bulk: bool = False, elementwise: bool = False,
                  algo: Optional[str] = None) -> Generator:
        """Reduction whose result lands on every rank."""
        from repro.coll import api
        result = yield from api.allreduce(
            self, value, op, size=size, bulk=bulk,
            elementwise=elementwise, algo=algo)
        return result

    def gather(self, value: Any, root: int = 0, size: int = 32,
               bulk: bool = False,
               algo: Optional[str] = None) -> Generator:
        """Gather one value per rank to ``root`` (rank-ordered list)."""
        from repro.coll import api
        result = yield from api.gather(
            self, value, root=root, size=size, bulk=bulk, algo=algo)
        return result

    def scatter(self, values: Optional[List[Any]] = None, root: int = 0,
                size: int = 32, bulk: bool = False,
                algo: Optional[str] = None) -> Generator:
        """Scatter ``values[r]`` from ``root``; returns this rank's."""
        from repro.coll import api
        result = yield from api.scatter(
            self, values, root=root, size=size, bulk=bulk, algo=algo)
        return result

    def allgather(self, value: Any, size: int = 32, bulk: bool = False,
                  algo: Optional[str] = None) -> Generator:
        """Gather one value per rank onto every rank."""
        from repro.coll import api
        result = yield from api.allgather(
            self, value, size=size, bulk=bulk, algo=algo)
        return result

    def alltoall(self, values: List[Any], size: int = 32,
                 sizes: Optional[List[int]] = None, bulk: bool = False,
                 dense: bool = False,
                 algo: Optional[str] = None) -> Generator:
        """Personalized all-to-all (``None`` slots send nothing)."""
        from repro.coll import api
        result = yield from api.alltoall(
            self, values, size=size, sizes=sizes, bulk=bulk,
            dense=dense, algo=algo)
        return result

    # -- locks -------------------------------------------------------------------
    def lock(self, lock: DistributedLock,
             retry_backoff_us: float = 1.0) -> Generator:
        """Blocking lock acquire (test-and-set with retry)."""
        yield from sync.acquire(self, lock, retry_backoff_us)

    def unlock(self, lock: DistributedLock) -> Generator:
        """Release a held lock."""
        yield from sync.release(self, lock)

    def note_failed_lock(self) -> None:
        """Record a denied lock attempt; abort the run past the limit."""
        self._failed_locks += 1
        if self.stats is not None:
            self.stats.on_failed_lock(self.rank)
        if self._failed_locks > self.livelock_limit:
            raise LivelockError(
                f"rank {self.rank} exceeded {self.livelock_limit} failed "
                "lock attempts; declaring livelock (the paper reports "
                "Barnes does not complete past this regime)")

    # -- misc ----------------------------------------------------------------------
    def disk(self, index: int = 0):
        """The node's ``index``-th disk."""
        return self.node.disk(index)

    def __repr__(self) -> str:
        return f"<Proc rank={self.rank}/{self.n_ranks}>"


# ---------------------------------------------------------------------------
# Global-address-space Active Message handlers.
# ---------------------------------------------------------------------------

def _gas_read(am: AmLayer, packet) -> Generator:
    """Serve a blocking remote read: reply with the element value."""
    proc: Proc = am.host
    array_id, local_index = packet.payload
    value = proc._arrays[array_id][local_index]
    yield from am.reply(value)


def _apply_write(storage, local_index: int, value: Any, mode: str) -> None:
    if mode == "add":
        storage[local_index] += value
    elif mode == "min":
        if value < storage[local_index]:
            storage[local_index] = value
    else:
        storage[local_index] = value


def _gas_write(am: AmLayer, packet) -> Generator:
    """Apply a remote write/accumulate/min; the auto-ack completes it."""
    proc: Proc = am.host
    array_id, local_index, value, mode = packet.payload
    _apply_write(proc._arrays[array_id], local_index, value, mode)
    return
    yield  # pragma: no cover


def _gas_bulk_get(am: AmLayer, packet) -> Generator:
    """Serve a bulk get: reply with a bulk transfer of the run."""
    proc: Proc = am.host
    array_id, local_start, count = packet.payload
    meta = proc._array_meta[array_id]
    storage = proc._arrays[array_id]
    values = storage[local_start:local_start + count].copy()
    yield from am.reply_bulk(values, meta.transfer_bytes(count))


def _gas_bulk_put(am: AmLayer, packet) -> Generator:
    """Land a bulk put into local storage; the auto-ack completes it."""
    proc: Proc = am.host
    array_id, local_start, values = packet.payload
    storage = proc._arrays[array_id]
    storage[local_start:local_start + len(values)] = values
    return
    yield  # pragma: no cover


def _gas_barrier(am: AmLayer, packet) -> None:
    """Record a dissemination-barrier token."""
    am.host.barrier_tokens.add(packet.payload)


def _gas_bcast(am: AmLayer, packet) -> None:
    """Deposit a broadcast value for the waiting rank."""
    epoch, value = packet.payload
    am.host.collective_box[("bcast", epoch)] = value


def _gas_reduce(am: AmLayer, packet) -> None:
    """Deposit a reduction partial for the combining rank."""
    epoch, rnd, value = packet.payload
    am.host.collective_box[("reduce", epoch, rnd)] = value


def _gas_lock_try(am: AmLayer, packet) -> Generator:
    """Test-and-set at the lock's home; reply grant or denial."""
    proc: Proc = am.host
    lock_id = packet.payload
    held = proc.lock_table.get(lock_id, False)
    if not held:
        proc.lock_table[lock_id] = True
    yield from am.reply(not held)


def _gas_lock_release(am: AmLayer, packet) -> None:
    """Clear a lock at its home node."""
    am.host.lock_table[packet.payload] = False


def register_gas_handlers(table: HandlerTable) -> None:
    """Install the reserved ``_gas_*`` handlers used by :class:`Proc`,
    plus the ``repro.coll`` deposit handler (every Proc's collectives
    dispatch through that package)."""
    from repro.coll.core import register_coll_handlers
    register_coll_handlers(table)
    table.register("_gas_read", _gas_read)
    table.register("_gas_write", _gas_write)
    table.register("_gas_bulk_get", _gas_bulk_get)
    table.register("_gas_bulk_put", _gas_bulk_put)
    table.register("_gas_barrier", _gas_barrier)
    table.register("_gas_bcast", _gas_bcast)
    table.register("_gas_reduce", _gas_reduce)
    table.register("_gas_lock_try", _gas_lock_try)
    table.register("_gas_lock_release", _gas_lock_release)
