"""Radb: the bulk-message restructuring of radix sort.

Identical to :class:`~repro.apps.radix.RadixSort` except for the
distribution phase: after the global histogram, each processor groups
its keys by *destination processor* and ships each group as a single
bulk message of (position, key) pairs; the destination's handler
scatters them into its local block.  Per pass, each processor sends at
most ``P - 1`` bulk messages instead of one short message per key
(Section 4.1's "Radb").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Generator, List

import numpy as np

from repro.am.layer import HandlerTable
from repro.apps.radix import RadixSort
from repro.gas.runtime import Proc

__all__ = ["RadixBulk"]

#: Wire bytes per routed (position, key) pair.
PAIR_BYTES = 8


class RadixBulk(RadixSort):
    """Bulk-message radix sort (the paper's ``Radb``)."""

    name = "Radb"

    #: Radb is the restructured-for-bulk program: its histogram phase
    #: packs the whole counter table into a single message per ring hop,
    #: unlike Radix's fine-grained cyclic shift.
    DEFAULT_SCAN_BATCH = 256

    @classmethod
    def scaled(cls, scale: float = 1.0) -> "RadixBulk":
        return cls(keys_per_proc=max(16, int(2048 * scale)))

    def register_handlers(self, table: HandlerTable) -> None:
        super().register_handlers(table)
        table.register("radb_scatter", _scatter_handler)

    def _one_pass(self, proc: Proc, state: dict, src, dst,
                  pass_index: int) -> Generator:
        shift = pass_index * self.radix_bits
        mask = self.n_buckets - 1
        local = proc.local(src)
        digits = (local >> shift) & mask

        counts = np.bincount(digits, minlength=self.n_buckets)
        yield from proc.compute(proc.cost.keys(len(local)))

        prefix_lower, totals = yield from self._global_histogram(
            proc, state, counts, pass_index)
        bucket_base = np.concatenate(([0], np.cumsum(totals)[:-1]))
        my_base = bucket_base + prefix_lower
        yield from proc.compute(proc.cost.ops(2 * self.n_buckets))

        # Distribution: group (position, key) pairs by destination rank,
        # then one bulk store per destination.
        next_slot = my_base.copy()
        groups = defaultdict(list)
        dst_local = proc.local(dst)
        dst_lo = dst.local_start(proc.rank)
        for key, digit in zip(local.tolist(), digits.tolist()):
            position = int(next_slot[digit])
            next_slot[digit] += 1
            owner, local_index = dst.owner_of(position)
            if owner == proc.rank:
                dst_local[local_index] = key
            else:
                groups[owner].append((local_index, key))
        yield from proc.compute(proc.cost.keys(2 * len(local)))

        completions = {"pending": 0}

        def acked(_payload) -> None:
            completions["pending"] -= 1

        for owner in sorted(groups):
            pairs = groups[owner]
            completions["pending"] += 1
            yield from proc.am.bulk_store(
                owner, "radb_scatter",
                (dst.array_id, pairs), PAIR_BYTES * len(pairs),
                on_complete=acked)
        yield from proc.am.wait_until(
            lambda: completions["pending"] == 0)
        yield from proc.barrier()


def _scatter_handler(am, packet) -> None:
    """Scatter a bulk batch of (local_index, key) pairs into storage."""
    array_id, pairs = packet.payload
    storage = am.host._arrays[array_id]
    for local_index, key in pairs:
        storage[local_index] = key
