"""Radb: the bulk-message restructuring of radix sort.

Identical to :class:`~repro.apps.radix.RadixSort` except for the
distribution phase: after the global histogram, each processor groups
its keys by *destination processor* and ships the groups through one
sparse bulk personalized all-to-all (``repro.coll``); each processor
then scatters the pairs it received into its local block.  Per pass,
each processor sends at most ``P - 1`` bulk messages instead of one
short message per key (Section 4.1's "Radb").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Generator

import numpy as np

from repro.apps.radix import RadixSort
from repro.gas.runtime import Proc

__all__ = ["RadixBulk"]

#: Wire bytes per routed (position, key) pair.
PAIR_BYTES = 8


class RadixBulk(RadixSort):
    """Bulk-message radix sort (the paper's ``Radb``)."""

    name = "Radb"

    #: Radb is the restructured-for-bulk program: its histogram phase
    #: packs the whole counter table into a single message per ring hop,
    #: unlike Radix's fine-grained cyclic shift.
    DEFAULT_SCAN_BATCH = 256

    @classmethod
    def scaled(cls, scale: float = 1.0) -> "RadixBulk":
        return cls(keys_per_proc=max(16, int(2048 * scale)))

    def _one_pass(self, proc: Proc, state: dict, src, dst,
                  pass_index: int) -> Generator:
        shift = pass_index * self.radix_bits
        mask = self.n_buckets - 1
        local = proc.local(src)
        digits = (local >> shift) & mask

        counts = np.bincount(digits, minlength=self.n_buckets)
        yield from proc.compute(proc.cost.keys(len(local)))

        prefix_lower, totals = yield from self._global_histogram(
            proc, state, counts, pass_index)
        bucket_base = np.concatenate(([0], np.cumsum(totals)[:-1]))
        my_base = bucket_base + prefix_lower
        yield from proc.compute(proc.cost.ops(2 * self.n_buckets))

        # Distribution: group (position, key) pairs by destination rank,
        # then one bulk store per destination.
        next_slot = my_base.copy()
        groups = defaultdict(list)
        dst_local = proc.local(dst)
        dst_lo = dst.local_start(proc.rank)
        for key, digit in zip(local.tolist(), digits.tolist()):
            position = int(next_slot[digit])
            next_slot[digit] += 1
            owner, local_index = dst.owner_of(position)
            if owner == proc.rank:
                dst_local[local_index] = key
            else:
                groups[owner].append((local_index, key))
        yield from proc.compute(proc.cost.keys(2 * len(local)))

        # Sparse bulk all-to-all: one message per destination that owns
        # any of this rank's keys (its completion barrier replaces the
        # explicit end-of-pass barrier the handler version needed).
        outgoing = [None] * proc.n_ranks
        wire_sizes = [0] * proc.n_ranks
        for owner in sorted(groups):
            outgoing[owner] = groups[owner]
            wire_sizes[owner] = PAIR_BYTES * len(groups[owner])
        incoming = yield from proc.alltoall(outgoing, sizes=wire_sizes,
                                            bulk=True)
        for sender, pairs in enumerate(incoming):
            if sender == proc.rank or pairs is None:
                continue
            for local_index, key in pairs:
                dst_local[local_index] = key
