"""Microbenchmarks as first-class applications.

The calibration suite (:mod:`repro.calibrate`) runs directly on bare AM
endpoints; these wrap the same access patterns as
:class:`~repro.apps.base.Application` so they go through the full
Cluster runner — picking up statistics, balance matrices, and message
tracing like any real program.  Useful as minimal workloads when
exploring a new machine configuration.

* :class:`PingPong` -- rank 0 ↔ rank 1 blocking echoes; reports RTT.
* :class:`BurstSender` -- every rank fires a fixed-rate or maximal-rate
  burst at its ring neighbour (the Figure 3 pattern, cluster-wide).
* :class:`BulkStream` -- every rank streams bulk data to its neighbour;
  reports achieved bandwidth.
"""

from __future__ import annotations

from typing import Generator, List

from repro.am.layer import HandlerTable
from repro.apps.base import Application
from repro.gas.runtime import Proc

__all__ = ["PingPong", "BurstSender", "BulkStream"]


def _echo(am, packet):
    am.host.state["mb_echoed"] = am.host.state.get("mb_echoed", 0) + 1
    yield from am.reply(packet.payload)


def _sink(am, packet):
    am.host.state.setdefault("mb_received", 0)
    am.host.state["mb_received"] += 1
    return None


class PingPong(Application):
    """Blocking request/response between ranks 0 and 1.

    ``finalize`` returns the mean round trip in µs — the model predicts
    ``2L + 4o`` on an idle machine.
    """

    name = "PingPong"

    def __init__(self, repeats: int = 32, spacing_us: float = 100.0):
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.repeats = repeats
        self.spacing_us = spacing_us

    def register_handlers(self, table: HandlerTable) -> None:
        table.register("mb_echo", _echo)

    def run_rank(self, proc: Proc) -> Generator:
        if proc.n_ranks < 2 or proc.rank > 1:
            return
        if proc.rank == 0:
            total = 0.0
            for i in range(self.repeats):
                yield from proc.compute(self.spacing_us)
                yield from proc.poll()
                start = proc.sim.now
                yield from proc.am.rpc(1, "mb_echo", i)
                total += proc.sim.now - start
            proc.state["rtt_us"] = total / self.repeats
        else:
            # Serve echoes until the pinger has had every round trip.
            yield from proc.am.wait_until(
                lambda: proc.state.get("mb_echoed", 0) >= self.repeats)

    def finalize(self, procs: List[Proc]) -> float:
        return procs[0].state.get("rtt_us", 0.0)


class BurstSender(Application):
    """Every rank sends ``n_messages`` to its ring neighbour, either at
    a fixed pacing interval or flat out (the burst/uniform dichotomy of
    Section 5.2).  ``finalize`` returns the mean initiation interval."""

    name = "BurstSender"

    def __init__(self, n_messages: int = 64, interval_us: float = 0.0):
        if n_messages < 1:
            raise ValueError("n_messages must be >= 1")
        if interval_us < 0:
            raise ValueError("interval_us must be >= 0")
        self.n_messages = n_messages
        self.interval_us = interval_us

    def register_handlers(self, table: HandlerTable) -> None:
        table.register("mb_sink", _sink)

    def run_rank(self, proc: Proc) -> Generator:
        if proc.n_ranks < 2:
            return
        peer = (proc.rank + 1) % proc.n_ranks
        start = proc.sim.now
        for i in range(self.n_messages):
            if self.interval_us:
                yield from proc.compute(self.interval_us)
            yield from proc.poll()
            yield from proc.am.send_request(peer, "mb_sink", i)
        proc.state["interval_us"] = \
            (proc.sim.now - start) / self.n_messages
        yield from proc.am.drain()

    def finalize(self, procs: List[Proc]) -> float:
        intervals = [p.state.get("interval_us", 0.0) for p in procs]
        return sum(intervals) / len(intervals)


class BulkStream(Application):
    """Every rank streams ``total_bytes`` in ``message_bytes`` one-way
    bulk messages to its ring neighbour; ``finalize`` returns the mean
    achieved bandwidth in MB/s."""

    name = "BulkStream"

    def __init__(self, total_bytes: int = 262_144,
                 message_bytes: int = 16_384):
        if total_bytes < message_bytes or message_bytes < 1:
            raise ValueError(
                "need total_bytes >= message_bytes >= 1")
        self.total_bytes = total_bytes
        self.message_bytes = message_bytes

    def register_handlers(self, table: HandlerTable) -> None:
        table.register("mb_bulk_sink", _sink)

    def run_rank(self, proc: Proc) -> Generator:
        if proc.n_ranks < 2:
            return
        peer = (proc.rank + 1) % proc.n_ranks
        start = proc.sim.now
        sent = 0
        while sent < self.total_bytes:
            size = min(self.message_bytes, self.total_bytes - sent)
            yield from proc.am.bulk_oneway(peer, "mb_bulk_sink", None,
                                           size)
            sent += size
        yield from proc.am.drain()
        elapsed = proc.sim.now - start
        proc.state["mb_s"] = sent / elapsed if elapsed > 0 else 0.0

    def finalize(self, procs: List[Proc]) -> float:
        rates = [p.state.get("mb_s", 0.0) for p in procs]
        return sum(rates) / len(rates)
