"""Connected components on a random 2-D mesh (the paper's ``Connect``).

Following Lumetta et al. [33]: the mesh (each lattice edge present with
probability ``connectivity``) is spread across processors as horizontal
strips.  Each processor first collapses its local subgraph with
sequential union-find — pure local compute.  The global phase then
repeatedly *hooks* components across strip boundaries: for each boundary
edge the owning processor chases both endpoints' representatives through
the distributed ``parent`` array (blocking remote reads — Connect is 67%
reads in Table 4) and writes the larger root's parent to the smaller
root (a monotone ``min`` write, so races cannot regress).  Rounds repeat
until a global reduction reports no changes.

Communication is light relative to the local work — the paper notes the
communication/computation ratio is set by the graph size — and irregular
(hot rows produce the blotchy Figure 4h)."""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

import numpy as np

from repro.apps.base import Application
from repro.gas.runtime import Proc

__all__ = ["Connect"]


class Connect(Application):
    """Parallel connected components.

    Parameters
    ----------
    rows_per_proc, cols:
        The mesh is ``(rows_per_proc * P) x cols``.
    connectivity:
        Probability each lattice edge exists (paper: 30%).
    """

    name = "Connect"

    def __init__(self, rows_per_proc: int = 192, cols: int = 64,
                 connectivity: float = 0.3) -> None:
        if rows_per_proc < 1 or cols < 1:
            raise ValueError("rows_per_proc and cols must be >= 1")
        if not 0.0 <= connectivity <= 1.0:
            raise ValueError("connectivity must be within [0, 1]")
        self.rows_per_proc = rows_per_proc
        self.cols = cols
        self.connectivity = connectivity
        self._edges: List[Tuple[int, int]] = []
        self._n_vertices = 0
        self._n_nodes = 0

    @classmethod
    def scaled(cls, scale: float = 1.0) -> "Connect":
        # Rows scale (local work, like the paper's 4M-node graphs);
        # the column count — and with it the boundary-edge traffic —
        # stays fixed, preserving Connect's high compute-to-
        # communication ratio at any scale.
        return cls(rows_per_proc=max(4, int(192 * scale)))

    # -- input ------------------------------------------------------------
    def configure(self, n_nodes: int, seed: int) -> None:
        rng = np.random.RandomState(seed + 0xC0)
        self._n_nodes = n_nodes
        rows = self.rows_per_proc * n_nodes
        self._n_vertices = rows * self.cols
        # Vectorised lattice-edge sampling (right edges, then down
        # edges), matching the original per-cell loop's draw order
        # row-major with the right edge drawn before the down edge.
        vertex = np.arange(rows * self.cols).reshape(rows, self.cols)
        draws = rng.random_sample((rows, self.cols, 2))
        right = (draws[:, :, 0] < self.connectivity)
        right[:, -1] = False
        down = (draws[:, :, 1] < self.connectivity)
        down[-1, :] = False
        right_edges = np.stack(
            [vertex[right], vertex[right] + 1], axis=1)
        down_edges = np.stack(
            [vertex[down], vertex[down] + self.cols], axis=1)
        merged = np.concatenate([right_edges, down_edges])
        # Sort by source vertex so edge order stays row-major.
        merged = merged[np.argsort(merged[:, 0], kind="stable")]
        self._edges = [tuple(edge) for edge in merged.tolist()]

    def _vertex_owner(self, vertex: int) -> int:
        return (vertex // self.cols) // self.rows_per_proc

    def setup_rank(self, proc: Proc) -> Generator:
        parent = proc.allocate(self._n_vertices, name="cc_parent",
                               item_bytes=4)
        local_edges = []
        boundary_edges = []
        for u, v in self._edges:
            owner_u = self._vertex_owner(u)
            owner_v = self._vertex_owner(v)
            if owner_u == proc.rank and owner_v == proc.rank:
                local_edges.append((u, v))
            elif owner_u == proc.rank:
                # Cross-strip edge; the upper strip's owner drives it.
                boundary_edges.append((u, v))
        proc.state["connect"] = {
            "parent": parent,
            "local_edges": local_edges,
            "boundary_edges": boundary_edges,
        }
        return
        yield  # pragma: no cover

    # -- the timed program ------------------------------------------------------
    def run_rank(self, proc: Proc) -> Generator:
        state = proc.state["connect"]
        parent = state["parent"]
        local = proc.local(parent)
        base = parent.local_start(proc.rank)

        # Phase 1: local union-find collapses in-strip components.
        roots = _local_union_find(
            base, len(local), state["local_edges"])
        local[:] = roots
        yield from proc.compute(proc.cost.edges(
            len(state["local_edges"]) + len(local)))
        yield from proc.barrier()

        # Phase 2: global merge rounds with min-hooking.
        while True:
            changed = 0
            for u, v in state["boundary_edges"]:
                root_u = yield from self._find(proc, parent, u)
                root_v = yield from self._find(proc, parent, v)
                if root_u != root_v:
                    high, low = max(root_u, root_v), min(root_u, root_v)
                    yield from proc.write(parent, high, low, mode="min")
                    changed += 1
            yield from proc.sync()
            total = yield from proc.allreduce(changed, lambda a, b: a + b)
            if total == 0:
                break

    def _find(self, proc: Proc, parent, vertex: int) -> Generator:
        """Chase parent pointers (remote blocking reads) to the root."""
        current = vertex
        while True:
            value = yield from proc.read(parent, current)
            value = int(value)
            if value == current:
                return current
            current = value

    # -- results -----------------------------------------------------------------
    def finalize(self, procs: List[Proc]) -> Dict[int, int]:
        parent_meta = procs[0].state["connect"]["parent"]
        gathered = np.concatenate(
            [proc.local(parent_meta) for proc in procs])

        def find(vertex: int) -> int:
            while gathered[vertex] != vertex:
                vertex = int(gathered[vertex])
            return vertex

        labels = {v: find(v) for v in range(self._n_vertices)}
        self._validate(labels)
        return labels

    def _validate(self, labels: Dict[int, int]) -> None:
        """Check against a sequential union-find over the same edges."""
        reference = _local_union_find(0, self._n_vertices, self._edges)
        ref_labels = {v: int(reference[v])
                      for v in range(self._n_vertices)}
        # Two labelings agree iff they induce the same partition.
        seen: Dict[int, int] = {}
        for v in range(self._n_vertices):
            mine, theirs = labels[v], ref_labels[v]
            if mine in seen:
                if seen[mine] != theirs:
                    raise AssertionError(
                        "connected components disagree with the "
                        "sequential reference")
            else:
                seen[mine] = theirs
        if len(set(seen.values())) != len(seen):
            raise AssertionError(
                "parallel run merged components the reference keeps apart")


def _local_union_find(base: int, count: int,
                      edges: List[Tuple[int, int]]) -> np.ndarray:
    """Sequential union-find over vertices [base, base+count); returns
    each vertex's minimum-id representative (global ids)."""
    parent = list(range(count))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges:
        ru, rv = find(u - base), find(v - base)
        if ru != rv:
            if ru < rv:
                parent[rv] = ru
            else:
                parent[ru] = rv
    return np.asarray([find(i) + base for i in range(count)],
                      dtype=np.int64)
