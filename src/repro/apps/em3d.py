"""EM3D: electromagnetic wave propagation on an irregular bipartite graph.

The kernel from Culler et al.'s Split-C paper [13].  An irregular
bipartite graph of E (electric) and H (magnetic) nodes is spread over the
processors; each time step computes every E value as a weighted sum of
its H neighbours, then every H value from its E neighbours.

Two complementary variants, as in the paper:

* ``write`` -- remote dependencies are *pushed*: the graph is augmented
  with boundary (ghost) nodes, and after computing its values each
  processor pipelines writes of the cross-edge values into the
  consumers' ghost slots, then barriers.  A classic bulk-synchronous
  pattern: bursty writes, tolerant of latency.
* ``read`` -- remote dependencies are *pulled* with simple blocking
  reads, one per cross edge, with no ghost nodes: the paper's worst-case
  latency-bound application (97% reads in Table 4).

Graph locality (``pct_remote`` of a node's edges leave the processor,
biased to the neighbouring processor) produces the dark diagonal swath
of Figures 4b/4c.
"""

from __future__ import annotations

import random
from typing import Dict, Generator, List, Tuple

import numpy as np

from repro.apps.base import Application
from repro.gas.runtime import Proc

__all__ = ["EM3D"]


class EM3D(Application):
    """The EM3D kernel.

    Parameters
    ----------
    nodes_per_proc:
        Graph nodes of *each* kind (E and H) per processor.
    degree:
        In-edges per node.
    pct_remote:
        Fraction of edges whose source lives on another processor
        (paper input: 40%).
    steps:
        Time steps to simulate.
    variant:
        ``"write"`` or ``"read"``.
    """

    def __init__(self, nodes_per_proc: int = 24, degree: int = 4,
                 pct_remote: float = 0.4, steps: int = 6,
                 variant: str = "write") -> None:
        if variant not in ("write", "read"):
            raise ValueError(f"unknown EM3D variant {variant!r}")
        if nodes_per_proc < 1 or degree < 1 or steps < 1:
            raise ValueError("nodes_per_proc, degree, steps must be >= 1")
        if not 0.0 <= pct_remote <= 1.0:
            raise ValueError("pct_remote must be within [0, 1]")
        self.nodes_per_proc = nodes_per_proc
        self.degree = degree
        self.pct_remote = pct_remote
        self.steps = steps
        self.variant = variant
        self._edges: Dict[str, List[List[Tuple[int, float]]]] = {}
        self._n_nodes = 0
        self._seed = 0

    name = property(lambda self: f"EM3D({self.variant})")  # type: ignore

    @classmethod
    def scaled(cls, scale: float = 1.0, variant: str = "write") -> "EM3D":
        return cls(nodes_per_proc=max(8, int(24 * scale)), variant=variant)

    # -- input construction ----------------------------------------------------
    def configure(self, n_nodes: int, seed: int) -> None:
        """Build the bipartite graph: for each consumer node, ``degree``
        source nodes of the other kind, mostly local, remote ones biased
        to adjacent processors (the diagonal swath of Figure 4)."""
        self._n_nodes = n_nodes
        self._seed = seed
        rng = random.Random(f"em3d:{seed}")
        total = n_nodes * self.nodes_per_proc

        def build_side() -> List[List[Tuple[int, float]]]:
            edges: List[List[Tuple[int, float]]] = []
            for consumer in range(total):
                proc = consumer // self.nodes_per_proc
                sources = []
                for _ in range(self.degree):
                    if rng.random() < self.pct_remote and n_nodes > 1:
                        # Remote: prefer the ring neighbours.
                        offset = rng.choice([-1, 1, -1, 1, -2, 2])
                        src_proc = (proc + offset) % n_nodes
                    else:
                        src_proc = proc
                    src = (src_proc * self.nodes_per_proc
                           + rng.randrange(self.nodes_per_proc))
                    weight = rng.uniform(0.1, 1.0)
                    sources.append((src, weight))
                edges.append(sources)
            return edges

        # e_edges[i]: sources (H nodes) feeding E node i, and vice versa.
        self._edges = {"e": build_side(), "h": build_side()}

    def _initial_values(self, rank: int) -> Tuple[np.ndarray, np.ndarray]:
        """The deterministic per-rank initial (E, H) values, a function
        of both the run seed and the rank."""
        rng = np.random.RandomState(
            (self._seed * 1_000_003 + rank + 17) % (2 ** 32))
        e_part = rng.uniform(-1, 1, self.nodes_per_proc)
        h_part = rng.uniform(-1, 1, self.nodes_per_proc)
        return e_part, h_part

    def setup_rank(self, proc: Proc) -> Generator:
        total = self._n_nodes * self.nodes_per_proc
        e_vals = proc.allocate(total, name="em3d_e", item_bytes=8,
                               dtype="float64")
        h_vals = proc.allocate(total, name="em3d_h", item_bytes=8,
                               dtype="float64")
        e_part, h_part = self._initial_values(proc.rank)
        proc.local(e_vals)[:] = e_part
        proc.local(h_vals)[:] = h_part

        lo = proc.rank * self.nodes_per_proc
        hi = lo + self.nodes_per_proc
        my_consumers = {
            kind: [(node, self._edges[kind][node]) for node
                   in range(lo, hi)]
            for kind in ("e", "h")
        }
        # Ghost tables for the write variant: value cache per remote
        # source node, plus the push lists (which of *my* nodes feed
        # remote consumers).  ``_edges[k]`` lists the sources feeding
        # consumers of kind ``k``; those sources are of the *other*
        # kind, which is how the push lists are keyed.
        push_lists: Dict[str, Dict[int, List[int]]] = {"e": {}, "h": {}}
        for consumer_kind, source_kind in (("e", "h"), ("h", "e")):
            for consumer in range(total):
                consumer_proc = consumer // self.nodes_per_proc
                if consumer_proc == proc.rank:
                    continue
                for src, _w in self._edges[consumer_kind][consumer]:
                    if lo <= src < hi:
                        targets = push_lists[source_kind].setdefault(
                            src, [])
                        if consumer_proc not in targets:
                            targets.append(consumer_proc)
        proc.state["em3d"] = {
            "arrays": {"e": e_vals, "h": h_vals},
            "consumers": my_consumers,
            "push": push_lists,
            "ghosts": {"e": {}, "h": {}},
        }
        return
        yield  # pragma: no cover

    def register_handlers(self, table) -> None:
        table.register("em3d_ghost", _ghost_handler)

    # -- the timed program ---------------------------------------------------------
    def run_rank(self, proc: Proc) -> Generator:
        for _step in range(self.steps):
            # E from H, then H from E -- each a half step.
            yield from self._half_step(proc, consumer_kind="e",
                                       source_kind="h")
            yield from self._half_step(proc, consumer_kind="h",
                                       source_kind="e")

    def _half_step(self, proc: Proc, consumer_kind: str,
                   source_kind: str) -> Generator:
        state = proc.state["em3d"]
        arrays = state["arrays"]
        if self.variant == "write":
            yield from self._push_ghosts(proc, state, source_kind)
            yield from proc.barrier()
        source_array = arrays[source_kind]
        consumer_array = arrays[consumer_kind]
        lo = proc.rank * self.nodes_per_proc
        consumer_local = proc.local(consumer_array)
        source_local = proc.local(source_array)
        ghosts = state["ghosts"][source_kind]

        for consumer, sources in state["consumers"][consumer_kind]:
            acc = 0.0
            for src, weight in sources:
                src_proc = src // self.nodes_per_proc
                if src_proc == proc.rank:
                    value = source_local[src - lo]
                elif self.variant == "write":
                    value = ghosts[src]
                else:
                    value = yield from proc.read(source_array, src)
                acc += weight * value
            consumer_local[consumer - lo] = 0.5 * acc
            yield from proc.compute(proc.cost.edges(len(sources)))
        if self.variant == "read":
            yield from proc.barrier()

    def _push_ghosts(self, proc: Proc, state: dict,
                     source_kind: str) -> Generator:
        """Write each boundary value to every consumer processor."""
        lo = proc.rank * self.nodes_per_proc
        source_local = proc.local(state["arrays"][source_kind])
        for src, consumer_procs in state["push"][source_kind].items():
            value = float(source_local[src - lo])
            for dst_proc in consumer_procs:
                yield from proc.am.send_request(
                    dst_proc, "em3d_ghost", (source_kind, src, value))
        yield from proc.am.drain()

    # -- results -------------------------------------------------------------------
    def finalize(self, procs: List[Proc]) -> dict:
        """Gather final values and verify against a sequential run."""
        arrays = procs[0].state["em3d"]["arrays"]
        measured = {
            kind: np.concatenate([p.local(arrays[kind]) for p in procs])
            for kind in ("e", "h")
        }
        expected = self._sequential_reference(procs)
        for kind in ("e", "h"):
            if not np.allclose(measured[kind], expected[kind],
                               rtol=1e-9, atol=1e-12):
                raise AssertionError(
                    f"EM3D({self.variant}) {kind}-values diverge from the "
                    "sequential reference")
        return measured

    def _sequential_reference(self, procs: List[Proc]) -> dict:
        """Re-run the kernel sequentially from the same initial values."""
        total = self._n_nodes * self.nodes_per_proc
        values = {}
        for kind in ("e", "h"):
            parts = []
            for rank in range(self._n_nodes):
                part_e, part_h = self._initial_values(rank)
                parts.append(part_e if kind == "e" else part_h)
            values[kind] = np.concatenate(parts)
        for _step in range(self.steps):
            for consumer_kind, source_kind in (("e", "h"), ("h", "e")):
                new = np.empty(total)
                for consumer in range(total):
                    acc = 0.0
                    for src, weight in self._edges[consumer_kind][consumer]:
                        acc += weight * values[source_kind][src]
                    new[consumer] = 0.5 * acc
                values[consumer_kind] = new
        return values


def _ghost_handler(am, packet) -> None:
    """Store a pushed boundary value in the consumer's ghost table."""
    kind, src, value = packet.payload
    am.host.state["em3d"]["ghosts"][kind][src] = value
