"""Radix sort (the paper's ``Radix``), after Dusseau et al. [19].

Sorts 32-bit keys spread block-wise over the processors.  Each pass over
one digit runs three phases:

1. **Local histogram** -- count keys per bucket (local compute).
2. **Global histogram** -- a *pipelined cyclic shift*: running per-bucket
   prefix counts flow around the processor ring in bucket batches, so
   processor ``p`` learns how many keys with each digit live on lower
   ranks.  This phase is serialised along the ring — the paper's
   "serialization effect" that makes Radix hyper-sensitive to overhead
   on 32 nodes — and paints the dark off-diagonal line of Figure 4a.
3. **Distribution** -- every key is written (short, pipelined remote
   write) to its globally-ranked position: the balanced grey background
   of Figure 4a.

The sort is stable per pass, hence correct over multiple passes.
"""

from __future__ import annotations

from typing import Generator, List

import numpy as np

from repro.am.layer import HandlerTable
from repro.apps.base import Application
from repro.gas.runtime import Proc

__all__ = ["RadixSort"]


class RadixSort(Application):
    """Parallel radix sort of 32-bit keys.

    Parameters
    ----------
    keys_per_proc:
        Keys initially held by each processor (paper: 500k/1M; default
        scaled down so a full sweep stays fast).
    radix_bits:
        Bits per digit; buckets per pass = ``2**radix_bits``.
    key_bits:
        Total key width; ``ceil(key_bits / radix_bits)`` passes run.
    scan_batch:
        Buckets per pipelined-cyclic-shift message in the global
        histogram phase.
    """

    name = "Radix"

    #: Buckets per cyclic-shift message.  The paper's radix-16 sort
    #: moves thousands of counter messages per pass; with our scaled
    #: 8-bit radix a small batch keeps the histogram phase's message
    #: count (and its serialisation) proportionally realistic — and
    #: paints Figure 4a's dark ring line.
    DEFAULT_SCAN_BATCH = 16

    def __init__(self, keys_per_proc: int = 2048, radix_bits: int = 8,
                 key_bits: int = 16, scan_batch: int = 0) -> None:
        if keys_per_proc < 1:
            raise ValueError("keys_per_proc must be >= 1")
        if not 1 <= radix_bits <= 16:
            raise ValueError("radix_bits must be in 1..16")
        if key_bits < radix_bits:
            raise ValueError("key_bits must be >= radix_bits")
        if scan_batch == 0:
            scan_batch = self.DEFAULT_SCAN_BATCH
        if scan_batch < 1:
            raise ValueError("scan_batch must be >= 1")
        self.keys_per_proc = keys_per_proc
        self.radix_bits = radix_bits
        self.key_bits = key_bits
        self.scan_batch = scan_batch
        self._input: np.ndarray = np.empty(0, dtype=np.int64)

    @classmethod
    def scaled(cls, scale: float = 1.0) -> "RadixSort":
        """An instance with inputs scaled by ``scale``."""
        return cls(keys_per_proc=max(16, int(2048 * scale)))

    # -- lifecycle ----------------------------------------------------------
    @property
    def n_buckets(self) -> int:
        return 1 << self.radix_bits

    @property
    def n_passes(self) -> int:
        return -(-self.key_bits // self.radix_bits)

    def configure(self, n_nodes: int, seed: int) -> None:
        rng = np.random.RandomState(seed + 0xBEEF)
        total = n_nodes * self.keys_per_proc
        self._input = rng.randint(
            0, 1 << self.key_bits, size=total).astype(np.int64)

    def register_handlers(self, table: HandlerTable) -> None:
        table.register("radix_scan", _scan_handler)

    def setup_rank(self, proc: Proc) -> Generator:
        src = proc.allocate(len(self._input), name="radix_src",
                            item_bytes=4)
        dst = proc.allocate(len(self._input), name="radix_dst",
                            item_bytes=4)
        proc.state["radix"] = {
            "arrays": (src, dst),
            "app": self,
            "scan_batches": {},
        }
        start = src.local_start(proc.rank)
        local = proc.local(src)
        local[:] = self._input[start:start + len(local)]
        return
        yield  # pragma: no cover

    # -- the timed program ----------------------------------------------------
    def run_rank(self, proc: Proc) -> Generator:
        state = proc.state["radix"]
        src, dst = state["arrays"]
        for pass_index in range(self.n_passes):
            yield from self._one_pass(proc, state, src, dst, pass_index)
            src, dst = dst, src
        state["result_array"] = src

    def _one_pass(self, proc: Proc, state: dict, src, dst,
                  pass_index: int) -> Generator:
        shift = pass_index * self.radix_bits
        mask = self.n_buckets - 1
        local = proc.local(src)
        digits = (local >> shift) & mask

        # Phase 1: local histogram.
        counts = np.bincount(digits, minlength=self.n_buckets)
        yield from proc.compute(proc.cost.keys(len(local)))

        # Phase 2: global histogram via pipelined cyclic shift.
        prefix_lower, totals = yield from self._global_histogram(
            proc, state, counts, pass_index)

        # Global base offset of each bucket (exclusive prefix over
        # bucket totals), then this rank's starting slot inside each
        # bucket's region.
        bucket_base = np.concatenate(([0], np.cumsum(totals)[:-1]))
        my_base = bucket_base + prefix_lower
        yield from proc.compute(proc.cost.ops(2 * self.n_buckets))

        # Phase 3: distribution.  Stable local ranking within buckets by
        # processing keys in order.
        next_slot = my_base.copy()
        yield from proc.compute(proc.cost.keys(len(local)))
        for key, digit in zip(local.tolist(), digits.tolist()):
            position = int(next_slot[digit])
            next_slot[digit] += 1
            yield from proc.write(dst, position, key)
        yield from proc.sync()
        yield from proc.barrier()

    def _global_histogram(self, proc: Proc, state: dict,
                          counts: np.ndarray,
                          pass_index: int) -> Generator:
        """Cyclic shift of per-bucket running counts around the ring.

        Rank ``p`` receives the prefix counts of ranks ``< p`` from
        ``p - 1`` (a stream of bucket batches), adds its own counts,
        and forwards the stream to ``p + 1``; a second lap carries the
        global totals back around.  Each rank accumulates the whole
        stream before forwarding (the counters are summed in place, so
        the phase is store-and-forward per processor), which makes the
        phase's serial length proportional to ``P × radix`` — exactly
        the serialization Section 5.1 blames for Radix's
        hyper-sensitivity to overhead on 32 nodes, where this phase
        grows from ~20% of the baseline runtime to ~60% at o = 100 µs.
        """
        n = proc.n_ranks
        batches = _batch_bounds(self.n_buckets, self.scan_batch)
        if n == 1:
            return np.zeros_like(counts), counts.copy()

        inbox = state["scan_batches"]
        prefix_lower = np.zeros_like(counts)
        right = (proc.rank + 1) % n

        def recv_lap(lap: str) -> Generator:
            values = np.zeros_like(counts)
            for batch_id, (lo, hi) in enumerate(batches):
                tag = (lap, pass_index, batch_id)
                yield from proc.am.wait_until(lambda t=tag: t in inbox)
                values[lo:hi] = np.asarray(inbox.pop(tag))
            return values

        def send_lap(lap: str, values: np.ndarray) -> Generator:
            for batch_id, (lo, hi) in enumerate(batches):
                tag = (lap, pass_index, batch_id)
                yield from proc.am.send_request(
                    right, "radix_scan",
                    (tag, values[lo:hi].tolist()),
                    size=max(32, 4 * (hi - lo)))

        # Lap 1: running prefix (rank 0 originates, P-1 terminates).
        if proc.rank > 0:
            prefix_lower = yield from recv_lap("scan")
        running = prefix_lower + counts
        yield from proc.compute(proc.cost.ops(self.n_buckets))
        if proc.rank != n - 1:
            yield from send_lap("scan", running)

        # Lap 2: global totals (rank P-1 originates, P-2 terminates).
        if proc.rank == n - 1:
            totals = running
        else:
            totals = yield from recv_lap("totals")
        if proc.rank != (n - 2) % n:
            yield from send_lap("totals", totals)
        yield from proc.compute(proc.cost.ops(self.n_buckets))
        return prefix_lower, totals

    # -- results -----------------------------------------------------------------
    def finalize(self, procs: List[Proc]) -> np.ndarray:
        """Gather the sorted keys and verify the sort."""
        result_array = procs[0].state["radix"]["result_array"]
        pieces = [proc.local(result_array) for proc in procs]
        merged = np.concatenate(pieces)
        expected = np.sort(self._input, kind="stable")
        if not np.array_equal(merged, expected):
            raise AssertionError("radix sort produced wrong output")
        return merged


def _batch_bounds(n_buckets: int, batch: int) -> List[tuple]:
    return [(lo, min(lo + batch, n_buckets))
            for lo in range(0, n_buckets, batch)]


def _scan_handler(am, packet) -> None:
    """Deposit a cyclic-shift batch into the receiving rank's inbox."""
    tag, values = packet.payload
    am.host.state["radix"]["scan_batches"][tag] = values
