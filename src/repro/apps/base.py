"""The application contract the cluster runtime executes."""

from __future__ import annotations

import abc
from typing import Any, Generator, List

from repro.am.layer import HandlerTable
from repro.gas.runtime import Proc

__all__ = ["Application"]


class Application(abc.ABC):
    """An SPMD program runnable on a :class:`~repro.cluster.machine.Cluster`.

    Lifecycle per run (driven by the cluster):

    1. :meth:`configure` -- build the (deterministic) input for this run.
    2. :meth:`register_handlers` -- install the app's Active Message
       handlers.
    3. :meth:`setup_rank` -- per-rank, *untimed* input distribution.
    4. entry barrier; the measured region starts.
    5. :meth:`run_rank` -- the timed SPMD program.
    6. drain + exit barrier; the measured region ends.
    7. :meth:`finalize` -- gather outputs and check correctness.
    """

    #: Display name (Table 3/4 row label).
    name: str = "app"

    #: True for open-system workloads (request arrivals injected from
    #: outside the rank set, e.g. :mod:`repro.serve`).  Analysis tiers
    #: that model only the closed SPMD dependency graph — simcost's
    #: recorder/replay — refuse such runs instead of mispredicting.
    open_system: bool = False

    def configure(self, n_nodes: int, seed: int) -> None:
        """Build this run's input deterministically.  Called every run, so
        stale state from a previous run must be reset here."""

    def register_handlers(self, table: HandlerTable) -> None:
        """Install application Active Message handlers."""

    def setup_rank(self, proc: Proc) -> Generator:
        """Untimed per-rank setup (data distribution, graph spreading).

        Mirrors the paper's methodology of timing the computational
        phases on realistic inputs rather than program load time.
        """
        return
        yield  # pragma: no cover - makes this a generator

    @abc.abstractmethod
    def run_rank(self, proc: Proc) -> Generator:
        """The timed SPMD program for one rank."""

    def finalize(self, procs: List[Proc]) -> Any:
        """Gather outputs from all ranks after the run; may validate
        correctness and raise on wrong answers."""
        return None
