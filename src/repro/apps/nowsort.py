"""NOW-sort: the disk-to-disk parallel sort (Arpaci-Dusseau et al. [4]).

The 1997 MinuteSort record holder, reduced to its two-pass structure:

* **Phase 1** -- each node streams records off its read disk in chunks,
  partitions them by key range, and ships each partition to its
  destination node with *one-way bulk Active Messages*, at whatever rate
  the disk can deliver.  Communication fully overlaps disk I/O; the
  perfectly balanced all-to-all paints the solid square of Figure 4i.
* **Phase 2** -- each node sorts what it received (local compute) and
  streams it to its write disk.

Each node uses two spindles at ~5.5 MB/s: one for reading, one for
writing.  Because the disk, not the network, paces phase 1, NOW-sort
ignores reduced network bandwidth until bulk bandwidth drops below a
single disk's rate (the paper's Figure 8 punchline).
"""

from __future__ import annotations

from typing import Generator, List

import numpy as np

from repro.am.layer import HandlerTable
from repro.apps.base import Application
from repro.gas.runtime import Proc

__all__ = ["NowSort"]

#: The paper's record size (bytes); the key is the leading 32 bits.
RECORD_BYTES = 100


class NowSort(Application):
    """The disk-to-disk sort.

    Parameters
    ----------
    records_per_proc:
        Records initially on each node's read disk.
    chunk_records:
        Records read off disk (and partitioned/shipped) per chunk.
    key_bits:
        Key width; uniform keys are range-partitioned over the nodes.
    """

    name = "NOW-sort"

    def __init__(self, records_per_proc: int = 512,
                 chunk_records: int = 64, key_bits: int = 24) -> None:
        if records_per_proc < 1 or chunk_records < 1:
            raise ValueError(
                "records_per_proc and chunk_records must be >= 1")
        self.records_per_proc = records_per_proc
        self.chunk_records = chunk_records
        self.key_bits = key_bits
        self._keys: np.ndarray = np.empty(0, dtype=np.int64)
        self._n_nodes = 0

    @classmethod
    def scaled(cls, scale: float = 1.0) -> "NowSort":
        return cls(records_per_proc=max(64, int(512 * scale)))

    # -- input -----------------------------------------------------------------
    def configure(self, n_nodes: int, seed: int) -> None:
        self._n_nodes = n_nodes
        rng = np.random.RandomState(seed + 0xD15C)
        total = n_nodes * self.records_per_proc
        self._keys = rng.randint(0, 1 << self.key_bits,
                                 size=total).astype(np.int64)

    def register_handlers(self, table: HandlerTable) -> None:
        table.register("nowsort_records", _records_handler)

    def partition_of(self, key: int) -> int:
        """Range partition: node owning ``key``'s interval."""
        span = (1 << self.key_bits) // self._n_nodes + 1
        return min(self._n_nodes - 1, int(key) // span)

    def setup_rank(self, proc: Proc) -> Generator:
        lo = proc.rank * self.records_per_proc
        proc.state["nowsort"] = {
            "on_disk": self._keys[lo:lo + self.records_per_proc],
            "received": [],
            "sorted": None,
        }
        return
        yield  # pragma: no cover

    # -- the timed program ---------------------------------------------------------
    def run_rank(self, proc: Proc) -> Generator:
        state = proc.state["nowsort"]
        read_disk = proc.disk(0)
        write_disk = proc.disk(1 if len(proc.node.disks) > 1 else 0)

        # Phase 1: read, partition, ship.  The bulk sends are one-way
        # AMs issued as each chunk comes off the disk, so the network
        # runs at disk speed unless it is the slower device.
        on_disk = state["on_disk"]
        first_chunk = True
        for start in range(0, len(on_disk), self.chunk_records):
            chunk = on_disk[start:start + self.chunk_records]
            yield from read_disk.read(len(chunk) * RECORD_BYTES,
                                      seek=first_chunk)
            first_chunk = False
            buckets = {}
            for key in chunk.tolist():
                buckets.setdefault(self.partition_of(key), []).append(key)
            yield from proc.compute(proc.cost.keys(len(chunk)))
            for dst, keys in sorted(buckets.items()):
                if dst == proc.rank:
                    state["received"].extend(keys)
                else:
                    yield from proc.am.bulk_oneway(
                        dst, "nowsort_records", keys,
                        RECORD_BYTES * len(keys))
        yield from proc.am.drain()
        yield from proc.barrier()

        # Phase 2: local sort, then stream to the write disk.
        received = state["received"]
        received.sort()
        state["sorted"] = list(received)
        passes = max(1, self.key_bits // 8)
        yield from proc.compute(
            proc.cost.keys(passes * max(1, len(received))))
        yield from write_disk.write(len(received) * RECORD_BYTES,
                                    seek=True)
        yield from proc.barrier()

    # -- results ----------------------------------------------------------------
    def finalize(self, procs: List[Proc]) -> dict:
        gathered: List[int] = []
        for proc in procs:
            gathered.extend(proc.state["nowsort"]["sorted"])
        merged = np.asarray(gathered, dtype=np.int64)
        expected = np.sort(self._keys)
        if not np.array_equal(merged, expected):
            raise AssertionError("NOW-sort produced wrong output")
        return {
            "sorted": merged,
            "received_per_node": [
                len(p.state["nowsort"]["sorted"]) for p in procs],
        }


def _records_handler(am, packet) -> None:
    """Deposit a shipped partition at its destination node."""
    am.host.state["nowsort"]["received"].extend(packet.payload)
