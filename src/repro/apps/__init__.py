"""The paper's ten-application benchmark suite.

Each application is a genuine parallel algorithm written in the SPMD
style against :class:`repro.gas.runtime.Proc`; outputs are validated for
correctness in the test suite.  Table 3 of the paper lists the original
input sets; default inputs here are scaled down so full LogGP sweeps run
in minutes, with constructors accepting larger sizes.
"""

from repro.apps.base import Application
from repro.apps.radix import RadixSort
from repro.apps.em3d import EM3D
from repro.apps.sample import SampleSort
from repro.apps.barnes import Barnes
from repro.apps.pray import PRay
from repro.apps.murphi import Murphi
from repro.apps.connect import Connect
from repro.apps.nowsort import NowSort
from repro.apps.radb import RadixBulk

__all__ = ["Application", "RadixSort", "EM3D", "SampleSort", "Barnes",
           "PRay", "Murphi", "Connect", "NowSort", "RadixBulk",
           "default_suite", "SUITE_ORDER"]

#: Table 3/4 presentation order.
SUITE_ORDER = ("Radix", "EM3D(write)", "EM3D(read)", "Sample", "Barnes",
               "P-Ray", "Murphi", "Connect", "NOW-sort", "Radb")


def default_suite(scale: float = 1.0) -> list:
    """The full ten-application suite at a given input scale.

    ``scale=1.0`` gives the default scaled-down inputs; larger values
    grow every application's input proportionally.
    """
    return [
        RadixSort.scaled(scale),
        EM3D.scaled(scale, variant="write"),
        EM3D.scaled(scale, variant="read"),
        SampleSort.scaled(scale),
        Barnes.scaled(scale),
        PRay.scaled(scale),
        Murphi.scaled(scale),
        Connect.scaled(scale),
        NowSort.scaled(scale),
        RadixBulk.scaled(scale),
    ]
