"""Sample sort (the paper's ``Sample``).

A probabilistic sort: ``p - 1`` splitter values are chosen from an
oversampled set, broadcast to all processors, every key is sent to the
processor owning its splitter interval, and each processor sorts what it
received locally (a radix sort in the paper).

The interesting architectural property is the *unbalanced* all-to-all of
the distribution phase — processors receive different numbers of keys
(the vertical bars of Figure 4d).  The bias is made explicit here by
drawing keys from a non-uniform distribution.
"""

from __future__ import annotations

from typing import Generator, List

import numpy as np

from repro.am.layer import HandlerTable
from repro.apps.base import Application
from repro.gas.runtime import Proc

__all__ = ["SampleSort"]


class SampleSort(Application):
    """Parallel sample sort of 32-bit keys.

    Parameters
    ----------
    keys_per_proc:
        Keys initially held by each processor.
    oversample:
        Samples contributed per processor for splitter selection.
    key_bits:
        Width of the keys.
    skew:
        Exponent shaping the key distribution (1.0 = uniform; larger
        values concentrate keys in the low range, producing the paper's
        communication imbalance).
    """

    name = "Sample"

    def __init__(self, keys_per_proc: int = 2048, oversample: int = 8,
                 key_bits: int = 16, skew: float = 1.6) -> None:
        if keys_per_proc < 1:
            raise ValueError("keys_per_proc must be >= 1")
        if oversample < 1:
            raise ValueError("oversample must be >= 1")
        if skew <= 0:
            raise ValueError("skew must be > 0")
        self.keys_per_proc = keys_per_proc
        self.oversample = oversample
        self.key_bits = key_bits
        self.skew = skew
        self._input: np.ndarray = np.empty(0, dtype=np.int64)

    @classmethod
    def scaled(cls, scale: float = 1.0) -> "SampleSort":
        return cls(keys_per_proc=max(16, int(2048 * scale)))

    # -- lifecycle -----------------------------------------------------------
    def configure(self, n_nodes: int, seed: int) -> None:
        rng = np.random.RandomState(seed + 0x5A3)
        total = n_nodes * self.keys_per_proc
        top = float((1 << self.key_bits) - 1)
        uniform = rng.random_sample(total)
        self._input = (top * uniform ** self.skew).astype(np.int64)

    def register_handlers(self, table: HandlerTable) -> None:
        table.register("sample_key", _key_handler)

    def setup_rank(self, proc: Proc) -> Generator:
        lo = proc.rank * self.keys_per_proc
        proc.state["sample"] = {
            "keys": self._input[lo:lo + self.keys_per_proc].copy(),
            "samples": [],
            "received": [],
            "app": self,
        }
        return
        yield  # pragma: no cover

    # -- the timed program ---------------------------------------------------------
    def run_rank(self, proc: Proc) -> Generator:
        state = proc.state["sample"]
        keys = state["keys"]

        # Phase 0: splitter selection.  Every rank contributes
        # `oversample` local samples to a gather at rank 0; rank 0
        # sorts the sample set, picks p - 1 splitters, and broadcasts
        # them (both collectives via repro.coll).
        samples = [int(keys[proc.rng.randrange(len(keys))])
                   for _ in range(self.oversample)]
        yield from proc.compute(proc.cost.ops(4 * self.oversample))
        per_rank = yield from proc.gather(
            samples, root=0, size=max(32, 4 * self.oversample))
        splitters = None
        if proc.rank == 0:
            state["samples"] = [value for contribution in per_rank
                                for value in contribution]
            pool = sorted(state["samples"])
            stride = len(pool) // proc.n_ranks
            splitters = [pool[stride * (i + 1)]
                         for i in range(proc.n_ranks - 1)]
            yield from proc.compute(
                proc.cost.keys(len(pool)))  # sort the sample pool
        splitters = yield from proc.broadcast(
            splitters, root=0, size=max(32, 4 * (proc.n_ranks - 1)))
        bounds = np.asarray(splitters, dtype=np.int64)

        # Phase 1: distribution.  Each key goes to the rank owning its
        # splitter interval (short write-based messages, all-to-all).
        destinations = np.searchsorted(bounds, keys, side="right")
        yield from proc.compute(proc.cost.keys(len(keys)))
        for key, dst in zip(keys.tolist(), destinations.tolist()):
            if dst == proc.rank:
                state["received"].append(key)
            else:
                yield from proc.am.send_request(dst, "sample_key", key)
        yield from proc.am.drain()
        yield from proc.barrier()

        # Phase 2: local sort of whatever arrived.
        state["received"].sort()
        passes = max(1, self.key_bits // 8)
        yield from proc.compute(
            proc.cost.keys(passes * max(1, len(state["received"]))))
        yield from proc.barrier()

    # -- results -------------------------------------------------------------------
    def finalize(self, procs: List[Proc]) -> np.ndarray:
        gathered: List[int] = []
        for proc in procs:
            gathered.extend(proc.state["sample"]["received"])
        merged = np.asarray(gathered, dtype=np.int64)
        expected = np.sort(self._input)
        if not np.array_equal(merged, expected):
            raise AssertionError("sample sort produced wrong output")
        # Imbalance factor (max bucket / average) for diagnostics.
        sizes = [len(p.state["sample"]["received"]) for p in procs]
        return {"sorted": merged,
                "bucket_sizes": sizes}


def _key_handler(am, packet) -> None:
    """Deposit a routed key at its destination processor."""
    am.host.state["sample"]["received"].append(packet.payload)
