"""Barnes-Hut N-body (the paper's ``Barnes``, after SPLASH-2 [45]).

Each timestep builds a shared octree over the bodies and then computes
forces by traversing it with the standard opening criterion.  As in the
paper's implementation:

* the octree is a *software* shared structure: cells live on an owner
  processor (hash of the cell's path key) and are reached with Active
  Messages;
* tree updates are synchronised through **blocking locks** with
  test-and-set/retry semantics.  Under added overhead the lock retry
  traffic itself saturates the owning processors and the failed-attempt
  count explodes -- the livelock the paper reports (Barnes does not
  complete past ~13 µs added overhead on 16 nodes, ~7 µs on 32);
* during the read-only interaction phase remote cells are fetched once
  into a per-processor software cache (bulk replies: Barnes is ~23%
  bulk, ~21% reads in Table 4).

The Barnes-Hut octree is canonical for a given body set (splitting
continues until bodies separate), so the distributed build produces
exactly the tree a sequential build does; forces are validated against
a sequential Barnes-Hut with the same geometry and θ.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.am.layer import HandlerTable
from repro.apps.base import Application
from repro.gas.runtime import Proc
from repro.gas.sync import DistributedLock

__all__ = ["Barnes"]

#: Deepest tree level; bodies closer than 2^-MAX_DEPTH share a leaf.
MAX_DEPTH = 12

#: Wire bytes for a fetched cell record (type + moment + children map:
#: a mass, three doubles of centre-of-mass, and an octant bitmap).
CELL_BYTES = 64

#: Gravitational softening, avoiding singular close encounters.
SOFTENING = 1e-3


# ---------------------------------------------------------------------------
# Geometry helpers shared by the distributed build and the sequential
# reference, guaranteeing both produce the canonical octree.
# ---------------------------------------------------------------------------

def cell_center(key: Tuple[int, ...]) -> np.ndarray:
    """Center of the cell with path ``key`` in the unit cube."""
    center = np.array([0.5, 0.5, 0.5])
    half = 0.25
    for octant in key:
        for axis in range(3):
            direction = 1.0 if (octant >> axis) & 1 else -1.0
            center[axis] += direction * half
        half *= 0.5
    return center


def cell_half_width(key: Tuple[int, ...]) -> float:
    """Half the edge length of the cell with path ``key``; the root
    (empty key) spans the unit cube, so its half-width is 0.5."""
    return 0.5 ** (len(key) + 1)


def octant_of(position: np.ndarray, key: Tuple[int, ...]) -> int:
    """Which child octant of cell ``key`` contains ``position``."""
    center = cell_center(key)
    octant = 0
    for axis in range(3):
        if position[axis] >= center[axis]:
            octant |= 1 << axis
    return octant


def cell_owner(key: Tuple[int, ...], n_nodes: int) -> int:
    """Hash-based cell ownership (deterministic across runs)."""
    acc = 2166136261
    for octant in key:
        acc = ((acc ^ (octant + 1)) * 16777619) & 0xFFFFFFFF
    return acc % n_nodes


def lock_id_of(key: Tuple[int, ...]) -> int:
    """A stable integer lock id for a cell key."""
    acc = 402653189
    for octant in key:
        acc = (acc * 31 + octant + 7) & 0x7FFFFFFF
    return acc


def plan_split(key: Tuple[int, ...],
               existing: Tuple[int, np.ndarray, float],
               incoming: Tuple[int, np.ndarray, float]) -> List[tuple]:
    """Records to create when ``incoming`` lands on occupied leaf ``key``.

    Returns ``[(cell_key, record), ...]`` ordered children-first so a
    concurrent descender never sees a half-built subtree; the original
    cell's flip to internal comes last.  Internal records carry their
    explicit ``children`` octant sets (parents and children generally
    live on different owners, so child maps travel with the records).
    """
    records: List[tuple] = []
    chain = [key]
    current = key
    while len(current) < MAX_DEPTH:
        octant_a = octant_of(existing[1], current)
        octant_b = octant_of(incoming[1], current)
        if octant_a != octant_b:
            records.append((current + (octant_a,),
                            {"type": "leaf", "bodies": [existing]}))
            records.append((current + (octant_b,),
                            {"type": "leaf", "bodies": [incoming]}))
            deepest_children = {octant_a, octant_b}
            break
        current = current + (octant_a,)
        chain.append(current)
    else:
        # Max depth: the two bodies share one leaf.
        records.append((current,
                        {"type": "leaf",
                         "bodies": [existing, incoming]}))
        chain.pop()  # `current` is the shared leaf, not an internal
        deepest_children = {current[-1]} if chain else set()
    # Intermediate cells become internal, deepest first; `key` is last.
    # Each internal's only child is the next link of the chain, except
    # the deepest one, whose children are the separated leaves.
    children = deepest_children
    for cell in reversed(chain):
        records.append((cell, {"type": "internal",
                               "children": set(children)}))
        children = {cell[-1]} if cell else set()
    return records


class Barnes(Application):
    """The hierarchical N-body simulation.

    Parameters
    ----------
    bodies_per_proc:
        Bodies each processor owns and inserts.
    theta:
        Barnes-Hut opening criterion (cell used whole if size/dist < θ).
    steps:
        Timesteps (each = build + moments + forces + update).
    dt:
        Integration step for the position update.
    """

    name = "Barnes"

    def __init__(self, bodies_per_proc: int = 8, theta: float = 0.6,
                 steps: int = 1, dt: float = 0.01) -> None:
        if bodies_per_proc < 1 or steps < 1:
            raise ValueError("bodies_per_proc and steps must be >= 1")
        if theta <= 0:
            raise ValueError("theta must be > 0")
        self.bodies_per_proc = bodies_per_proc
        self.theta = theta
        self.steps = steps
        self.dt = dt
        self._positions: np.ndarray = np.empty((0, 3))
        self._velocities: np.ndarray = np.empty((0, 3))
        self._masses: np.ndarray = np.empty(0)
        self._n_nodes = 0

    @classmethod
    def scaled(cls, scale: float = 1.0) -> "Barnes":
        return cls(bodies_per_proc=max(4, int(8 * scale)))

    # -- input -----------------------------------------------------------------
    def configure(self, n_nodes: int, seed: int) -> None:
        self._n_nodes = n_nodes
        rng = np.random.RandomState(seed + 0xB0D1)
        total = n_nodes * self.bodies_per_proc
        # Two gaussian clusters inside the unit cube: realistic clumping
        # without escaping the root cell.
        centers = np.array([[0.35, 0.35, 0.5], [0.7, 0.65, 0.45]])
        assignment = rng.randint(0, 2, size=total)
        self._positions = np.clip(
            centers[assignment] + rng.normal(0, 0.08, size=(total, 3)),
            0.01, 0.99)
        self._velocities = rng.normal(0, 0.05, size=(total, 3))
        self._masses = rng.uniform(0.5, 2.0, size=total)

    def register_handlers(self, table: HandlerTable) -> None:
        table.register("barnes_get_cell", _get_cell_handler)
        table.register("barnes_put_cell", _put_cell_handler)
        table.register("barnes_add_child", _add_child_handler)
        table.register("barnes_get_moment", _get_moment_handler)
        table.register("barnes_fetch_cell", _fetch_cell_handler)

    def setup_rank(self, proc: Proc) -> Generator:
        proc.state["barnes"] = {
            "app": self,
            "cells": {},
            "cache": {},
            "positions": self._positions.copy(),
            "velocities": self._velocities.copy(),
            "masses": self._masses,
            "accels": np.zeros_like(self._positions),
        }
        return
        yield  # pragma: no cover

    def _my_bodies(self, proc: Proc) -> range:
        first = proc.rank * self.bodies_per_proc
        return range(first, first + self.bodies_per_proc)

    # -- the timed program ---------------------------------------------------------
    def run_rank(self, proc: Proc) -> Generator:
        state = proc.state["barnes"]
        for _step in range(self.steps):
            state["cells"].clear()
            state["cache"].clear()
            yield from proc.barrier()
            yield from self._build_phase(proc, state)
            yield from proc.barrier()
            yield from self._moment_phase(proc, state)
            yield from proc.barrier()
            yield from self._force_phase(proc, state)
            yield from proc.barrier()
            self._update_bodies(state)
            yield from proc.compute(
                proc.cost.ops(10 * self.bodies_per_proc))
            yield from proc.barrier()

    # .. build ..................................................................
    def _build_phase(self, proc: Proc, state: dict) -> Generator:
        positions = state["positions"]
        masses = state["masses"]
        for body in self._my_bodies(proc):
            yield from self._insert(
                proc, (body, positions[body], float(masses[body])))

    def _insert(self, proc: Proc, body: tuple) -> Generator:
        key: Tuple[int, ...] = ()
        while True:
            record = yield from self._get_cell(proc, key)
            if record is not None and record["type"] == "internal":
                key = key + (octant_of(body[1], key),)
                continue
            # Empty or leaf: take the cell's lock and re-check.
            lock = DistributedLock(cell_owner(key, proc.n_ranks),
                                   lock_id_of(key))
            yield from proc.lock(lock)
            record = yield from self._get_cell(proc, key)
            if record is not None and record["type"] == "internal":
                yield from proc.unlock(lock)
                key = key + (octant_of(body[1], key),)
                continue
            if record is None:
                yield from self._put_cell(
                    proc, key, {"type": "leaf", "bodies": [body]})
                if key:
                    # A brand-new cell must appear in its parent's child
                    # map (the parent generally lives elsewhere); blocking
                    # so the map is complete before the build barrier.
                    yield from self._register_child(proc, key)
                yield from proc.unlock(lock)
                return
            # Occupied leaf: split until the two bodies separate.
            if len(key) >= MAX_DEPTH:
                bodies = record["bodies"] + [body]
                yield from self._put_cell(
                    proc, key, {"type": "leaf", "bodies": bodies})
                yield from proc.unlock(lock)
                return
            existing = record["bodies"][0]
            if len(record["bodies"]) > 1:  # pragma: no cover - max depth
                bodies = record["bodies"] + [body]
                yield from self._put_cell(
                    proc, key, {"type": "leaf", "bodies": bodies})
                yield from proc.unlock(lock)
                return
            for cell, new_record in plan_split(key, existing, body):
                yield from self._put_cell(proc, cell, new_record)
            yield from proc.unlock(lock)
            return

    def _get_cell(self, proc: Proc, key) -> Generator:
        cells = proc.state["barnes"]["cells"]
        owner = cell_owner(key, proc.n_ranks)
        if owner == proc.rank:
            yield from proc.compute(proc.cost.ops(2))
            record = cells.get(key)
            return dict(record) if record is not None else None
        result = yield from proc.am.rpc(owner, "barnes_get_cell", key,
                                        is_read=True)
        return result

    def _put_cell(self, proc: Proc, key, record: dict) -> Generator:
        cells = proc.state["barnes"]["cells"]
        owner = cell_owner(key, proc.n_ranks)
        if owner == proc.rank:
            yield from proc.compute(proc.cost.ops(2))
            _store_cell(cells, key, record)
            return
        # Blocking put: ordering matters (children before parents).
        yield from proc.am.rpc(owner, "barnes_put_cell", (key, record))

    def _register_child(self, proc: Proc, key) -> Generator:
        parent = key[:-1]
        owner = cell_owner(parent, proc.n_ranks)
        if owner == proc.rank:
            yield from proc.compute(proc.cost.ops(1))
            _add_child(proc.state["barnes"]["cells"], parent, key[-1])
            return
        yield from proc.am.rpc(owner, "barnes_add_child",
                               (parent, key[-1]))

    # .. moments ..................................................................
    def _moment_phase(self, proc: Proc, state: dict) -> Generator:
        cells = state["cells"]
        local_max = max((len(k) for k in cells), default=0)
        max_depth = yield from proc.allreduce(local_max, max)
        for depth in range(max_depth, -1, -1):
            for key in sorted(k for k in cells if len(k) == depth):
                record = cells[key]
                if record["type"] == "leaf":
                    mass = sum(b[2] for b in record["bodies"])
                    com = sum((b[2] * b[1] for b in record["bodies"]),
                              np.zeros(3)) / mass
                else:
                    mass = 0.0
                    com = np.zeros(3)
                    for octant in record["children"]:
                        child = key + (octant,)
                        child_moment = yield from self._get_moment(
                            proc, child)
                        child_mass, child_com = child_moment
                        mass += child_mass
                        com += child_mass * np.asarray(child_com)
                    com /= mass
                record["moment"] = (mass, com)
                yield from proc.compute(proc.cost.ops(12))
            yield from proc.barrier()

    def _get_moment(self, proc: Proc, key) -> Generator:
        owner = cell_owner(key, proc.n_ranks)
        if owner == proc.rank:
            yield from proc.compute(proc.cost.ops(1))
            mass, com = proc.state["barnes"]["cells"][key]["moment"]
            return mass, np.asarray(com)
        moment = yield from proc.am.rpc(owner, "barnes_get_moment", key,
                                        is_read=True)
        mass, com = moment
        return mass, np.asarray(com)

    # .. forces ..................................................................
    def _force_phase(self, proc: Proc, state: dict) -> Generator:
        positions = state["positions"]
        accels = state["accels"]
        for body in self._my_bodies(proc):
            acc, interactions = yield from self._body_force(
                proc, state, body, positions[body])
            accels[body] = acc
            yield from proc.compute(proc.cost.interactions(interactions))

    def _body_force(self, proc: Proc, state: dict, body: int,
                    position: np.ndarray) -> Generator:
        acc = np.zeros(3)
        interactions = 0
        stack: List[Tuple[int, ...]] = [()]
        while stack:
            key = stack.pop()
            record = yield from self._fetch_cached(proc, state, key)
            if record is None:
                continue
            if record["type"] == "leaf":
                for other_id, other_pos, other_mass in record["bodies"]:
                    if other_id == body:
                        continue
                    acc += _pairwise(position, np.asarray(other_pos),
                                     other_mass)
                    interactions += 1
                continue
            mass, com = record["moment"]
            com = np.asarray(com)
            size = 2.0 * cell_half_width(key)  # the cell's edge length
            distance = float(np.linalg.norm(com - position))
            if distance > 0 and size / distance < self.theta:
                acc += _pairwise(position, com, mass)
                interactions += 1
            else:
                # Deterministic order: descend octants high to low so the
                # pop order is 0..7, matching the sequential reference.
                for octant in sorted(record["children"], reverse=True):
                    stack.append(key + (octant,))
        return acc, interactions

    def _fetch_cached(self, proc: Proc, state: dict,
                      key) -> Generator:
        owner = cell_owner(key, proc.n_ranks)
        if owner == proc.rank:
            yield from proc.compute(proc.cost.ops(1))
            record = state["cells"].get(key)
            return record
        cache = state["cache"]
        if key in cache:
            yield from proc.compute(proc.cost.ops(1))
            return cache[key]
        reply = yield from proc.am.bulk_rpc(owner, "barnes_fetch_cell",
                                            key)
        record, _nbytes = reply
        cache[key] = record
        return record

    # .. update ..................................................................
    def _update_bodies(self, state: dict) -> None:
        """Leapfrog update; every rank updates the full replicated set
        identically (deterministic, no communication needed for the
        scaled-down body counts)."""
        state["velocities"] += state["accels"] * self.dt
        state["positions"] = np.clip(
            state["positions"] + state["velocities"] * self.dt,
            0.01, 0.99)

    # -- results ----------------------------------------------------------------
    def finalize(self, procs: List[Proc]) -> np.ndarray:
        accels = np.zeros((self._n_nodes * self.bodies_per_proc, 3))
        for proc in procs:
            rows = self._my_bodies(proc)
            accels[list(rows)] = proc.state["barnes"]["accels"][list(rows)]
        expected = self._reference_accels()
        if not np.allclose(accels, expected, rtol=1e-6, atol=1e-9):
            raise AssertionError(
                "Barnes-Hut accelerations diverge from the sequential "
                "reference")
        return accels

    def _reference_accels(self) -> np.ndarray:
        """Sequential Barnes-Hut over the same bodies, geometry and θ."""
        positions = self._positions.copy()
        velocities = self._velocities.copy()
        masses = self._masses
        total = len(masses)
        accels = np.zeros((total, 3))
        for _step in range(self.steps):
            cells: Dict[tuple, dict] = {}
            for body in range(total):
                _sequential_insert(
                    cells, (body, positions[body], float(masses[body])))
            _sequential_moments(cells)
            for body in range(total):
                accels[body] = _sequential_force(
                    cells, body, positions[body], self.theta)
            velocities += accels * self.dt
            positions = np.clip(positions + velocities * self.dt,
                                0.01, 0.99)
        return accels


# ---------------------------------------------------------------------------
# Shared cell-store mutation and the sequential reference implementation.
# ---------------------------------------------------------------------------

def _store_cell(cells: dict, key, record: dict) -> None:
    """Insert/replace a cell record at its owner."""
    record = dict(record)
    if record["type"] == "internal":
        record["children"] = set(record.get("children", ()))
    cells[key] = record


def _add_child(cells: dict, key, octant: int) -> None:
    """Register ``octant`` in internal cell ``key``'s child map."""
    cells[key]["children"].add(octant)


def _pairwise(position: np.ndarray, source: np.ndarray,
              mass: float) -> np.ndarray:
    delta = source - position
    distance_sq = float(delta @ delta) + SOFTENING ** 2
    return mass * delta / distance_sq ** 1.5


def _sequential_insert(cells: dict, body: tuple) -> None:
    key: Tuple[int, ...] = ()
    while True:
        record = cells.get(key)
        if record is not None and record["type"] == "internal":
            key = key + (octant_of(body[1], key),)
            continue
        if record is None:
            _store_cell(cells, key, {"type": "leaf", "bodies": [body]})
            if key:
                _add_child(cells, key[:-1], key[-1])
            return
        if len(key) >= MAX_DEPTH or len(record["bodies"]) > 1:
            bodies = record["bodies"] + [body]
            _store_cell(cells, key, {"type": "leaf", "bodies": bodies})
            return
        for cell, new_record in plan_split(key, record["bodies"][0],
                                           body):
            _store_cell(cells, cell, new_record)
        return


def _sequential_moments(cells: dict) -> None:
    for key in sorted(cells, key=len, reverse=True):
        record = cells[key]
        if record["type"] == "leaf":
            mass = sum(b[2] for b in record["bodies"])
            com = sum((b[2] * b[1] for b in record["bodies"]),
                      np.zeros(3)) / mass
        else:
            mass = 0.0
            com = np.zeros(3)
            for octant in record["children"]:
                child_mass, child_com = cells[key + (octant,)]["moment"]
                mass += child_mass
                com += child_mass * np.asarray(child_com)
            com /= mass
        record["moment"] = (mass, com)


def _sequential_force(cells: dict, body: int, position: np.ndarray,
                      theta: float) -> np.ndarray:
    acc = np.zeros(3)
    stack: List[Tuple[int, ...]] = [()]
    while stack:
        key = stack.pop()
        record = cells.get(key)
        if record is None:
            continue
        if record["type"] == "leaf":
            for other_id, other_pos, other_mass in record["bodies"]:
                if other_id != body:
                    acc += _pairwise(position, np.asarray(other_pos),
                                     other_mass)
            continue
        mass, com = record["moment"]
        com = np.asarray(com)
        size = 2.0 * cell_half_width(key)
        distance = float(np.linalg.norm(com - position))
        if distance > 0 and size / distance < theta:
            acc += _pairwise(position, com, mass)
        else:
            for octant in sorted(record["children"], reverse=True):
                stack.append(key + (octant,))
    return acc


# ---------------------------------------------------------------------------
# Active Message handlers (cell owner side).
# ---------------------------------------------------------------------------

def _get_cell_handler(am, packet) -> Generator:
    cells = am.host.state["barnes"]["cells"]
    record = cells.get(packet.payload)
    payload: Optional[dict] = None
    if record is not None:
        payload = {"type": record["type"]}
        if record["type"] == "leaf":
            payload["bodies"] = list(record["bodies"])
    yield from am.reply(payload)


def _put_cell_handler(am, packet) -> Generator:
    key, record = packet.payload
    _store_cell(am.host.state["barnes"]["cells"], key, record)
    yield from am.reply(True)


def _add_child_handler(am, packet) -> Generator:
    key, octant = packet.payload
    _add_child(am.host.state["barnes"]["cells"], key, octant)
    yield from am.reply(True)


def _get_moment_handler(am, packet) -> Generator:
    record = am.host.state["barnes"]["cells"][packet.payload]
    mass, com = record["moment"]
    yield from am.reply((mass, com.tolist()))


def _fetch_cell_handler(am, packet) -> Generator:
    """Interaction-phase fetch: the full read-only cell record, shipped
    as a bulk reply (cells carry moments and body lists)."""
    record = am.host.state["barnes"]["cells"].get(packet.payload)
    payload: Optional[dict] = None
    if record is not None:
        payload = {"type": record["type"]}
        if record["type"] == "leaf":
            payload["bodies"] = [
                (bid, np.asarray(pos), mass)
                for bid, pos, mass in record["bodies"]]
        else:
            payload["children"] = sorted(record["children"])
            payload["moment"] = record["moment"]
    yield from am.reply_bulk(payload, CELL_BYTES)
