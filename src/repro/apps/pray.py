"""P-Ray: scene-passing parallel ray tracer with software caching.

The scene's objects are distributed evenly over the processors
(standing in for the paper's distributed read-only spatial octree);
pixels are divided evenly too.  Tracing a ray means visiting a
deterministic sequence of candidate objects; an object owned remotely is
fetched with a blocking bulk get (a short read request answered by a
bulk reply -- which is why Table 4 shows P-Ray at ~96% reads *and* ~48%
bulk messages) and kept in a fixed-size software-managed cache.

Object popularity follows a Zipf-like law, so a few "hot" objects are
fetched by everybody -- the dark hot-spot columns of Figure 4f and the
source of P-Ray's communication imbalance.
"""

from __future__ import annotations

from typing import Generator, List

import numpy as np

from repro.apps.base import Application
from repro.gas.cache import SoftwareCache
from repro.gas.runtime import Proc

__all__ = ["PRay"]

#: Wire bytes per fetched object (geometry + shading record).  Table 4
#: implies ~110 bytes per P-Ray bulk message (358 KB/s over ~3.2 bulk
#: messages per ms).
OBJECT_BYTES = 128


class PRay(Application):
    """The ray tracer.

    Parameters
    ----------
    pixels_per_proc:
        Rays traced by each processor.
    n_objects:
        Scene objects, distributed cyclically over processors.
    objects_per_ray:
        Candidate objects each ray tests.
    cache_objects:
        Capacity of the per-processor software cache (LRU).
    zipf_s:
        Zipf exponent for object popularity (hot spots).
    """

    name = "P-Ray"

    def __init__(self, pixels_per_proc: int = 48, n_objects: int = 256,
                 objects_per_ray: int = 8, cache_objects: int = 32,
                 zipf_s: float = 1.2) -> None:
        if min(pixels_per_proc, n_objects, objects_per_ray,
               cache_objects) < 1:
            raise ValueError("all P-Ray parameters must be >= 1")
        self.pixels_per_proc = pixels_per_proc
        self.n_objects = n_objects
        self.objects_per_ray = objects_per_ray
        self.cache_objects = cache_objects
        self.zipf_s = zipf_s
        self._object_data: np.ndarray = np.empty(0)
        self._ray_objects: np.ndarray = np.empty((0, 0), dtype=np.int64)
        self._n_nodes = 0

    @classmethod
    def scaled(cls, scale: float = 1.0) -> "PRay":
        return cls(pixels_per_proc=max(16, int(48 * scale)),
                   n_objects=max(64, int(256 * scale)))

    # -- input -----------------------------------------------------------------
    def configure(self, n_nodes: int, seed: int) -> None:
        self._n_nodes = n_nodes
        rng = np.random.RandomState(seed + 0xFACE)
        self._object_data = rng.uniform(0.5, 2.0, self.n_objects)
        # Zipf-like popularity: ray->object hits concentrate on low ids.
        total_rays = n_nodes * self.pixels_per_proc
        weights = 1.0 / np.arange(1, self.n_objects + 1) ** self.zipf_s
        weights /= weights.sum()
        self._ray_objects = rng.choice(
            self.n_objects, size=(total_rays, self.objects_per_ray),
            p=weights)

    def setup_rank(self, proc: Proc) -> Generator:
        # Block division: "processors evenly divide ownership of objects
        # in the scene".  Popular low-id objects therefore concentrate
        # on the low ranks — the paper's hot spots.
        scene = proc.allocate(self.n_objects, name="pray_scene",
                              layout="block", dtype="float64",
                              item_bytes=OBJECT_BYTES)
        local = proc.local(scene)
        start = scene.local_start(proc.rank)
        local[:] = self._object_data[start:start + len(local)]
        proc.state["pray"] = {
            "scene": scene,
            "cache": SoftwareCache(scene, self.cache_objects),
            "image": [],
        }
        return
        yield  # pragma: no cover

    # -- the timed program ---------------------------------------------------------
    def run_rank(self, proc: Proc) -> Generator:
        state = proc.state["pray"]
        scene = state["scene"]
        first_ray = proc.rank * self.pixels_per_proc
        for ray in range(first_ray, first_ray + self.pixels_per_proc):
            shade = 0.0
            for object_id in self._ray_objects[ray]:
                object_id = int(object_id)
                value = yield from self._fetch(proc, state, scene,
                                               object_id)
                # Intersection test against the object's patch set plus
                # shading arithmetic: tens of microseconds per candidate
                # object on the 167 MHz host.
                shade += value / (1.0 + (ray % 7))
                yield from proc.compute(proc.cost.ops(1500))
            state["image"].append((ray, shade))

    def _fetch(self, proc: Proc, state: dict, scene,
               object_id: int) -> Generator:
        """Local read, cache hit, or a bulk-get miss with LRU insert —
        all through the shared software-cache component."""
        value = yield from state["cache"].read(proc, object_id)
        return float(value)

    # -- results ----------------------------------------------------------------
    def finalize(self, procs: List[Proc]) -> np.ndarray:
        pixels = {}
        for proc in procs:
            for ray, shade in proc.state["pray"]["image"]:
                pixels[ray] = shade
        total_rays = self._n_nodes * self.pixels_per_proc
        image = np.asarray([pixels[r] for r in range(total_rays)])
        expected = self._reference_image()
        if not np.allclose(image, expected, rtol=1e-9):
            raise AssertionError("P-Ray image differs from the "
                                 "sequential reference")
        return image

    def _reference_image(self) -> np.ndarray:
        total_rays = self._n_nodes * self.pixels_per_proc
        image = np.zeros(total_rays)
        for ray in range(total_rays):
            for object_id in self._ray_objects[ray]:
                image[ray] += self._object_data[int(object_id)] \
                    / (1.0 + (ray % 7))
        return image
