"""Parallel Murφ: explicit-state protocol verification.

Stern & Dill's parallelisation [42]: the reachable state space is
explored in parallel, with a hash function mapping every state to an
*owning* processor.  When a processor discovers a successor state it
sends the state to its owner; the owner checks its seen-set and, for new
states, enqueues them for expansion (checking them against the assertion
list -- local compute).  Outgoing states are batched per destination and
shipped as bulk messages (the paper's Murφ is ~50% bulk), with
stragglers flushed as short messages.

The protocol itself is a deterministic synthetic transition system (our
stand-in for the SCI protocol model, which is not available): states are
integers whose successors are derived from a mixing hash, giving an
irregular reachable graph of configurable size.  Correctness is checked
against a sequential BFS of the same system.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, List, Set

from repro.am.layer import HandlerTable
from repro.apps.base import Application
from repro.gas.runtime import Proc

__all__ = ["Murphi", "TransitionSystem"]

#: Wire bytes per state descriptor (the paper's protocol states are a
#: few dozen bytes).
STATE_BYTES = 16


class TransitionSystem:
    """A deterministic synthetic protocol: the successor relation.

    ``state_space`` bounds the universe; roughly half of it is reachable
    from state 0 for the default branching.
    """

    def __init__(self, state_space: int, branching: int,
                 seed: int, violation_stride: int = 0) -> None:
        if state_space < 2 or branching < 1:
            raise ValueError("state_space >= 2 and branching >= 1 required")
        if violation_stride < 0:
            raise ValueError("violation_stride must be >= 0")
        self.state_space = state_space
        self.branching = branching
        self.seed = seed
        #: Every ``violation_stride``-th state violates the assertion
        #: list (0 = a correct protocol with nothing to find).
        self.violation_stride = violation_stride

    def successors(self, state: int) -> List[int]:
        """The deterministic successor states of ``state``."""
        results = []
        for rule in range(self.branching):
            mixed = (state * 2654435761 + rule * 40503
                     + self.seed * 97) & 0xFFFFFFFF
            mixed ^= mixed >> 13
            mixed = (mixed * 2246822519) & 0xFFFFFFFF
            mixed ^= mixed >> 16
            results.append(mixed % self.state_space)
        return results

    def owner(self, state: int, n_nodes: int) -> int:
        """The processor owning ``state`` (Stern-Dill hash partition)."""
        return ((state * 0x9E3779B1) & 0xFFFFFFFF) % n_nodes

    def violates(self, state: int) -> bool:
        """Whether ``state`` fails the assertion list."""
        if self.violation_stride == 0:
            return False
        return state % self.violation_stride == 0

    def reachable_states(self, start: int = 0) -> set:
        """Sequential BFS reference: the reachable state set."""
        seen = {start}
        frontier = deque([start])
        while frontier:
            state = frontier.popleft()
            for successor in self.successors(state):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    def reachable_count(self, start: int = 0) -> int:
        """Sequential BFS reference: number of reachable states."""
        return len(self.reachable_states(start))

    def reachable_violations(self, start: int = 0) -> set:
        """Reachable states failing the assertion list."""
        return {s for s in self.reachable_states(start)
                if self.violates(s)}


class Murphi(Application):
    """The parallel verifier.

    Parameters
    ----------
    state_space:
        Universe size of the synthetic protocol.
    branching:
        Rules (successors) per state.
    batch_size:
        States per bulk message; smaller leftovers go as short messages.
    """

    name = "Murphi"

    def __init__(self, state_space: int = 1500, branching: int = 3,
                 batch_size: int = 3, violation_stride: int = 0) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.state_space = state_space
        self.branching = branching
        self.batch_size = batch_size
        self.violation_stride = violation_stride
        self._system: TransitionSystem = TransitionSystem(
            state_space, branching, seed=0,
            violation_stride=violation_stride)

    @classmethod
    def scaled(cls, scale: float = 1.0) -> "Murphi":
        return cls(state_space=max(200, int(1500 * scale)))

    # -- lifecycle ----------------------------------------------------------
    def configure(self, n_nodes: int, seed: int) -> None:
        self._system = TransitionSystem(
            self.state_space, self.branching, seed=seed,
            violation_stride=self.violation_stride)

    def register_handlers(self, table: HandlerTable) -> None:
        table.register("murphi_states", _states_handler)

    def setup_rank(self, proc: Proc) -> Generator:
        queue: deque = deque()
        seen: Set[int] = set()
        if self._system.owner(0, proc.n_ranks) == proc.rank:
            seen.add(0)
            queue.append(0)
        proc.state["murphi"] = {
            "queue": queue,
            "seen": seen,
            "processed": 0,
            "violations": [],
        }
        return
        yield  # pragma: no cover

    # -- the timed program --------------------------------------------------------
    def run_rank(self, proc: Proc) -> Generator:
        state = proc.state["murphi"]
        system = self._system
        queue: deque = state["queue"]
        outboxes = {rank: [] for rank in range(proc.n_ranks)
                    if rank != proc.rank}

        while True:
            while queue:
                current = queue.popleft()
                state["processed"] += 1
                # Expand: apply every rule, check the assertion list.
                yield from proc.compute(proc.cost.state_hashes(1))
                if system.violates(current):
                    state["violations"].append(current)
                for successor in system.successors(current):
                    owner = system.owner(successor, proc.n_ranks)
                    if owner == proc.rank:
                        if successor not in state["seen"]:
                            state["seen"].add(successor)
                            queue.append(successor)
                    else:
                        outbox = outboxes[owner]
                        outbox.append(successor)
                        if len(outbox) >= self.batch_size:
                            yield from proc.am.bulk_store(
                                owner, "murphi_states", list(outbox),
                                STATE_BYTES * len(outbox))
                            outbox.clear()
                # Service incoming states between expansions.
                yield from proc.poll()
            # Queue empty: flush leftovers — still batched per
            # destination (bulk for 2+, short for singletons).
            for owner, outbox in outboxes.items():
                if len(outbox) >= 2:
                    yield from proc.am.bulk_store(
                        owner, "murphi_states", list(outbox),
                        STATE_BYTES * len(outbox))
                elif outbox:
                    yield from proc.am.send_request(
                        owner, "murphi_states", list(outbox),
                        size=STATE_BYTES)
                outbox.clear()
            yield from proc.am.drain()
            yield from proc.barrier()
            # After the barrier every in-flight state has been deposited
            # (acks imply handler execution), so queue lengths decide
            # global termination.
            pending = yield from proc.allreduce(
                len(queue), lambda a, b: a + b)
            if pending == 0:
                return

    # -- results --------------------------------------------------------------------
    def finalize(self, procs: List[Proc]) -> dict:
        explored = sum(p.state["murphi"]["processed"] for p in procs)
        distinct = sum(len(p.state["murphi"]["seen"]) for p in procs)
        expected = self._system.reachable_count()
        if explored != expected or distinct != expected:
            raise AssertionError(
                f"Murphi explored {explored} states "
                f"({distinct} marked seen), reference BFS says {expected}")
        violations = set()
        for proc in procs:
            violations.update(proc.state["murphi"]["violations"])
        expected_violations = self._system.reachable_violations()
        if violations != expected_violations:
            raise AssertionError(
                f"Murphi flagged {len(violations)} violations, the "
                f"reference finds {len(expected_violations)}")
        return {"explored": explored,
                "violations": sorted(violations)}


def _states_handler(am, packet) -> None:
    """Owner-side dedup and enqueue of received states."""
    state = am.host.state["murphi"]
    for incoming in packet.payload:
        if incoming not in state["seen"]:
            state["seen"].add(incoming)
            state["queue"].append(incoming)
