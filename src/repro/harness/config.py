"""Reproducible experiment configurations.

An :class:`ExperimentConfig` captures everything that determines a run
— machine parameters, dials, cluster shape, application and its inputs,
and the seed — and round-trips through JSON, so any measurement in a
paper or bug report can be re-run from a one-line file:

    config = ExperimentConfig.from_json(path.read_text())
    result = config.build_cluster().run(config.build_app())
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.am.tuning import TuningKnobs
from repro.apps import (Barnes, Connect, EM3D, Murphi, NowSort, PRay,
                        RadixBulk, RadixSort, SampleSort)
from repro.cluster.machine import Cluster
from repro.cluster.node import CostModel
from repro.network.loggp import LogGPParams

__all__ = ["ExperimentConfig", "APP_REGISTRY"]

#: Constructable application classes by Table 3 row label.  EM3D's two
#: variants share a class, selected by its ``variant`` kwarg.
APP_REGISTRY = {
    "Radix": RadixSort,
    "EM3D": EM3D,
    "Sample": SampleSort,
    "Barnes": Barnes,
    "P-Ray": PRay,
    "Murphi": Murphi,
    "Connect": Connect,
    "NOW-sort": NowSort,
    "Radb": RadixBulk,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """One fully specified run."""

    app_name: str
    app_kwargs: Dict[str, Any] = field(default_factory=dict)
    n_nodes: int = 32
    seed: int = 0
    window: int = 8
    window_scope: str = "per-destination"
    fabric: str = "flat"
    params: Dict[str, float] = field(default_factory=dict)
    knobs: Dict[str, float] = field(default_factory=dict)
    cost: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.app_name not in APP_REGISTRY:
            known = ", ".join(sorted(APP_REGISTRY))
            raise KeyError(
                f"unknown application {self.app_name!r}; known: {known}")

    # -- construction ------------------------------------------------------
    def build_params(self) -> LogGPParams:
        """The machine's LogGP parameters (NOW baseline if unset)."""
        return LogGPParams(**self.params) if self.params \
            else LogGPParams.berkeley_now()

    def build_knobs(self) -> TuningKnobs:
        """The apparatus dials."""
        return TuningKnobs(**self.knobs)

    def build_cost(self) -> CostModel:
        """The host CPU cost model."""
        return CostModel(**self.cost)

    def build_cluster(self) -> Cluster:
        """Assemble the configured cluster."""
        return Cluster(n_nodes=self.n_nodes,
                       params=self.build_params(),
                       knobs=self.build_knobs(),
                       window=self.window,
                       window_scope=self.window_scope,
                       fabric=self.fabric,
                       cost=self.build_cost(),
                       seed=self.seed)

    def build_app(self):
        """Instantiate the configured application."""
        return APP_REGISTRY[self.app_name](**self.app_kwargs)

    def run(self):
        """Build and execute in one step."""
        return self.build_cluster().run(self.build_app())

    # -- serialisation -------------------------------------------------------
    def to_json(self, indent: int = 2) -> str:
        """Serialise to a stable, human-diffable JSON document."""
        return json.dumps(dataclasses.asdict(self), indent=indent,
                          sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentConfig":
        data = json.loads(text)
        unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(
                f"unknown config keys: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_run(cls, app, cluster: Cluster) -> "ExperimentConfig":
        """Capture an app instance + cluster as a config.

        Application kwargs are taken from the instance's public
        non-derived attributes that match its constructor.
        """
        import inspect
        app_class = type(app)
        names = [name for name, _cls in APP_REGISTRY.items()
                 if _cls is app_class]
        if not names:
            raise KeyError(f"{app_class.__name__} is not registered")
        signature = inspect.signature(app_class.__init__)
        kwargs = {}
        for parameter in signature.parameters.values():
            if parameter.name == "self":
                continue
            if hasattr(app, parameter.name):
                kwargs[parameter.name] = getattr(app, parameter.name)
        return cls(
            app_name=names[0],
            app_kwargs=kwargs,
            n_nodes=cluster.n_nodes,
            seed=cluster.seed,
            window=cluster.window,
            window_scope=cluster.window_scope,
            fabric=cluster.fabric,
            params=dataclasses.asdict(cluster.params),
            knobs=dataclasses.asdict(cluster.knobs),
            cost=dataclasses.asdict(cluster.cost),
        )
