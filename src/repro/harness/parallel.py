"""Parallel execution of sweep points and whole experiments.

Every point of Figures 5-8 (and every table artifact) is an independent
deterministic simulation, so the evaluation is embarrassingly parallel
at two granularities:

* **sweep points** — :func:`run_sweep_parallel` fans the (value, knobs)
  grid of one sweep across a ``ProcessPoolExecutor``.  Each worker runs
  the exact same :func:`execute_point` the serial path uses, so results
  are bit-identical to serial execution (same seed → same ``runtime_us``
  and ``events_processed``) and livelocked / over-budget points come
  back as the same ``N/A`` :class:`~repro.harness.sweeps.SweepPoint`.
* **experiments** — :func:`run_experiments_parallel` fans whole
  figure/table entry points of :mod:`repro.harness.experiments` across
  workers, for drivers like ``scripts/generate_experiments.py`` that
  regenerate many artifacts at once.

Both layers consult an optional :class:`~repro.harness.runcache.
RunCache` so previously computed points are never re-simulated; cache
probing happens in the parent, and only misses are shipped to workers.
Each computed point is cached the moment its future completes (not
after the whole batch), so an interrupted sweep — crash, Ctrl-C, or a
raising worker — keeps every point that finished; the rerun serves
them as hits and resimulates only the lost ones.  The campaign layer
(:mod:`repro.harness.campaign`) builds its resume contract on this.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.am.tuning import TuningKnobs
from repro.cluster.machine import Cluster
from repro.gas.runtime import LivelockError
from repro.harness.runcache import RunCache, run_key_spec
from repro.harness.sweeps import SweepPoint, SweepResult
from repro.network.faults import FaultError, FaultPlan
from repro.network.loggp import LogGPParams
from repro.sanitize.reports import DeadlockError

__all__ = ["execute_point", "run_sweep_points", "run_sweep_parallel",
           "run_experiments_parallel", "default_jobs", "PointTask"]


def default_jobs() -> int:
    """Worker count when unspecified: one per available core."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity masks
        return os.cpu_count() or 1


def _pool(jobs: int) -> ProcessPoolExecutor:
    """A process pool preferring fork (cheap, pytest-safe) over spawn."""
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    else:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=jobs, mp_context=context)


@dataclass(frozen=True)
class PointTask:
    """One sweep point's full configuration (picklable work unit)."""

    app: Any
    n_nodes: int
    value: float
    knobs: TuningKnobs
    params: LogGPParams
    seed: int = 0
    run_limit_us: Optional[float] = None
    livelock_limit: int = 200_000
    window: int = 8
    faults: Optional[FaultPlan] = None
    #: Collective tuning config (``repro.coll.tuner.CollConfig``), or
    #: None for the legacy fixed schedules.
    coll: Optional[Any] = None
    #: Run under simsan.  Never part of :meth:`key_spec` — sanitized
    #: points bypass the cache entirely instead of forking the key space
    #: (the run itself is bit-identical either way).
    sanitize: bool = False
    #: Scheduling engine for the point's Simulator ("heap", "calendar",
    #: or None for the process default).  Never part of :meth:`key_spec`
    #: — engines are bit-identical, so cached results are shared.
    engine: Optional[str] = None

    def key_spec(self) -> Dict[str, Any]:
        """The cache key-spec for this point."""
        return run_key_spec(
            self.app, self.n_nodes, self.params, self.knobs, self.seed,
            run_limit_us=self.run_limit_us,
            livelock_limit=self.livelock_limit, window=self.window,
            faults=self.faults, coll=self.coll)


def execute_point(task: PointTask) -> SweepPoint:
    """Run one sweep point to completion (or to its N/A failure).

    This is the single execution path shared by the serial sweep loop
    and the process-pool workers — which is what guarantees parallel
    results are bit-identical to serial ones.
    """
    cluster = Cluster(n_nodes=task.n_nodes, params=task.params,
                      knobs=task.knobs, seed=task.seed,
                      run_limit_us=task.run_limit_us,
                      livelock_limit=task.livelock_limit,
                      window=task.window, faults=task.faults,
                      sanitize=task.sanitize, coll=task.coll,
                      engine=task.engine)
    point = SweepPoint(value=task.value, knobs=task.knobs)
    # Failure taxonomy: the prefix before ":" is the category that
    # SweepPoint.failure_category surfaces.  DeadlockError must be
    # caught before TimeoutError (it is a subclass).
    try:
        point.result = cluster.run(task.app)
    except DeadlockError as exc:
        point.failure = f"deadlock: {exc}"
    except LivelockError as exc:
        point.failure = f"livelock: {exc}"
    except TimeoutError as exc:
        point.failure = f"budget exceeded: {exc}"
    except FaultError as exc:
        point.failure = f"fault: {exc}"
    return point


def run_sweep_points(app: Any, n_nodes: int, parameter: str,
                     values: Sequence[float],
                     knob_for: Callable[[float], TuningKnobs],
                     params: Optional[LogGPParams] = None,
                     seed: int = 0,
                     run_limit_us: Optional[float] = None,
                     livelock_limit: int = 200_000,
                     window: int = 8,
                     jobs: Optional[int] = None,
                     cache: Optional[RunCache] = None,
                     fault_for: Optional[
                         Callable[[float], Optional[FaultPlan]]] = None,
                     sanitize: bool = False,
                     coll: Optional[Any] = None,
                     engine: Optional[str] = None,
                     app_for: Optional[
                         Callable[[float], Any]] = None) -> SweepResult:
    """The sweep engine behind :func:`repro.harness.sweeps.run_sweep`.

    ``jobs=None`` or ``jobs<=1`` runs points serially in-process;
    ``jobs>1`` fans cache misses across a process pool.  Point order in
    the returned :class:`SweepResult` always matches ``values``.

    ``fault_for`` maps each dialed value to the
    :class:`~repro.network.faults.FaultPlan` for that point (or None
    for a perfectly reliable fabric), so fault sweeps reuse this exact
    engine — including the cache and process pool.

    ``sanitize=True`` runs every point under simsan and bypasses the
    cache in both directions (no gets, no puts): cached entries carry no
    sanitizer report, and sanitized results must not shadow clean ones.

    ``coll`` applies one collective tuning config
    (:class:`~repro.coll.tuner.CollConfig`) to every point; it is part
    of the cache key unless it is the default fixed config.

    ``engine`` selects the Simulator scheduling engine for every point
    (see :data:`repro.sim.ENGINES`).  Engines are bit-identical, so the
    knob is deliberately not part of the cache key: a result computed
    under one engine is valid for all of them.

    ``app_for`` maps each dialed value to the application instance for
    that point, for sweeps whose axis is an *application* knob rather
    than a machine dial — e.g. the serving tier's offered-load axis.
    The per-point app participates in the cache key via its
    fingerprint, so such sweeps cache exactly like dial sweeps.
    """
    params = params if params is not None else LogGPParams.berkeley_now()
    if sanitize:
        cache = None
    tasks = [
        PointTask(app=app_for(value) if app_for is not None else app,
                  n_nodes=n_nodes, value=value,
                  knobs=knob_for(value), params=params, seed=seed,
                  run_limit_us=run_limit_us,
                  livelock_limit=livelock_limit, window=window,
                  faults=fault_for(value) if fault_for is not None else None,
                  sanitize=sanitize, coll=coll, engine=engine)
        for value in values
    ]
    points: List[Optional[SweepPoint]] = [None] * len(tasks)

    pending: List[int] = []
    for index, task in enumerate(tasks):
        if cache is not None:
            outcome = cache.get(task.key_spec())
            if outcome is not None:
                result, failure = outcome
                points[index] = SweepPoint(value=task.value,
                                           knobs=task.knobs,
                                           result=result, failure=failure)
                continue
        pending.append(index)

    def finish(index: int, point: SweepPoint) -> None:
        """Record one computed point and persist it *immediately*.

        Caching per point (not after the whole batch, as this engine
        once did) is what makes an interrupted sweep resumable: a
        crash, Ctrl-C, or one raising worker no longer discards every
        point that had already finished — the rerun serves them as
        cache hits and only simulates the genuinely lost ones.
        """
        points[index] = point
        if cache is not None:
            cache.put(tasks[index].key_spec(),
                      result=point.result, failure=point.failure)

    workers = jobs if jobs is not None else 1
    if pending and workers > 1:
        with _pool(min(workers, len(pending))) as pool:
            futures = {pool.submit(execute_point, tasks[index]): index
                       for index in pending}
            # as_completed (not pool.map) so every finished point is
            # cached even when a later future fails: a worker killed
            # mid-task breaks the whole pool, and an exception that
            # escapes execute_point's failure taxonomy aborts the
            # sweep — either way the completed points must survive.
            error: Optional[BaseException] = None
            for future in as_completed(futures):
                try:
                    point = future.result()
                # Deferred, not swallowed: the first failure is re-raised
                # after the drain, once every completed point is cached.
                except BaseException as exc:  # simlint: disable=broad-except
                    if error is None:
                        error = exc
                    continue
                finish(futures[future], point)
            if error is not None:
                raise error
    else:
        for index in pending:
            finish(index, execute_point(tasks[index]))

    sweep = SweepResult(app_name=app.name, n_nodes=n_nodes,
                        parameter=parameter)
    sweep.points = points
    return sweep


def run_sweep_parallel(app: Any, n_nodes: int, parameter: str,
                       values: Sequence[float],
                       knob_for: Callable[[float], TuningKnobs],
                       jobs: Optional[int] = None,
                       **kwargs) -> SweepResult:
    """:func:`run_sweep_points` with a pool sized to the machine.

    Accepts every keyword :func:`repro.harness.sweeps.run_sweep` does,
    plus ``cache``; ``jobs`` defaults to one worker per core.
    """
    if jobs is None:
        jobs = default_jobs()
    return run_sweep_points(app, n_nodes, parameter, values, knob_for,
                            jobs=jobs, **kwargs)


# ---------------------------------------------------------------------------
# Experiment-level fan-out.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _ExperimentTask:
    """One ``repro.harness.experiments`` entry point invocation."""

    name: str
    kwargs: Dict[str, Any] = field(default_factory=dict)


def _run_experiment(task: _ExperimentTask) -> Any:
    from repro.harness import experiments
    return getattr(experiments, task.name)(**task.kwargs)


def run_experiments_parallel(requests: Sequence[Tuple[str, Dict[str, Any]]],
                             jobs: Optional[int] = None) -> List[Any]:
    """Run many experiment entry points, fanned across worker processes.

    ``requests`` is a sequence of ``(name, kwargs)`` pairs where ``name``
    is an attribute of :mod:`repro.harness.experiments` (e.g.
    ``"figure5_overhead"``).  Results come back in request order, each
    exactly what the named entry point returns.  With ``jobs<=1`` the
    requests run serially in-process (identical results, no pool).
    """
    tasks = []
    for name, kwargs in requests:
        from repro.harness import experiments
        if not hasattr(experiments, name):
            raise KeyError(f"unknown experiment {name!r}")
        tasks.append(_ExperimentTask(name=name, kwargs=dict(kwargs)))
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(tasks) <= 1:
        return [_run_experiment(task) for task in tasks]
    with _pool(min(jobs, len(tasks))) as pool:
        return list(pool.map(_run_experiment, tasks))
