"""One entry point per table and figure of the paper's evaluation.

Each function runs the necessary simulations and returns a structured
result object with ``rows()`` / ``render()`` so the artifact can be
regenerated as text (the benchmark suite calls these and asserts the
qualitative shape).  Input scale and application subsets are
parameters, so benchmarks can run quickly and users can crank fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.base import Application
from repro.calibrate.bulk import calibrate_bulk_bandwidth
from repro.calibrate.calibration import (CalibrationRow, calibration_table,
                                         render_calibration)
from repro.calibrate.signature import (LogPSignature, logp_signature,
                                       measure_parameters)
from repro.cluster.machine import Cluster, RunResult
from repro.cluster.presets import MACHINE_PRESETS
from repro.harness.report import ascii_plot, render_table
from repro.harness.suite import suite_for
from repro.harness.sweeps import (SweepResult, bulk_bandwidth_sweep,
                                  collective_sweep, fault_sweep, gap_sweep,
                                  latency_sweep, overhead_sweep,
                                  spike_decay_sweep)
from repro.instruments.balance import render_balance
from repro.models.gap import BurstGapModel
from repro.models.overhead import OverheadModel
from repro.am.tuning import TuningKnobs
from repro.network.loggp import LogGPParams

__all__ = [
    "table1_baseline_params", "figure3_signature", "table2_calibration",
    "table3_baseline_runtimes", "figure4_balance", "table4_comm_summary",
    "figure5_overhead", "table5_overhead_model", "figure6_gap",
    "table6_gap_model", "figure7_latency", "figure8_bulk",
    "predicted_sensitivity",
    "figure9_faults", "table7_spike_decay",
    "figure10_collectives", "table8_coll_tuner",
    "figure11_serving",
]


# ---------------------------------------------------------------------------
# Table 1 -- baseline LogGP parameters of the machine presets.
# ---------------------------------------------------------------------------

@dataclass
class Table1:
    """Table 1's measured rows."""

    rows_: List[dict]

    def rows(self) -> List[dict]:
        """Flat dict rows."""
        return self.rows_

    def render(self) -> str:
        """ASCII rendering of the table."""
        return render_table(self.rows_, title="Table 1: baseline LogGP "
                            "parameters (measured on the simulated "
                            "machines)")


def table1_baseline_params() -> Table1:
    """Measure (o, g, L, 1/G) of every machine preset with the
    microbenchmarks, as Table 1 reports them."""
    rows = []
    for name, params in MACHINE_PRESETS.items():
        if name == "lan-tcp":
            continue  # Table 1 lists the three real machines
        measured = measure_parameters(params)
        bulk = calibrate_bulk_bandwidth(params, sizes=(2048, 4096, 8192))
        rows.append({
            "Platform": name,
            "o (us)": round(measured.overhead, 1),
            "g (us)": round(measured.gap, 1),
            "L (us)": round(measured.latency, 1),
            "MB/s (1/G)": round(bulk.saturated_mb_s),
        })
    return Table1(rows_=rows)


# ---------------------------------------------------------------------------
# Figure 3 -- the LogP signature.
# ---------------------------------------------------------------------------

def figure3_signature(desired_gap: float = 14.0) -> LogPSignature:
    """The paper's example signature: g dialed to 14 µs, Δ ∈ {0, 10}."""
    params = LogGPParams.berkeley_now()
    knobs = TuningKnobs.added_gap(max(0.0, desired_gap - params.gap))
    return logp_signature(params, knobs,
                          burst_sizes=(1, 2, 4, 8, 16, 32, 64),
                          deltas=(0.0, 10.0))


# ---------------------------------------------------------------------------
# Table 2 -- calibration of the dials.
# ---------------------------------------------------------------------------

@dataclass
class Table2:
    """Table 2's calibration rows."""

    rows_: List[CalibrationRow]

    def rows(self) -> List[dict]:
        """Flat dict rows."""
        return [r.as_row() for r in self.rows_]

    def render(self) -> str:
        """ASCII rendering of the table."""
        return render_calibration(self.rows_)


def table2_calibration(**kwargs) -> Table2:
    """Regenerate Table 2 (see :func:`repro.calibrate.calibration_table`)."""
    return Table2(rows_=calibration_table(**kwargs))


# ---------------------------------------------------------------------------
# Table 3 -- applications and base runtimes on 16 and 32 nodes.
# ---------------------------------------------------------------------------

@dataclass
class Table3:
    """Table 3's measured base runtimes."""

    runtimes: Dict[str, Dict[int, float]]  # app -> nodes -> runtime_us

    def rows(self) -> List[dict]:
        """Flat dict rows (one per application)."""
        rows = []
        for app_name, by_nodes in self.runtimes.items():
            row = {"Program": app_name}
            for nodes in sorted(by_nodes):
                row[f"{nodes}-node time (ms)"] = round(
                    by_nodes[nodes] / 1000.0, 2)
            rows.append(row)
        return rows

    def render(self) -> str:
        """ASCII rendering of the table."""
        return render_table(self.rows(), title="Table 3: base run times "
                            "(fixed input per application)")


def table3_baseline_runtimes(node_counts: Sequence[int] = (16, 32),
                             scale: float = 1.0,
                             names: Optional[Sequence[str]] = None,
                             seed: int = 0) -> Table3:
    """Run the suite at each cluster size with fixed total inputs."""
    runtimes: Dict[str, Dict[int, float]] = {}
    for n_nodes in node_counts:
        cluster = Cluster(n_nodes=n_nodes, seed=seed)
        for app in suite_for(n_nodes, scale=scale, names=names):
            result = cluster.run(app)
            runtimes.setdefault(app.name, {})[n_nodes] = result.runtime_us
    return Table3(runtimes=runtimes)


# ---------------------------------------------------------------------------
# Figure 4 -- communication balance matrices.
# ---------------------------------------------------------------------------

@dataclass
class Figure4:
    """Figure 4's per-application run results."""

    results: Dict[str, RunResult]

    def matrices(self) -> Dict[str, "np.ndarray"]:  # noqa: F821
        """Normalised balance matrix per application."""
        return {name: result.balance()
                for name, result in self.results.items()}

    def render(self) -> str:
        """ASCII greyscale matrices, one block per application."""
        blocks = []
        for name, result in self.results.items():
            blocks.append(render_balance(result.stats, title=name))
        return "\n\n".join(blocks)


def figure4_balance(n_nodes: int = 32, scale: float = 1.0,
                    names: Optional[Sequence[str]] = None,
                    seed: int = 0) -> Figure4:
    """Run the suite once and collect Figure 4's balance matrices."""
    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    results = {}
    for app in suite_for(n_nodes, scale=scale, names=names):
        results[app.name] = cluster.run(app)
    return Figure4(results=results)


# ---------------------------------------------------------------------------
# Table 4 -- communication summary.
# ---------------------------------------------------------------------------

@dataclass
class Table4:
    """Table 4's per-application run results."""

    results: Dict[str, RunResult]

    def rows(self) -> List[dict]:
        """One Table 4 row per application."""
        return [result.summary().as_row()
                for result in self.results.values()]

    def render(self) -> str:
        """ASCII rendering of the table."""
        return render_table(self.rows(), title="Table 4: communication "
                            "summary (32-node configuration)")


def table4_comm_summary(n_nodes: int = 32, scale: float = 1.0,
                        names: Optional[Sequence[str]] = None,
                        seed: int = 0) -> Table4:
    """Run the suite once and collect Table 4's summaries."""
    cluster = Cluster(n_nodes=n_nodes, seed=seed)
    results = {}
    for app in suite_for(n_nodes, scale=scale, names=names):
        results[app.name] = cluster.run(app)
    return Table4(results=results)


# ---------------------------------------------------------------------------
# Figures 5-8 -- the sensitivity studies.
# ---------------------------------------------------------------------------

@dataclass
class SensitivityFigure:
    """One sensitivity figure: a sweep per application."""

    title: str
    x_label: str
    sweeps: Dict[str, SweepResult] = field(default_factory=dict)

    def series(self) -> Dict[str, List[tuple]]:
        """Per-application (value, slowdown) series."""
        return {name: sweep.series()
                for name, sweep in self.sweeps.items()}

    def rows(self) -> List[dict]:
        """All sweeps' rows, concatenated."""
        rows = []
        for sweep in self.sweeps.values():
            rows.extend(sweep.as_rows())
        return rows

    def max_slowdown(self, app_name: str) -> Optional[float]:
        """Largest completed slowdown for one application."""
        series = self.sweeps[app_name].series()
        return max(y for _x, y in series) if series else None

    def render(self) -> str:
        """ASCII plot of every application's slowdown curve."""
        return ascii_plot(self.series(), title=self.title,
                          x_label=self.x_label, y_label="slowdown")


def figure5_overhead(n_nodes: int = 32, scale: float = 1.0,
                     names: Optional[Sequence[str]] = None,
                     overheads: Optional[Sequence[float]] = None,
                     seed: int = 0, **kwargs) -> SensitivityFigure:
    """Figure 5: sensitivity to overhead (run per node count)."""
    figure = SensitivityFigure(
        title=f"Figure 5 ({n_nodes} nodes): sensitivity to overhead",
        x_label="overhead (us)")
    for app in suite_for(n_nodes, scale=scale, names=names):
        sweep_kwargs = dict(kwargs)
        if overheads is not None:
            sweep_kwargs["overheads"] = overheads
        figure.sweeps[app.name] = overhead_sweep(app, n_nodes, seed=seed,
                                                 **sweep_kwargs)
    return figure


def figure6_gap(n_nodes: int = 32, scale: float = 1.0,
                names: Optional[Sequence[str]] = None,
                gaps: Optional[Sequence[float]] = None,
                seed: int = 0, **kwargs) -> SensitivityFigure:
    """Figure 6: slowdown as a function of (absolute) gap."""
    figure = SensitivityFigure(
        title="Figure 6: sensitivity to gap", x_label="gap (us)")
    for app in suite_for(n_nodes, scale=scale, names=names):
        sweep_kwargs = dict(kwargs)
        if gaps is not None:
            sweep_kwargs["gaps"] = gaps
        figure.sweeps[app.name] = gap_sweep(app, n_nodes, seed=seed,
                                            **sweep_kwargs)
    return figure


def figure7_latency(n_nodes: int = 32, scale: float = 1.0,
                    names: Optional[Sequence[str]] = None,
                    latencies: Optional[Sequence[float]] = None,
                    seed: int = 0, **kwargs) -> SensitivityFigure:
    """Figure 7: slowdown as a function of (absolute) latency."""
    figure = SensitivityFigure(
        title="Figure 7: sensitivity to latency", x_label="latency (us)")
    for app in suite_for(n_nodes, scale=scale, names=names):
        sweep_kwargs = dict(kwargs)
        if latencies is not None:
            sweep_kwargs["latencies"] = latencies
        figure.sweeps[app.name] = latency_sweep(app, n_nodes, seed=seed,
                                                **sweep_kwargs)
    return figure


def figure8_bulk(n_nodes: int = 32, scale: float = 1.0,
                 names: Optional[Sequence[str]] = None,
                 bandwidths: Optional[Sequence[float]] = None,
                 seed: int = 0, **kwargs) -> SensitivityFigure:
    """Figure 8: slowdown as a function of available bulk bandwidth."""
    figure = SensitivityFigure(
        title="Figure 8: sensitivity to bulk bandwidth",
        x_label="bulk bandwidth (MB/s)")
    for app in suite_for(n_nodes, scale=scale, names=names):
        sweep_kwargs = dict(kwargs)
        if bandwidths is not None:
            sweep_kwargs["bandwidths"] = bandwidths
        figure.sweeps[app.name] = bulk_bandwidth_sweep(
            app, n_nodes, seed=seed, **sweep_kwargs)
    return figure


def predicted_sensitivity(n_nodes: int = 32, scale: float = 1.0,
                          names: Optional[Sequence[str]] = None,
                          parameter: str = "overhead",
                          values: Optional[Sequence[float]] = None,
                          seed: int = 0) -> SensitivityFigure:
    """A predicted Figure 5/6/7/8: one instrumented run per app.

    The simcost counterpart of the figure entry points above: each
    application is simulated *once* at the baseline with the
    dependency recorder on, then the whole ``parameter`` sweep is
    predicted analytically (:func:`repro.harness.sweeps.
    predicted_sweep`).  The returned figure renders exactly like the
    simulated one — its sweeps are
    :class:`~repro.cost.predict.PredictedSweep` objects.
    """
    from repro.harness import sweeps as _sweeps
    from repro.harness.sweeps import predicted_sweep
    grids = {"overhead": _sweeps.PAPER_OVERHEADS,
             "gap": _sweeps.PAPER_GAPS,
             "latency": _sweeps.PAPER_LATENCIES,
             "bulk_mb_s": _sweeps.PAPER_BANDWIDTHS}
    if parameter not in grids:
        raise ValueError(
            f"parameter must be one of {tuple(grids)}, got {parameter!r}")
    if values is None:
        values = grids[parameter]
    figure = SensitivityFigure(
        title=f"Predicted sensitivity to {parameter} "
              f"({n_nodes} nodes, simcost)",
        x_label=parameter)
    for app in suite_for(n_nodes, scale=scale, names=names):
        figure.sweeps[app.name] = predicted_sweep(
            app, n_nodes, parameter, values, seed=seed)
    return figure


# ---------------------------------------------------------------------------
# Tables 5 and 6 -- model predictions vs measurements.
# ---------------------------------------------------------------------------

@dataclass
class ModelTable:
    """Measured vs predicted runtimes along one sweep."""

    title: str
    parameter: str
    rows_: List[dict]

    def rows(self) -> List[dict]:
        """Flat dict rows."""
        return self.rows_

    def render(self) -> str:
        """ASCII rendering of the table."""
        return render_table(self.rows_, title=self.title)

    def prediction_error(self, app_name: str) -> List[float]:
        """Relative error (pred - measured)/measured for completed
        points of one app."""
        errors = []
        for row in self.rows_:
            if row["app"] != app_name or row["measured_us"] == "N/A":
                continue
            errors.append((row["predicted_us"] - row["measured_us"])
                          / row["measured_us"])
        return errors


def table5_overhead_model(n_nodes: int = 32, scale: float = 1.0,
                          names: Optional[Sequence[str]] = None,
                          overheads: Optional[Sequence[float]] = None,
                          seed: int = 0, **kwargs) -> ModelTable:
    """Table 5: the 2·m·Δo model against measured sweep runtimes."""
    figure = figure5_overhead(n_nodes=n_nodes, scale=scale, names=names,
                              overheads=overheads, seed=seed, **kwargs)
    rows = []
    for app_name, sweep in figure.sweeps.items():
        baseline = sweep.baseline.result
        model = OverheadModel(
            base_runtime_us=baseline.runtime_us,
            max_messages_per_proc=baseline.stats.max_messages_per_node)
        base_o = sweep.points[0].value
        for point in sweep.points:
            delta_o = max(0.0, point.value - base_o)
            rows.append({
                "app": app_name,
                "o (us)": point.value,
                "measured_us": (round(point.runtime_us, 1)
                                if point.completed else "N/A"),
                "predicted_us": round(model.predict_runtime(delta_o), 1),
            })
    return ModelTable(title="Table 5: overhead model (r + 2 m do)",
                      parameter="overhead", rows_=rows)


def table6_gap_model(n_nodes: int = 32, scale: float = 1.0,
                     names: Optional[Sequence[str]] = None,
                     gaps: Optional[Sequence[float]] = None,
                     seed: int = 0, **kwargs) -> ModelTable:
    """Table 6: the burst gap model against measured sweep runtimes."""
    figure = figure6_gap(n_nodes=n_nodes, scale=scale, names=names,
                         gaps=gaps, seed=seed, **kwargs)
    rows = []
    for app_name, sweep in figure.sweeps.items():
        baseline = sweep.baseline.result
        model = BurstGapModel(
            base_runtime_us=baseline.runtime_us,
            max_messages_per_proc=baseline.stats.max_messages_per_node)
        base_g = sweep.points[0].value
        for point in sweep.points:
            delta_g = max(0.0, point.value - base_g)
            rows.append({
                "app": app_name,
                "g (us)": point.value,
                "measured_us": (round(point.runtime_us, 1)
                                if point.completed else "N/A"),
                "predicted_us": round(model.predict_runtime(delta_g), 1),
            })
    return ModelTable(title="Table 6: burst gap model (r + m dg)",
                      parameter="gap", rows_=rows)


# ---------------------------------------------------------------------------
# Figure 9 / Table 7 -- fault tolerance (beyond the paper).
# ---------------------------------------------------------------------------

@dataclass
class FaultFigure(SensitivityFigure):
    """A sensitivity figure over drop rate, with reliability counters."""

    def rows(self) -> List[dict]:
        """Sweep rows augmented with drop/retransmission counters."""
        rows = []
        for sweep in self.sweeps.values():
            for row, point in zip(sweep.as_rows(), sweep.points):
                stats = point.result.stats if point.completed else None
                row["dropped"] = (stats.total_packets_dropped
                                  if stats else "N/A")
                row["retransmits"] = (stats.total_retransmissions
                                      if stats else "N/A")
                rows.append(row)
        return rows


def figure9_faults(n_nodes: int = 32, scale: float = 1.0,
                   names: Optional[Sequence[str]] = None,
                   drop_rates: Optional[Sequence[float]] = None,
                   seed: int = 0, **kwargs) -> FaultFigure:
    """Figure 9: slowdown under per-packet drop probability.

    Sweeps the fault injector's drop rate with the machine dials held
    at the unmodified baseline; the reliability protocol's timeouts
    and retransmissions are what turn packet loss into slowdown.
    """
    figure = FaultFigure(
        title=f"Figure 9 ({n_nodes} nodes): sensitivity to packet loss",
        x_label="drop rate")
    for app in suite_for(n_nodes, scale=scale, names=names):
        sweep_kwargs = dict(kwargs)
        if drop_rates is not None:
            sweep_kwargs["drop_rates"] = drop_rates
        figure.sweeps[app.name] = fault_sweep(app, n_nodes, seed=seed,
                                              **sweep_kwargs)
    return figure


def table7_spike_decay(n_nodes: int = 32, scale: float = 1.0,
                       names: Optional[Sequence[str]] = None,
                       node: int = 0, duration_us: float = 500.0,
                       starts: Sequence[float] = (0.0, 250.0, 500.0,
                                                  1000.0, 2000.0),
                       seed: int = 0, **kwargs) -> ModelTable:
    """Table 7: how a one-off delay spike's cost propagates.

    Injects a single ``duration_us`` delay spike at ``node`` at each
    start time and reports the residual over the spike-free baseline,
    both in µs and as a fraction of the spike duration (1.0 = the
    whole spike surfaced in the critical path; > 1.0 = it cascaded).
    """
    rows = []
    for app in suite_for(n_nodes, scale=scale, names=names):
        sweep = spike_decay_sweep(app, n_nodes, node=node,
                                  duration_us=duration_us, starts=starts,
                                  seed=seed, **kwargs)
        base = sweep.baseline.runtime_us
        for point in sweep.points[1:]:
            residual = (point.runtime_us - base
                        if point.completed and base is not None else None)
            rows.append({
                "app": app.name,
                "spike_start_us": point.value,
                "runtime_us": (round(point.runtime_us, 1)
                               if point.completed else "N/A"),
                "residual_us": (round(residual, 1)
                                if residual is not None else "N/A"),
                "propagated": (round(residual / duration_us, 2)
                               if residual is not None else "N/A"),
            })
    return ModelTable(
        title=f"Table 7: delay-spike propagation "
              f"({duration_us:g} us spike at node {node})",
        parameter="spike_start_us", rows_=rows)


# ---------------------------------------------------------------------------
# Figure 10 / Table 8 -- tuned collectives (beyond the paper).
# ---------------------------------------------------------------------------

def figure10_collectives(n_nodes: int = 32,
                         primitives: Sequence[str] = ("broadcast",
                                                      "allreduce",
                                                      "allgather",
                                                      "alltoall"),
                         parameter: str = "gap",
                         values: Optional[Sequence[float]] = None,
                         size: int = 16384, bulk: bool = True,
                         iterations: int = 4, seed: int = 0,
                         **kwargs) -> SensitivityFigure:
    """Figure 10: collective algorithm sensitivity to one dial.

    For each primitive, sweeps every registered algorithm the
    calibration benchmark can drive across ``parameter`` (dialed like
    Figures 5-8) and plots one ``primitive/algorithm`` series per
    combination.  Where the series cross is where a tuned machine
    should switch schedules — the crossovers the ``model`` and
    ``measured`` tuning policies exist to find.
    """
    from repro.coll.algorithms import eligible_algorithms
    from repro.harness.sweeps import (PAPER_BANDWIDTHS, PAPER_GAPS,
                                      PAPER_LATENCIES, PAPER_OVERHEADS)
    if values is None:
        values = {"overhead": PAPER_OVERHEADS, "gap": PAPER_GAPS,
                  "latency": PAPER_LATENCIES,
                  "bulk_mb_s": PAPER_BANDWIDTHS}[parameter]
    figure = SensitivityFigure(
        title=f"Figure 10 ({n_nodes} nodes): collective sensitivity "
              f"to {parameter}",
        x_label=parameter)
    for primitive in primitives:
        for algo in eligible_algorithms(primitive, elementwise=True,
                                        dense=True, uniform=True):
            sweep = collective_sweep(
                primitive, n_nodes, parameter, values, algo=algo,
                size=size, bulk=bulk, iterations=iterations, seed=seed,
                **kwargs)
            figure.sweeps[f"{primitive}/{algo}"] = sweep
    return figure


def table8_coll_tuner(n_nodes: int = 32,
                      primitives: Sequence[str] = ("broadcast",
                                                   "allreduce",
                                                   "allgather",
                                                   "alltoall"),
                      sizes: Sequence[int] = (32, 1024, 16384, 65536),
                      seed: int = 0,
                      cache: Optional["RunCache"] = None,  # noqa: F821
                      **kwargs) -> ModelTable:
    """Table 8: the LogGP model's algorithm picks vs measured winners.

    For each (primitive, size) cell, times every eligible algorithm
    with :class:`~repro.coll.bench.CollectiveBench`, then reports the
    measured winner, the closed-form model's pick, the model pick's
    measured cost relative to the winner, and whether the pick is
    within 10% of optimal ("ok").  The bottom-line agreement rate is
    what ``benchmarks/`` asserts stays >= 80%.
    """
    from repro.cluster.machine import Cluster
    from repro.coll.algorithms import eligible_algorithms
    from repro.coll.bench import CollectiveBench
    from repro.coll.model import estimate_cost
    from repro.harness.runcache import run_key_spec
    params = LogGPParams.berkeley_now()
    knobs = TuningKnobs()
    rows = []
    for primitive in primitives:
        for size in sizes:
            bulk = size > 64
            measured = {}
            for algo in eligible_algorithms(primitive, elementwise=True,
                                            dense=True, uniform=True):
                bench = CollectiveBench(primitive, algo=algo, size=size,
                                        bulk=bulk, **kwargs)
                result = None
                spec = None
                if cache is not None:
                    spec = run_key_spec(bench, n_nodes, params, knobs,
                                        seed)
                    outcome = cache.get(spec)
                    if outcome is not None and outcome[0] is not None:
                        result = outcome[0]
                if result is None:
                    result = Cluster(n_nodes, seed=seed).run(bench)
                    if cache is not None:
                        cache.put(spec, result=result)
                measured[algo] = result.runtime_us
            best_time, best_algo = min(
                (t, a) for a, t in measured.items())
            model_algo = min(
                (estimate_cost(primitive, algo, n_nodes, size,
                               params, knobs, bulk=bulk), algo)
                for algo in measured)[1]
            overcost = measured[model_algo] / best_time
            rows.append({
                "primitive": primitive,
                "size": size,
                "measured_best": best_algo,
                "model_pick": model_algo,
                "overcost": round(overcost, 3),
                "within_10pct": "ok" if overcost <= 1.10 else "MISS",
            })
    return ModelTable(
        title=f"Table 8 ({n_nodes} nodes): model-driven algorithm "
              f"selection vs measured winners",
        parameter="size", rows_=rows)


# ---------------------------------------------------------------------------
# Figure 11 -- the SLO-vs-throughput curve of the serving workload, as a
# function of the machine dials and the drop rate (the paper's
# sensitivity question asked of an open system).
# ---------------------------------------------------------------------------

@dataclass
class ServingFigure:
    """Figure 11: serving-tail sensitivity plus SLO-knee curves.

    ``dial_sweeps`` holds one serving sweep per dialed axis (overhead,
    latency, drop rate, offered load) at the baseline machine;
    ``knee_sweeps`` holds one offered-load sweep per overhead setting,
    from which :meth:`knees` reads the largest offered load still
    meeting the p999 SLO — the crossover EXPERIMENTS.md documents is
    how that knee collapses as overhead grows.
    """

    title: str
    slo_us: float
    dial_sweeps: Dict[str, SweepResult] = field(default_factory=dict)
    knee_sweeps: Dict[float, SweepResult] = field(default_factory=dict)

    def rows(self) -> List[dict]:
        """Every sweep's SLO rows, tagged by axis."""
        from repro.serve.sweep import serving_rows
        rows = []
        for parameter, sweep in self.dial_sweeps.items():
            for row in serving_rows(sweep):
                rows.append({"axis": parameter, **row})
        for overhead, sweep in sorted(self.knee_sweeps.items()):
            for row in serving_rows(sweep):
                rows.append({"axis": f"offered_rps@o={overhead:g}",
                             **row})
        return rows

    def knees(self) -> Dict[float, Optional[float]]:
        """Per-overhead SLO knee: the largest offered load whose run
        stayed unsaturated with p999 within the SLO (None if even the
        lowest offered point violates it)."""
        knees: Dict[float, Optional[float]] = {}
        for overhead, sweep in self.knee_sweeps.items():
            knee = None
            for point in sweep.points:
                if not point.completed:
                    continue
                serving = getattr(point.result.stats, "serving", None)
                if serving is None or serving.verdict != "ok":
                    continue
                p999 = serving.p999_us
                if p999 is not None and p999 <= self.slo_us:
                    knee = (point.value if knee is None
                            else max(knee, point.value))
            knees[overhead] = knee
        return knees

    def render(self) -> str:
        """SLO tables per axis plus the overhead-vs-knee summary."""
        out = [self.title, ""]
        for parameter, sweep in self.dial_sweeps.items():
            from repro.serve.sweep import serving_rows
            out.append(render_table(
                serving_rows(sweep),
                title=f"serving tail vs {parameter} "
                      f"(SLO {self.slo_us:g}us)"))
            out.append("")
        if self.knee_sweeps:
            knee_rows = [
                {"overhead_us": overhead,
                 "slo_knee_rps": ("none" if knee is None
                                  else f"{knee:g}")}
                for overhead, knee in sorted(self.knees().items())]
            out.append(render_table(
                knee_rows,
                title=f"offered load sustaining p999 <= "
                      f"{self.slo_us:g}us, by overhead"))
        return "\n".join(out).rstrip() + "\n"


def figure11_serving(n_nodes: int = 32, scale: float = 1.0,
                     overheads: Sequence[float] = (2.9, 10.0, 25.0),
                     latencies: Sequence[float] = (5.7, 30.0, 100.0),
                     drop_rates: Sequence[float] = (0.0, 0.01, 0.05),
                     offered: Optional[Sequence[float]] = None,
                     knee_overheads: Sequence[float] = (2.9, 10.0, 25.0),
                     seed: int = 0,
                     cache: Optional["RunCache"] = None,  # noqa: F821
                     **workload) -> ServingFigure:
    """Figure 11: tail latency and goodput of the serving workload.

    One :class:`~repro.serve.apps.KVServe` scenario is swept along
    overhead, latency, drop rate, and offered load; then the
    offered-load sweep is repeated at each ``knee_overheads`` setting
    to locate the SLO knee.  ``scale`` multiplies the request budget;
    extra keywords override workload knobs (``service_us``,
    ``slo_us``, ...).  Fully cache-served on reruns.
    """
    from repro.harness.sweeps import knob_factory
    from repro.serve.apps import KVServe
    from repro.serve.sweep import OFFERED_LOAD_GRID, serving_sweep
    params = LogGPParams.berkeley_now()
    knobs = {"offered_rps": 400_000.0, "duration_us": 20_000.0,
             "max_requests": max(50, int(round(600 * scale))),
             "n_users": 1_000_000, "service_us": 4.0, "slo_us": 250.0}
    knobs.update(workload)
    app = KVServe(**knobs)
    offered = tuple(offered) if offered is not None else OFFERED_LOAD_GRID
    figure = ServingFigure(
        title=f"Figure 11 ({n_nodes} nodes): serving tail latency vs "
              f"machine dials ({app.tier().describe()})",
        slo_us=app.slo_us)
    for parameter, values in (("overhead", overheads),
                              ("latency", latencies),
                              ("drop_rate", drop_rates),
                              ("offered_rps", offered)):
        figure.dial_sweeps[parameter] = serving_sweep(
            app, n_nodes, parameter, values, params=params, seed=seed,
            cache=cache)
    for overhead in knee_overheads:
        figure.knee_sweeps[overhead] = serving_sweep(
            app, n_nodes, "offered_rps", offered, params=params,
            seed=seed, cache=cache,
            knobs=knob_factory("overhead", params)(overhead))
    return figure
