"""Plain-text rendering of tables and slowdown figures."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["render_table", "ascii_plot"]


def render_table(rows: Sequence[dict], title: str = "") -> str:
    """Render dict rows as an aligned ASCII table (columns from the
    first row's keys)."""
    if not rows:
        return f"-- {title}: (no rows) --" if title else "(no rows)"
    columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column,
                                                                 ""))))
    lines = []
    if title:
        lines.append(f"-- {title} --")
    header = " | ".join(f"{c:>{widths[c]}}" for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(" | ".join(
            f"{str(row.get(c, '')):>{widths[c]}}" for c in columns))
    return "\n".join(lines)


#: Plot glyphs assigned to series in order.
_GLYPHS = "ox+*#@%&$~^!"


def ascii_plot(series: Dict[str, List[Tuple[float, float]]],
               title: str = "", x_label: str = "", y_label: str = "",
               width: int = 64, height: int = 20,
               y_max: Optional[float] = None) -> str:
    """A multi-series ASCII scatter/line plot (for the figures).

    ``series`` maps a label to its (x, y) points.  Each series gets a
    glyph; the legend maps glyphs back to labels.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"-- {title}: (no data) --"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, y_max if y_max is not None else max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (label, pts) in zip(_GLYPHS, series.items()):
        for x, y in pts:
            column = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            clipped = min(y, y_hi)
            row = int(round((clipped - y_lo) / (y_hi - y_lo)
                            * (height - 1)))
            grid[height - 1 - row][column] = glyph

    lines = []
    if title:
        lines.append(f"-- {title} --")
    for index, row in enumerate(grid):
        y_value = y_hi - index * (y_hi - y_lo) / (height - 1)
        lines.append(f"{y_value:8.1f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9}{x_lo:<10.1f}{x_label:^{max(0, width - 20)}}"
                 f"{x_hi:>10.1f}")
    legend = "   ".join(
        f"{glyph}={label}"
        for glyph, label in zip(_GLYPHS, series.keys()))
    lines.append(f"{y_label}  [{legend}]")
    return "\n".join(lines)
