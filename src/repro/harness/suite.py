"""Standard suite construction with fixed-total-input scaling.

The paper fixes each application's input and runs it on both 16 and 32
nodes (Table 3, Figure 5a/5b).  Our applications are parameterised by
per-processor sizes, so running the *same* total input on half the nodes
means doubling the per-processor scale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.apps import default_suite
from repro.apps.base import Application

__all__ = ["suite_for", "REFERENCE_NODES"]

#: Cluster size at which ``scale=1.0`` means the default inputs; other
#: sizes get per-processor inputs adjusted to keep totals fixed.
REFERENCE_NODES = 32


def suite_for(n_nodes: int, scale: float = 1.0,
              reference_nodes: int = REFERENCE_NODES,
              names: Optional[Sequence[str]] = None) -> List[Application]:
    """The ten-application suite sized for ``n_nodes``.

    ``names`` optionally filters to a subset (by Table 3 row label).
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    effective_scale = scale * reference_nodes / n_nodes
    apps = default_suite(scale=effective_scale)
    if names is not None:
        wanted = set(names)
        apps = [app for app in apps if app.name in wanted]
        missing = wanted - {app.name for app in apps}
        if missing:
            raise KeyError(f"unknown application names: {sorted(missing)}")
    return apps
