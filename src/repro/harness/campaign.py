"""Resumable simulation campaigns over a sqlite result store.

The paper's methodology is an argument product: every sensitivity
figure is (app × P × dial × value × seed), and each open ROADMAP item
multiplies the grid further.  A grid that takes hours must survive
being interrupted — by a crash, a Ctrl-C, a preempted CI runner, or a
single worker dying — without losing the points that already finished.
This module is that contract, modeled on MBradbury/slp's
``skip_completed_simulations`` + ``create_*_results.py`` split:

* :class:`CampaignSpec` — a declarative, JSON-round-trippable argument
  product over (app, P, dial, values, seed, faults, coll, engine).
  ``points()`` expands it into concrete
  :class:`~repro.harness.parallel.PointTask` work units, each tagged
  with the same content-addressed key the
  :class:`~repro.harness.runcache.RunCache` uses.
* :func:`run_campaign` — the resumable runner.  Points already in the
  :class:`~repro.harness.store.ResultStore` are skipped outright; the
  rest are probed against the RunCache, and only genuine misses are
  simulated, streamed through a ``ProcessPoolExecutor`` with
  ``as_completed`` and **persisted the moment each one finishes**.  A
  worker crash (``BrokenProcessPool``) re-queues only the tasks whose
  futures never completed, on a fresh pool.
* query-side generation — :func:`sweep_from_store` /
  :func:`figure_from_store` / :func:`render_campaign` rebuild
  EXPERIMENTS-style artifacts from stored rows alone, so regeneration
  is a ``SELECT``, not a resimulation, and an interrupted-then-resumed
  campaign renders byte-identically to an uninterrupted one.

Crash-safety guarantees, precisely:

1. a point is either fully persisted (store row + cache entry) or will
   be re-run — there is no partial state;
2. restarting the same campaign recomputes exactly the points that
   never completed (``tests/test_campaign.py`` pins this with a
   differential interrupted-vs-uninterrupted test);
3. a SIGKILLed worker loses at most the points in flight; the runner
   finishes the campaign in the same invocation by re-queuing them.
"""

from __future__ import annotations

import itertools
import json
import math
import statistics
import time
from concurrent.futures import as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set,
                    Tuple)

from repro.am.tuning import TuningKnobs
from repro.cluster.presets import MACHINE_PRESETS
from repro.harness.parallel import PointTask, _pool, default_jobs, \
    execute_point
from repro.harness.runcache import RunCache
from repro.harness.store import ResultStore
from repro.harness.suite import suite_for
from repro.harness.sweeps import (MACHINE_DIALS, SweepPoint, SweepResult,
                                  knob_factory)
from repro.network.faults import DelaySpike, FaultPlan, SlowdownWindow

__all__ = ["CampaignSpec", "CampaignPoint", "CampaignReport",
           "CampaignInterrupted", "run_campaign", "sweep_from_store",
           "EnsembleSweep", "ensemble_from_store",
           "figure_from_store", "render_campaign", "CAMPAIGN_DIALS",
           "SERVING_CAMPAIGN_DIALS"]

#: Dials a campaign can sweep: the paper's four machine dials plus the
#: fault injector's drop rate (Figure 9).
CAMPAIGN_DIALS = MACHINE_DIALS + ("drop_rate",)

#: Additionally sweepable when the campaign declares a ``workload``
#: (open-system serving): the client tier's offered load.
SERVING_CAMPAIGN_DIALS = CAMPAIGN_DIALS + ("offered_rps",)


class CampaignInterrupted(RuntimeError):
    """Raised when a campaign stops early (``interrupt_after``).

    Everything computed so far is already persisted; re-running the
    same campaign resumes from the store.  Exists so tests and drills
    can interrupt a campaign at a deterministic point instead of
    SIGKILLing the process (CI does both).
    """


@dataclass(frozen=True)
class CampaignPoint:
    """One expanded point of a campaign's argument product."""

    app_name: str
    n_nodes: int
    parameter: str
    value: float
    seed: int
    task: PointTask
    #: Canonical key-spec dict (``run_key_spec``) and its SHA-256 — the
    #: identity shared by the store and the run cache.
    spec: Dict[str, Any]
    key: str


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative argument product over the simulation grid.

    ``dials`` pairs each swept parameter with its value grid; the
    product over (apps × node_counts × dials × seeds × values) is the
    campaign.  Value order within a dial is preserved — the first
    value is that sweep's baseline, exactly as in
    :mod:`repro.harness.sweeps`.
    """

    name: str
    apps: Tuple[str, ...]
    node_counts: Tuple[int, ...]
    dials: Tuple[Tuple[str, Tuple[float, ...]], ...]
    seeds: Tuple[int, ...] = (0,)
    scale: float = 1.0
    machine: str = "berkeley-now"
    run_limit_us: Optional[float] = None
    livelock_limit: int = 200_000
    window: int = 8
    #: Base fault plan applied to every point (the ``drop_rate`` dial
    #: overrides its drop rate per value).
    faults: Optional[FaultPlan] = None
    #: Collective tuning config applied to every point.
    coll: Optional[Any] = None
    #: Simulator scheduling engine (bit-identical tiers; never keyed).
    engine: Optional[str] = None
    #: Open-system serving workload: the constructor-knob dict a
    #: :func:`repro.serve.apps.serving_app_from_dict` builds from
    #: (``{"app": "kvserve", ...}``).  When set, ``apps`` must name
    #: exactly that scenario, the ``offered_rps`` dial becomes
    #: sweepable, and ``scale`` does not apply (the client tier's own
    #: knobs size the run).  Stored as a sorted key/value tuple so the
    #: spec stays frozen/hashable; ``to_dict`` round-trips the dict.
    workload: Optional[Any] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "apps", tuple(self.apps))
        object.__setattr__(self, "node_counts", tuple(self.node_counts))
        object.__setattr__(self, "dials", tuple(
            (parameter, tuple(values)) for parameter, values in self.dials))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        if self.workload is not None:
            workload = dict(self.workload)
            object.__setattr__(self, "workload", tuple(
                (str(key), workload[key]) for key in sorted(workload)))
            if "app" not in workload:
                raise ValueError(
                    "workload needs an 'app' key naming the serving "
                    "scenario (see repro.serve.SERVING_APPS)")
            if self.apps != (workload["app"],):
                raise ValueError(
                    f"a workload campaign's apps must be exactly "
                    f"({workload['app']!r},), got {self.apps}")
        if not self.name:
            raise ValueError("campaign needs a non-empty name")
        if self.machine not in MACHINE_PRESETS:
            raise ValueError(
                f"unknown machine preset {self.machine!r}; "
                f"one of {sorted(MACHINE_PRESETS)}")
        allowed = (SERVING_CAMPAIGN_DIALS if self.workload is not None
                   else CAMPAIGN_DIALS)
        for parameter, values in self.dials:
            if parameter not in allowed:
                raise ValueError(
                    f"unknown dial {parameter!r}; one of {allowed}")
            if not values:
                raise ValueError(f"dial {parameter!r} has no values")

    # -- expansion ---------------------------------------------------------
    def values_for(self, parameter: str) -> Tuple[float, ...]:
        """The value grid of one dial, in sweep (baseline-first) order."""
        for dial, values in self.dials:
            if dial == parameter:
                return values
        raise KeyError(f"campaign {self.name!r} has no dial {parameter!r}")

    def points(self) -> List[CampaignPoint]:
        """The full argument product as concrete work units.

        Deterministic order: apps × node_counts × dials × seeds ×
        values.  Raises early (before any simulation) if an app name is
        unknown or a key-spec value has an unstable repr.
        """
        params = MACHINE_PRESETS[self.machine]
        base_plan = self.faults if self.faults is not None else FaultPlan()
        points: List[CampaignPoint] = []
        for app_name, n_nodes in itertools.product(self.apps,
                                                   self.node_counts):
            if self.workload is not None:
                from repro.serve.apps import serving_app_from_dict
                app = serving_app_from_dict(dict(self.workload))
            else:
                app = suite_for(n_nodes, scale=self.scale,
                                names=[app_name])[0]
            for (parameter, values), seed in itertools.product(
                    self.dials, self.seeds):
                def app_for(_value: float) -> Any:
                    return app
                if parameter == "drop_rate":
                    def knob_for(_value: float) -> TuningKnobs:
                        return TuningKnobs()

                    def fault_for(value: float) -> FaultPlan:
                        return base_plan.with_changes(drop_rate=value)
                elif parameter == "offered_rps":
                    def knob_for(_value: float) -> TuningKnobs:
                        return TuningKnobs()

                    def fault_for(_value: float) -> Optional[FaultPlan]:
                        return self.faults

                    def app_for(value: float) -> Any:
                        return app.with_changes(offered_rps=value)
                else:
                    knob_for = knob_factory(parameter, params)

                    def fault_for(_value: float) -> Optional[FaultPlan]:
                        return self.faults
                for value in values:
                    task = PointTask(
                        app=app_for(value), n_nodes=n_nodes, value=value,
                        knobs=knob_for(value), params=params, seed=seed,
                        run_limit_us=self.run_limit_us,
                        livelock_limit=self.livelock_limit,
                        window=self.window, faults=fault_for(value),
                        coll=self.coll, engine=self.engine)
                    spec = task.key_spec()
                    points.append(CampaignPoint(
                        app_name=app_name, n_nodes=n_nodes,
                        parameter=parameter, value=value, seed=seed,
                        task=task, spec=spec,
                        key=RunCache.key_for(spec)))
        return points

    # -- JSON round trip (spec files for the CLI / CI) ---------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form; ``from_dict`` round-trips it exactly."""
        import dataclasses
        return {
            "name": self.name,
            "apps": list(self.apps),
            "node_counts": list(self.node_counts),
            "dials": [[parameter, list(values)]
                      for parameter, values in self.dials],
            "seeds": list(self.seeds),
            "scale": self.scale,
            "machine": self.machine,
            "run_limit_us": self.run_limit_us,
            "livelock_limit": self.livelock_limit,
            "window": self.window,
            "faults": (dataclasses.asdict(self.faults)
                       if self.faults is not None else None),
            "coll": (dataclasses.asdict(self.coll)
                     if self.coll is not None else None),
            "engine": self.engine,
            "workload": (dict(self.workload)
                         if self.workload is not None else None),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        """Rebuild a spec produced by :meth:`to_dict` (or hand-written)."""
        faults = data.get("faults")
        if faults is not None:
            faults = FaultPlan(**{
                **faults,
                "spikes": tuple(DelaySpike(**s)
                                for s in faults.get("spikes", ())),
                "slowdowns": tuple(SlowdownWindow(**s)
                                   for s in faults.get("slowdowns", ())),
                "drop_kinds": (tuple(faults["drop_kinds"])
                               if faults.get("drop_kinds") else None),
            })
        coll = data.get("coll")
        if coll is not None:
            from repro.coll.tuner import CollConfig
            coll = CollConfig(
                policy=coll.get("policy", "fixed"),
                choices=tuple(tuple(c) for c in coll.get("choices", ())),
                table=tuple(tuple(c) for c in coll.get("table", ())))
        return cls(
            name=data["name"],
            apps=tuple(data["apps"]),
            node_counts=tuple(data["node_counts"]),
            dials=tuple((parameter, tuple(values))
                        for parameter, values in data["dials"]),
            seeds=tuple(data.get("seeds", (0,))),
            scale=data.get("scale", 1.0),
            machine=data.get("machine", "berkeley-now"),
            run_limit_us=data.get("run_limit_us"),
            livelock_limit=data.get("livelock_limit", 200_000),
            window=data.get("window", 8),
            faults=faults, coll=coll, engine=data.get("engine"),
            workload=data.get("workload"))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))


@dataclass
class CampaignReport:
    """Resume and throughput accounting for one ``run_campaign`` call."""

    campaign: str
    total_points: int
    #: Points skipped because the store already had them (the resume).
    resumed_points: int
    #: Store misses served from the RunCache without simulating.
    cache_hits: int
    #: Points actually simulated by this invocation.
    computed_points: int
    #: Tasks re-queued after a worker crash broke the pool.
    requeued_points: int
    #: Points (stored or computed) that ended as N/A failures.
    na_points: int
    stale_tmps_removed: int
    jobs: int
    elapsed_s: float

    @property
    def points_per_sec(self) -> float:
        """Computed-point throughput of this invocation."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.computed_points / self.elapsed_s

    def to_dict(self) -> Dict[str, Any]:
        """The ``BENCH_campaign_*.json`` payload."""
        return {
            "schema": "repro-campaign-bench-v1",
            "campaign": self.campaign,
            "total_points": self.total_points,
            "resumed_points": self.resumed_points,
            "cache_hits": self.cache_hits,
            "computed_points": self.computed_points,
            "requeued_points": self.requeued_points,
            "na_points": self.na_points,
            "stale_tmps_removed": self.stale_tmps_removed,
            "jobs": self.jobs,
            "elapsed_s": round(self.elapsed_s, 3),
            "points_per_sec": round(self.points_per_sec, 3),
        }

    def describe(self) -> str:
        """One-line summary for CLI output."""
        return (f"campaign {self.campaign}: {self.total_points} points "
                f"({self.resumed_points} resumed, {self.cache_hits} cache "
                f"hits, {self.computed_points} computed, "
                f"{self.requeued_points} requeued after crashes) in "
                f"{self.elapsed_s:.1f}s "
                f"[{self.points_per_sec:.2f} points/s]")


def _merge_reports(name: str,
                   reports: Sequence[CampaignReport]) -> CampaignReport:
    """Aggregate sub-campaign reports into one BENCH payload."""
    return CampaignReport(
        campaign=name,
        total_points=sum(r.total_points for r in reports),
        resumed_points=sum(r.resumed_points for r in reports),
        cache_hits=sum(r.cache_hits for r in reports),
        computed_points=sum(r.computed_points for r in reports),
        requeued_points=sum(r.requeued_points for r in reports),
        na_points=sum(r.na_points for r in reports),
        stale_tmps_removed=sum(r.stale_tmps_removed for r in reports),
        jobs=max((r.jobs for r in reports), default=1),
        elapsed_s=sum(r.elapsed_s for r in reports))


def run_campaign(spec: CampaignSpec, store: ResultStore,
                 cache: Optional[RunCache] = None,
                 jobs: Optional[int] = None,
                 interrupt_after: Optional[int] = None,
                 max_requeues: int = 8,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> CampaignReport:
    """Run (or resume) one campaign; every finished point is durable.

    The store is consulted first — points with rows are never re-run.
    Store misses are probed against the RunCache (a hit is persisted
    to the store without simulating).  Remaining points stream through
    a process pool; each is written to the store *and* the cache the
    moment its future completes, so progress survives any interruption.

    ``interrupt_after=N`` raises :class:`CampaignInterrupted` after N
    newly simulated points have been persisted — the deterministic
    stand-in for a mid-campaign crash.  A worker killed out from under
    the pool (``BrokenProcessPool``) does *not* abort the campaign:
    the tasks whose futures never completed are re-queued on a fresh
    pool, up to ``max_requeues`` times.
    """
    started = time.perf_counter()
    say = progress if progress is not None else (lambda _line: None)
    stale = cache.sweep_stale_tmps() if cache is not None else 0
    if stale:
        say(f"swept {stale} stale cache tmp file(s)")

    points = spec.points()
    stored: Set[str] = store.keys(spec.name)
    pending = [p for p in points if p.key not in stored]
    resumed = len(points) - len(pending)
    if resumed:
        say(f"resume: {resumed}/{len(points)} points already stored")

    def persist(point: CampaignPoint, result, failure,
                to_cache: bool) -> None:
        store.put(spec.name, point.key, app=point.app_name,
                  n_nodes=point.n_nodes, parameter=point.parameter,
                  value=point.value, seed=point.seed, spec=point.spec,
                  result=result, failure=failure)
        if to_cache and cache is not None:
            cache.put(point.spec, result=result, failure=failure)

    # Cache probe in the parent: hits become store rows without a
    # single simulated event.
    cache_hits = 0
    todo: List[CampaignPoint] = []
    for point in pending:
        outcome = cache.get(point.spec) if cache is not None else None
        if outcome is not None:
            result, failure = outcome
            persist(point, result, failure, to_cache=False)
            cache_hits += 1
        else:
            todo.append(point)
    if cache_hits:
        say(f"run cache filled {cache_hits} point(s)")

    workers = jobs if jobs is not None else default_jobs()
    computed = 0
    requeued = 0

    def finish(point: CampaignPoint, sweep_point: SweepPoint) -> None:
        nonlocal computed
        persist(point, sweep_point.result, sweep_point.failure,
                to_cache=True)
        computed += 1
        if computed % 10 == 0 or computed == len(todo):
            say(f"{computed}/{len(todo)} computed "
                f"({store.count(spec.name)}/{len(points)} stored)")
        if interrupt_after is not None and computed >= interrupt_after:
            raise CampaignInterrupted(
                f"campaign {spec.name!r} interrupted after {computed} "
                f"computed points (all persisted; re-run to resume)")

    try:
        if todo and workers > 1:
            remaining = todo
            attempts = 0
            while remaining:
                crashed: List[CampaignPoint] = []
                with _pool(min(workers, len(remaining))) as pool:
                    futures = {pool.submit(execute_point, p.task): p
                               for p in remaining}
                    for future in as_completed(futures):
                        point = futures[future]
                        try:
                            sweep_point = future.result()
                        except BrokenProcessPool:
                            # This future's task was lost with the dead
                            # worker (or never started).  Completed
                            # futures are unaffected — their results
                            # were already delivered and persisted.
                            crashed.append(point)
                            continue
                        finish(point, sweep_point)
                if not crashed:
                    break
                attempts += 1
                if attempts > max_requeues:
                    raise BrokenProcessPool(
                        f"campaign {spec.name!r}: workers kept crashing "
                        f"after {max_requeues} re-queue rounds; "
                        f"{len(crashed)} point(s) unfinished (all "
                        "completed points are persisted)")
                requeued += len(crashed)
                say(f"worker crash: re-queuing {len(crashed)} lost "
                    f"task(s) on a fresh pool (round {attempts})")
                remaining = crashed
        else:
            for point in todo:
                finish(point, execute_point(point.task))
    finally:
        elapsed = time.perf_counter() - started

    na_points = store.count_failures(spec.name)
    report = CampaignReport(
        campaign=spec.name, total_points=len(points),
        resumed_points=resumed, cache_hits=cache_hits,
        computed_points=computed, requeued_points=requeued,
        na_points=na_points, stale_tmps_removed=stale,
        jobs=workers, elapsed_s=elapsed)
    say(report.describe())
    return report


# ---------------------------------------------------------------------------
# Query side: rebuild sweep/figure artifacts from the store alone.
# ---------------------------------------------------------------------------

def sweep_from_store(store: ResultStore, spec: CampaignSpec,
                     app_name: str, n_nodes: int, parameter: str,
                     seed: Optional[int] = None) -> SweepResult:
    """One (app, P, dial) series, reconstructed purely from store rows.

    Point order follows the spec's value grid (baseline first), not
    completion or storage order, so the result is bit-identical to the
    :func:`~repro.harness.sweeps.run_sweep` shape regardless of how
    the campaign was scheduled, interrupted, or resumed.  Raises
    :class:`KeyError` when the store is missing points (campaign not
    finished) — query-side generation never silently drops data.
    """
    seed = seed if seed is not None else spec.seeds[0]
    values = spec.values_for(parameter)
    by_value: Dict[float, Any] = {}
    for stored in store.points(spec.name, app=app_name, n_nodes=n_nodes,
                               parameter=parameter, seed=seed):
        by_value[stored.value] = stored
    missing = [value for value in values if value not in by_value]
    if missing:
        raise KeyError(
            f"campaign {spec.name!r} store is missing "
            f"{len(missing)}/{len(values)} points of "
            f"({app_name}, P={n_nodes}, {parameter}) at values "
            f"{missing}; run the campaign to completion first")
    params = MACHINE_PRESETS[spec.machine]
    knob_for = (knob_factory(parameter, params)
                if parameter in MACHINE_DIALS
                else (lambda _value: TuningKnobs()))
    sweep = SweepResult(app_name=app_name, n_nodes=n_nodes,
                        parameter=parameter)
    sweep.points = [
        SweepPoint(value=value, knobs=knob_for(value),
                   result=by_value[value].result,
                   failure=by_value[value].failure)
        for value in values
    ]
    return sweep


@dataclass
class EnsembleSweep:
    """Seed-ensemble statistics for one (app, P, dial) series.

    The query-side aggregation over a campaign's ``seeds`` axis: one
    :func:`sweep_from_store` reconstruction per seed, collapsed to a
    per-value mean slowdown with a 95% confidence half-width (normal
    approximation, ``1.96 * s / sqrt(n)`` over the seeds whose run
    completed).  Values with zero completed seeds report ``None`` for
    both statistics, mirroring the single-seed N/A convention.
    """

    app_name: str
    n_nodes: int
    parameter: str
    seeds: Tuple[int, ...]
    values: List[float] = field(default_factory=list)
    #: seed -> per-value slowdowns (None where that seed's point is N/A).
    slowdowns_by_seed: Dict[int, List[Optional[float]]] = \
        field(default_factory=dict)

    def _samples(self, index: int) -> List[float]:
        return [per_seed[index]
                for per_seed in self.slowdowns_by_seed.values()
                if per_seed[index] is not None]

    def mean_slowdowns(self) -> List[Optional[float]]:
        """Per-value mean slowdown over completed seeds."""
        means = []
        for index in range(len(self.values)):
            samples = self._samples(index)
            means.append(statistics.fmean(samples) if samples else None)
        return means

    def ci_halfwidths(self) -> List[Optional[float]]:
        """Per-value 95% CI half-width (0.0 for a single seed)."""
        widths: List[Optional[float]] = []
        for index in range(len(self.values)):
            samples = self._samples(index)
            if not samples:
                widths.append(None)
            elif len(samples) == 1:
                widths.append(0.0)
            else:
                widths.append(1.96 * statistics.stdev(samples)
                              / math.sqrt(len(samples)))
        return widths

    def rows(self) -> List[dict]:
        """Flat per-value rows: mean, ci95, and seed counts."""
        rows = []
        means = self.mean_slowdowns()
        widths = self.ci_halfwidths()
        for index, value in enumerate(self.values):
            rows.append({
                "app": self.app_name,
                self.parameter: value,
                "mean_slowdown": (round(means[index], 4)
                                  if means[index] is not None else None),
                "ci95": (round(widths[index], 4)
                         if widths[index] is not None else None),
                "completed_seeds": len(self._samples(index)),
                "seeds": len(self.seeds),
            })
        return rows


def ensemble_from_store(store: ResultStore, spec: CampaignSpec,
                        app_name: str, n_nodes: int,
                        parameter: str) -> EnsembleSweep:
    """Mean/CI slowdown statistics over the campaign's ``seeds`` axis.

    Reconstructs one :func:`sweep_from_store` series per seed (so the
    same missing-point contract applies: an unfinished campaign raises
    :class:`KeyError`) and normalises each seed against *its own*
    baseline point before aggregating — slowdowns compare shape across
    seeds, not absolute runtimes.
    """
    values = list(spec.values_for(parameter))
    ensemble = EnsembleSweep(app_name=app_name, n_nodes=n_nodes,
                             parameter=parameter,
                             seeds=tuple(spec.seeds), values=values)
    for seed in spec.seeds:
        sweep = sweep_from_store(store, spec, app_name, n_nodes,
                                 parameter, seed=seed)
        base = sweep.baseline.runtime_us
        per_seed: List[Optional[float]] = []
        for point in sweep.points:
            if base is None or not point.completed:
                per_seed.append(None)
            else:
                per_seed.append(point.runtime_us / base)
        ensemble.slowdowns_by_seed[seed] = per_seed
    return ensemble


@dataclass
class CampaignFigure:
    """A rendered set of per-app sweeps for one (P, dial) pair."""

    title: str
    x_label: str
    sweeps: Dict[str, SweepResult] = field(default_factory=dict)

    def max_slowdown(self, app_name: str) -> Optional[float]:
        series = self.sweeps[app_name].series()
        return max(y for _x, y in series) if series else None

    def render(self) -> str:
        from repro.harness.report import ascii_plot
        return ascii_plot(
            {name: sweep.series() for name, sweep in self.sweeps.items()},
            title=self.title, x_label=self.x_label, y_label="slowdown")


#: Axis labels for the dials a campaign can sweep.
_DIAL_LABELS = {"overhead": "overhead (us)", "gap": "gap (us)",
                "latency": "latency (us)",
                "bulk_mb_s": "bulk bandwidth (MB/s)",
                "drop_rate": "drop rate",
                "offered_rps": "offered load (req/s)"}


def figure_from_store(store: ResultStore, spec: CampaignSpec,
                      parameter: str, n_nodes: int,
                      seed: Optional[int] = None) -> CampaignFigure:
    """All apps' sweeps for one (P, dial), from store rows alone."""
    figure = CampaignFigure(
        title=f"campaign {spec.name} ({n_nodes} nodes): sensitivity "
              f"to {parameter}",
        x_label=_DIAL_LABELS.get(parameter, parameter))
    for app_name in spec.apps:
        figure.sweeps[app_name] = sweep_from_store(
            store, spec, app_name, n_nodes, parameter, seed=seed)
    return figure


def render_campaign(specs: Sequence[CampaignSpec],
                    store: ResultStore) -> str:
    """Markdown EXPERIMENTS artifacts for finished campaigns.

    Deterministic text only (no wall-clock, no store paths), so two
    stores holding the same results render byte-identically — the
    property the crash-resume CI drill diffs on.
    """
    out: List[str] = []
    w = out.append
    w("# CAMPAIGN ARTIFACTS — generated from the result store\n")
    for spec in specs:
        w(f"## Campaign `{spec.name}`\n")
        w(f"- apps: {', '.join(spec.apps)}")
        w(f"- node counts: {', '.join(str(p) for p in spec.node_counts)}")
        w(f"- machine: {spec.machine}; scale: {spec.scale:g}; "
          f"seeds: {', '.join(str(s) for s in spec.seeds)}\n")
        for n_nodes in spec.node_counts:
            for parameter, _values in spec.dials:
                figure = figure_from_store(store, spec, parameter,
                                           n_nodes)
                w(f"### {parameter} @ {n_nodes} nodes\n")
                w("```\n" + figure.render() + "\n```")
                w("| app | max slowdown | N/A points |")
                w("|---|---|---|")
                for app_name, sweep in figure.sweeps.items():
                    slowdown = figure.max_slowdown(app_name)
                    na = sum(1 for p in sweep.points if not p.completed)
                    w(f"| {app_name} | "
                      f"{'N/A' if slowdown is None else f'{slowdown:.2f}x'}"
                      f" | {na} |")
                w("")
                if len(spec.seeds) > 1:
                    w(f"Seed ensemble ({len(spec.seeds)} seeds, "
                      "mean slowdown ± 95% CI):\n")
                    w(f"| app | {parameter} | mean | ±95% CI | seeds |")
                    w("|---|---|---|---|---|")
                    for app_name in spec.apps:
                        ens = ensemble_from_store(store, spec, app_name,
                                                  n_nodes, parameter)
                        for row in ens.rows():
                            mean = row["mean_slowdown"]
                            ci = row["ci95"]
                            w(f"| {app_name} | {row[parameter]:g} | "
                              f"{'N/A' if mean is None else f'{mean:.2f}x'}"
                              f" | {'N/A' if ci is None else f'{ci:.3f}'} |"
                              f" {row['completed_seeds']}/{row['seeds']} |")
                    w("")
    return "\n".join(out) + "\n"
