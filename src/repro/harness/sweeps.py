"""LogGP parameter sweeps (the engine behind Figures 5-8).

A sweep runs one application on a sequence of machine configurations
that differ in exactly one dial, and reports the slowdown of each point
relative to the sweep's own baseline (first point), which is how the
paper normalises its figures.

Runs that end in livelock (Barnes under heavy overhead) or exceed the
configured simulated-time budget are recorded as ``N/A`` points with
``slowdown = None``, mirroring the paper's N/A entries in Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.am.tuning import TuningKnobs
from repro.apps.base import Application
from repro.cluster.machine import RunResult
from repro.network.faults import DelaySpike, FaultPlan
from repro.network.loggp import LogGPParams

__all__ = ["SweepPoint", "SweepResult", "FAILURE_CATEGORIES",
           "run_sweep", "predicted_sweep", "overhead_sweep",
           "gap_sweep", "latency_sweep", "bulk_bandwidth_sweep",
           "fault_sweep", "spike_decay_sweep", "NO_SPIKE",
           "collective_sweep", "COLLECTIVE_SWEEP_DIALS",
           "knob_factory", "MACHINE_DIALS",
           "PAPER_OVERHEADS", "PAPER_GAPS", "PAPER_LATENCIES",
           "PAPER_BANDWIDTHS", "FAULT_DROP_RATES"]

#: The paper's sweep grids (absolute parameter targets).
PAPER_OVERHEADS = (2.9, 3.9, 4.9, 6.9, 7.9, 13.0, 23.0, 53.0, 103.0)
PAPER_GAPS = (5.8, 8.0, 10.0, 15.0, 30.0, 55.0, 80.0, 105.0)
PAPER_LATENCIES = (5.0, 7.5, 10.0, 15.0, 30.0, 55.0, 80.0, 105.0)
PAPER_BANDWIDTHS = (38.0, 30.0, 25.0, 20.0, 15.0, 10.0, 5.5, 3.0, 1.0)

#: Per-packet drop probabilities for the fault-tolerance sweep.  The
#: first (0.0) point is the baseline: a null plan on a perfect fabric.
FAULT_DROP_RATES = (0.0, 0.001, 0.005, 0.01, 0.02, 0.05)


#: The failure categories :func:`~repro.harness.parallel.execute_point`
#: can produce, i.e. the prefixes of ``SweepPoint.failure``.
FAILURE_CATEGORIES = frozenset(
    {"deadlock", "livelock", "budget exceeded", "fault"})


@dataclass
class SweepPoint:
    """One configuration of a sweep."""

    #: The dialed parameter's absolute value (µs, or MB/s for bulk).
    value: float
    knobs: TuningKnobs
    #: None when the run did not complete (deadlock / livelock / budget
    #: / fault).
    result: Optional[RunResult] = None
    failure: Optional[str] = None

    @property
    def completed(self) -> bool:
        return self.result is not None

    @property
    def runtime_us(self) -> Optional[float]:
        return self.result.runtime_us if self.result else None

    @property
    def failure_category(self) -> Optional[str]:
        """The taxonomy bucket of :attr:`failure`.

        One of :data:`FAILURE_CATEGORIES` (``deadlock`` / ``livelock``
        / ``budget exceeded`` / ``fault``), ``"error"`` for an
        unrecognised failure string, or ``None`` when the point
        completed.
        """
        if self.failure is None:
            return None
        head = self.failure.split(":", 1)[0].strip()
        return head if head in FAILURE_CATEGORIES else "error"


@dataclass
class SweepResult:
    """A full sweep of one application over one dial."""

    app_name: str
    n_nodes: int
    parameter: str  # "overhead" | "gap" | "latency" | "bulk_mb_s"
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def baseline(self) -> SweepPoint:
        return self.points[0]

    def slowdowns(self) -> List[Optional[float]]:
        """Per-point slowdown vs the sweep baseline (None for N/A)."""
        base = self.baseline.runtime_us
        if base is None:
            raise RuntimeError(
                f"{self.app_name}: baseline run did not complete")
        return [p.runtime_us / base if p.completed else None
                for p in self.points]

    def values(self) -> List[float]:
        """The dialed parameter values, in sweep order."""
        return [p.value for p in self.points]

    def series(self) -> List[tuple]:
        """(value, slowdown) pairs for completed points."""
        base = self.baseline.runtime_us
        if base is None:
            raise RuntimeError(
                f"{self.app_name}: baseline run did not complete")
        return [(p.value, p.runtime_us / base)
                for p in self.points if p.completed]

    def as_rows(self) -> List[dict]:
        """Flat dict rows (value, runtime, slowdown) per point.

        Unlike :meth:`slowdowns` / :meth:`series`, a failed *baseline*
        does not raise here: report generation over a whole suite must
        not crash because one sweep's first point livelocked, so every
        point's slowdown is simply ``"N/A"`` in that case.

        The ``failure`` column carries the point's
        :attr:`~SweepPoint.failure_category` (empty string for
        completed points), so N/A cells are distinguishable in reports.
        """
        base = self.baseline.runtime_us
        rows = []
        for point in self.points:
            slowdown = point.runtime_us / base \
                if point.completed and base is not None else None
            rows.append({
                "app": self.app_name,
                self.parameter: point.value,
                "runtime_us": (round(point.runtime_us, 1)
                               if point.completed else "N/A"),
                "slowdown": (round(slowdown, 2)
                             if slowdown is not None else "N/A"),
                "failure": point.failure_category or "",
            })
        return rows


#: The four machine dials of the paper's apparatus, i.e. every
#: ``parameter`` :func:`knob_factory` can map to knob constructors.
MACHINE_DIALS = ("overhead", "gap", "latency", "bulk_mb_s")


def knob_factory(parameter: str,
                 params: Optional[LogGPParams] = None
                 ) -> Callable[[float], TuningKnobs]:
    """value → :class:`TuningKnobs` for one of the paper's four dials.

    The single source of the dial semantics used by the Figure 5-8
    sweeps, :func:`collective_sweep`, and the campaign manager's
    argument products: dialed values are *absolute* targets (µs, or
    MB/s for ``bulk_mb_s``), turned into added-delta knobs against the
    ``params`` baseline.
    """
    params = params if params is not None else LogGPParams.berkeley_now()
    if parameter == "overhead":
        return lambda o: TuningKnobs.added_overhead(
            max(0.0, o - params.overhead))
    if parameter == "gap":
        return lambda g: TuningKnobs.added_gap(max(0.0, g - params.gap))
    if parameter == "latency":
        return lambda L: TuningKnobs.added_latency(
            max(0.0, L - params.latency))
    if parameter == "bulk_mb_s":
        return lambda mb: TuningKnobs.bulk_bandwidth(mb, params)
    raise ValueError(
        f"parameter must be one of {MACHINE_DIALS}, got {parameter!r}")


def run_sweep(app: Application, n_nodes: int, parameter: str,
              values: Sequence[float],
              knob_for: Callable[[float], TuningKnobs],
              params: Optional[LogGPParams] = None,
              seed: int = 0,
              run_limit_us: Optional[float] = None,
              livelock_limit: int = 200_000,
              window: int = 8,
              jobs: Optional[int] = None,
              cache: Optional["RunCache"] = None,  # noqa: F821
              fault_for: Optional[
                  Callable[[float], Optional[FaultPlan]]] = None,
              sanitize: bool = False,
              coll: Optional["CollConfig"] = None,  # noqa: F821
              engine: Optional[str] = None) -> SweepResult:
    """Run ``app`` at each dialed value; first value is the baseline.

    ``jobs`` > 1 fans the points across a process pool (bit-identical
    results — see :mod:`repro.harness.parallel`); ``cache`` is an
    optional :class:`~repro.harness.runcache.RunCache` consulted before
    simulating and updated after.  ``fault_for`` optionally maps each
    value to a :class:`~repro.network.faults.FaultPlan` for that point.
    ``sanitize=True`` runs every point under simsan (and bypasses the
    cache — sanitized results are never cached or served from cache).
    ``coll`` applies one :class:`~repro.coll.tuner.CollConfig` to every
    point (part of the cache key unless it is the default).
    ``engine`` picks the Simulator scheduling engine (bit-identical
    tiers, so it never affects cache keys or results).
    """
    # Imported lazily: parallel imports this module for SweepPoint/Result.
    from repro.harness.parallel import run_sweep_points
    return run_sweep_points(app, n_nodes, parameter, values, knob_for,
                            params=params, seed=seed,
                            run_limit_us=run_limit_us,
                            livelock_limit=livelock_limit, window=window,
                            jobs=jobs, cache=cache, fault_for=fault_for,
                            sanitize=sanitize, coll=coll, engine=engine)


def predicted_sweep(app: Application, n_nodes: int, parameter: str,
                    values: Sequence[float],
                    knob_for: Optional[
                        Callable[[float], TuningKnobs]] = None,
                    params: Optional[LogGPParams] = None,
                    seed: int = 0,
                    run_limit_us: Optional[float] = None,
                    livelock_limit: int = 200_000,
                    window: int = 8,
                    graph: Optional["CostGraph"] = None,  # noqa: F821
                    ):
    """The analytical drop-in for :func:`run_sweep` (simcost).

    One instrumented simulation of ``app`` at the baseline replaces
    the whole dial sweep: the run's dependency DAG is recorded, then
    every value of ``parameter`` is predicted by symbolic longest-path
    replay (see :mod:`repro.cost`).  Returns a
    :class:`~repro.cost.predict.PredictedSweep`, which reads like a
    :class:`SweepResult` (``values`` / ``slowdowns`` / ``series`` /
    ``as_rows``) but reports ``simulations_used`` (1, or 0 when a
    pre-recorded ``graph`` is supplied) instead of one run per point.

    ``knob_for`` defaults to the shared :func:`knob_factory` dial
    semantics, so predicted and simulated sweeps dial identically.
    """
    from repro.cost.predict import predict_sweep as _predict
    from repro.cost.recorder import record_run
    simulations = 0
    if graph is None:
        graph, _result = record_run(
            app, n_nodes, params=params, seed=seed, window=window,
            run_limit_us=run_limit_us, livelock_limit=livelock_limit)
        simulations = 1
    sweep = _predict(graph, parameter, values, knob_for=knob_for)
    sweep.simulations_used = simulations
    return sweep


def overhead_sweep(app: Application, n_nodes: int,
                   overheads: Sequence[float] = PAPER_OVERHEADS,
                   params: Optional[LogGPParams] = None,
                   **kwargs) -> SweepResult:
    """Figure 5: slowdown as a function of (absolute) overhead."""
    params = params or LogGPParams.berkeley_now()
    return run_sweep(
        app, n_nodes, "overhead", overheads,
        lambda o: TuningKnobs.added_overhead(
            max(0.0, o - params.overhead)),
        params=params, **kwargs)


def gap_sweep(app: Application, n_nodes: int,
              gaps: Sequence[float] = PAPER_GAPS,
              params: Optional[LogGPParams] = None,
              **kwargs) -> SweepResult:
    """Figure 6: slowdown as a function of (absolute) gap."""
    params = params or LogGPParams.berkeley_now()
    return run_sweep(
        app, n_nodes, "gap", gaps,
        lambda g: TuningKnobs.added_gap(max(0.0, g - params.gap)),
        params=params, **kwargs)


def latency_sweep(app: Application, n_nodes: int,
                  latencies: Sequence[float] = PAPER_LATENCIES,
                  params: Optional[LogGPParams] = None,
                  **kwargs) -> SweepResult:
    """Figure 7: slowdown as a function of (absolute) latency."""
    params = params or LogGPParams.berkeley_now()
    return run_sweep(
        app, n_nodes, "latency", latencies,
        lambda L: TuningKnobs.added_latency(
            max(0.0, L - params.latency)),
        params=params, **kwargs)


def bulk_bandwidth_sweep(app: Application, n_nodes: int,
                         bandwidths: Sequence[float] = PAPER_BANDWIDTHS,
                         params: Optional[LogGPParams] = None,
                         **kwargs) -> SweepResult:
    """Figure 8: slowdown as a function of available bulk bandwidth."""
    params = params or LogGPParams.berkeley_now()
    return run_sweep(
        app, n_nodes, "bulk_mb_s", bandwidths,
        lambda mb: TuningKnobs.bulk_bandwidth(mb, params),
        params=params, **kwargs)


def fault_sweep(app: Application, n_nodes: int,
                drop_rates: Sequence[float] = FAULT_DROP_RATES,
                base_plan: Optional[FaultPlan] = None,
                **kwargs) -> SweepResult:
    """Slowdown as a function of per-packet drop probability.

    The machine dials stay at the unmodified baseline; the only thing
    swept is the fault injector's drop rate.  Rate 0.0 yields a null
    plan, so the baseline point is bit-identical to an ordinary
    fault-free run (and shares its cache entry).  ``base_plan`` lets
    callers fix non-drop aspects (timeouts, retries, drop kinds).
    """
    plan = base_plan if base_plan is not None else FaultPlan()
    return run_sweep(
        app, n_nodes, "drop_rate", drop_rates,
        lambda _rate: TuningKnobs(),
        fault_for=lambda rate: plan.with_changes(drop_rate=rate),
        **kwargs)


#: Sentinel sweep value for the no-spike baseline point of
#: :func:`spike_decay_sweep` (spike start times are always >= 0).
NO_SPIKE = -1.0


def spike_decay_sweep(app: Application, n_nodes: int,
                      node: int, duration_us: float,
                      starts: Sequence[float],
                      **kwargs) -> SweepResult:
    """How a one-off delay spike's cost decays with its start time.

    Each point injects a single Afzal-style delay spike of
    ``duration_us`` at ``node``, beginning at one of ``starts``
    (simulated µs); the swept parameter is the start time.  The
    baseline point (sentinel value :data:`NO_SPIKE`) runs with no
    fault plan at all, so each point's residual over the baseline
    measures how much of the spike the application absorbed versus
    propagated.
    """
    values = (NO_SPIKE,) + tuple(starts)

    def fault_for(start: float) -> Optional[FaultPlan]:
        if start < 0:
            return None
        return FaultPlan(spikes=(
            DelaySpike(node=node, start_us=start,
                       duration_us=duration_us),))

    return run_sweep(
        app, n_nodes, "spike_start_us", values,
        lambda _start: TuningKnobs(), fault_for=fault_for, **kwargs)


#: The dial each :func:`collective_sweep` point can move.  Mirrors the
#: four figure sweeps above (see :func:`knob_factory`).
COLLECTIVE_SWEEP_DIALS = MACHINE_DIALS


def collective_sweep(primitive: str, n_nodes: int,
                     parameter: str,
                     values: Sequence[float],
                     algo: Optional[str] = None,
                     size: int = 32,
                     bulk: bool = False,
                     iterations: int = 4,
                     params: Optional[LogGPParams] = None,
                     coll: Optional["CollConfig"] = None,  # noqa: F821
                     **kwargs) -> SweepResult:
    """Collective sensitivity: one primitive's runtime across one dial.

    Runs :class:`~repro.coll.bench.CollectiveBench` for ``primitive``
    (scheduled as ``algo``, or by the cluster's tuning policy when
    ``algo`` is None and ``coll`` supplies one) at every value of
    ``parameter`` — one of :data:`COLLECTIVE_SWEEP_DIALS`, dialed
    exactly like the Figure 5-8 sweeps.  The first value is the
    baseline, so slowdowns read like the paper's figures but for a
    single collective instead of a whole application.
    """
    from repro.coll.bench import CollectiveBench
    params = params or LogGPParams.berkeley_now()
    knob_for = knob_factory(parameter, params)
    app = CollectiveBench(primitive, algo=algo, size=size, bulk=bulk,
                          iterations=iterations)
    return run_sweep(app, n_nodes, parameter, values, knob_for,
                     params=params, coll=coll, **kwargs)
