"""Sqlite-backed result store for resumable simulation campaigns.

The on-disk :class:`~repro.harness.runcache.RunCache` is content
addressed — perfect for "have I ever run this exact configuration?" —
but a million-point study also needs the *query side*: which points of
campaign X are done, which (app, P, dial) series exist, and enough
payload to rebuild tables and figures without touching a simulator.
That is a relational problem, so this layer is one sqlite database:

* one row per **completed** point, keyed by the campaign name plus the
  same SHA-256 the RunCache derives from the canonical ``run_key_spec``
  JSON — the store and the cache agree, by construction, on what "the
  same point" means;
* denormalised (app, P, parameter, value, seed) columns so table and
  figure generation is a ``SELECT``, not a resimulation;
* full :class:`~repro.cluster.machine.RunResult` payloads via the
  existing ``to_dict`` serialization (or the failure string for N/A
  points), stored as canonical sorted-keys JSON so regenerated
  artifacts are byte-identical no matter which process stored the row;
* WAL journal mode, so concurrent writers (multi-process campaign
  runners sharing one store) never block readers.

Rows are committed one `put` at a time: the moment a point's row is
visible, a crashed-and-restarted campaign will skip it.  That is the
store's entire crash-safety contract — there is no "in progress" state
to clean up, because only finished points are ever written.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.cluster.machine import RunResult

__all__ = ["ResultStore", "StoredPoint"]

#: Bump to invalidate stores when the row schema changes shape.
STORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    campaign  TEXT    NOT NULL,
    key       TEXT    NOT NULL,  -- RunCache.key_for(run_key_spec) sha
    app       TEXT    NOT NULL,
    n_nodes   INTEGER NOT NULL,
    parameter TEXT    NOT NULL,
    value     REAL    NOT NULL,
    seed      INTEGER NOT NULL,
    failure   TEXT,              -- exactly one of failure/result is set
    result    TEXT,              -- RunResult.to_dict() as canonical JSON
    spec      TEXT    NOT NULL,  -- canonical key-spec JSON (provenance)
    created_s REAL    NOT NULL,
    PRIMARY KEY (campaign, key)
);
CREATE INDEX IF NOT EXISTS idx_results_series
    ON results (campaign, app, n_nodes, parameter, seed);
"""


class StoredPoint:
    """One completed campaign point restored from the store."""

    __slots__ = ("campaign", "key", "app", "n_nodes", "parameter",
                 "value", "seed", "failure", "result")

    def __init__(self, campaign: str, key: str, app: str, n_nodes: int,
                 parameter: str, value: float, seed: int,
                 failure: Optional[str],
                 result: Optional[RunResult]) -> None:
        self.campaign = campaign
        self.key = key
        self.app = app
        self.n_nodes = n_nodes
        self.parameter = parameter
        self.value = value
        self.seed = seed
        self.failure = failure
        self.result = result

    @property
    def completed(self) -> bool:
        return self.result is not None


class ResultStore:
    """One sqlite database of completed campaign points.

    Safe to share between processes: WAL mode keeps readers unblocked
    by writers, and every :meth:`put` is its own transaction, so a row
    is either fully visible or absent — never half-written.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(self.path, timeout=30.0)
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.executescript(_SCHEMA)
        self._check_schema_version()
        #: Resume accounting for the session, mirroring RunCache's
        #: hits/misses counters.
        self.hits = 0
        self.misses = 0

    def _check_schema_version(self) -> None:
        row = self._db.execute(
            "SELECT value FROM meta WHERE key='schema'").fetchone()
        if row is None:
            with self._db:
                self._db.execute(
                    "INSERT OR REPLACE INTO meta VALUES ('schema', ?)",
                    (str(STORE_SCHEMA_VERSION),))
        elif int(row[0]) != STORE_SCHEMA_VERSION:
            raise ValueError(
                f"result store {self.path} has schema v{row[0]}, this "
                f"code expects v{STORE_SCHEMA_VERSION}; migrate or "
                "start a fresh store")

    # -- store / lookup ----------------------------------------------------
    def put(self, campaign: str, key: str, *, app: str, n_nodes: int,
            parameter: str, value: float, seed: int,
            spec: Dict[str, Any],
            result: Optional[RunResult] = None,
            failure: Optional[str] = None) -> None:
        """Persist one finished point (its own committed transaction)."""
        if (result is None) == (failure is None):
            raise ValueError("exactly one of result/failure must be given")
        payload = None if result is None else json.dumps(
            result.to_dict(), sort_keys=True)
        with self._db:
            self._db.execute(
                "INSERT OR REPLACE INTO results VALUES "
                "(?,?,?,?,?,?,?,?,?,?,?)",
                (campaign, key, app, n_nodes, parameter, value, seed,
                 failure, payload, json.dumps(spec, sort_keys=True,
                                              default=repr),
                 time.time()))

    def get(self, campaign: str, key: str
            ) -> Optional[Tuple[Optional[RunResult], Optional[str]]]:
        """The stored ``(result, failure)`` outcome, or None on a miss."""
        row = self._db.execute(
            "SELECT failure, result FROM results "
            "WHERE campaign=? AND key=?", (campaign, key)).fetchone()
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        failure, payload = row
        if failure is not None:
            return (None, failure)
        return (RunResult.from_dict(json.loads(payload)), None)

    def keys(self, campaign: str) -> Set[str]:
        """Every stored point key of one campaign (the resume set)."""
        return {row[0] for row in self._db.execute(
            "SELECT key FROM results WHERE campaign=?", (campaign,))}

    def count(self, campaign: Optional[str] = None) -> int:
        """Stored points, for one campaign or the whole store."""
        if campaign is None:
            query, args = "SELECT COUNT(*) FROM results", ()
        else:
            query = "SELECT COUNT(*) FROM results WHERE campaign=?"
            args = (campaign,)
        return self._db.execute(query, args).fetchone()[0]

    def count_failures(self, campaign: str) -> int:
        """Stored N/A points (failure string, no result payload)."""
        return self._db.execute(
            "SELECT COUNT(*) FROM results "
            "WHERE campaign=? AND failure IS NOT NULL",
            (campaign,)).fetchone()[0]

    def campaigns(self) -> List[str]:
        """Every campaign with at least one stored point."""
        return [row[0] for row in self._db.execute(
            "SELECT DISTINCT campaign FROM results ORDER BY campaign")]

    # -- query side (table/figure generation) ------------------------------
    def points(self, campaign: str, app: Optional[str] = None,
               n_nodes: Optional[int] = None,
               parameter: Optional[str] = None,
               seed: Optional[int] = None) -> Iterator[StoredPoint]:
        """Stored points of one campaign, optionally filtered.

        Rows stream back ordered by (app, n_nodes, parameter, seed,
        value) so series reconstruction is deterministic regardless of
        completion order.
        """
        query = ("SELECT campaign, key, app, n_nodes, parameter, value, "
                 "seed, failure, result FROM results WHERE campaign=?")
        args: List[Any] = [campaign]
        for column, wanted in (("app", app), ("n_nodes", n_nodes),
                               ("parameter", parameter), ("seed", seed)):
            if wanted is not None:
                query += f" AND {column}=?"
                args.append(wanted)
        query += " ORDER BY app, n_nodes, parameter, seed, value"
        for row in self._db.execute(query, args):
            (campaign_, key, app_, nodes, dial, value, seed_, failure,
             payload) = row
            result = None if payload is None else RunResult.from_dict(
                json.loads(payload))
            yield StoredPoint(campaign_, key, app_, nodes, dial, value,
                              seed_, failure, result)

    # -- garbage collection ------------------------------------------------
    def prune(self, campaign: str) -> int:
        """Delete every stored point of one campaign; returns the count.

        One committed transaction: either all of the campaign's rows
        are gone or none are.  Other campaigns' rows are untouched.
        Space is only returned to the filesystem by :meth:`vacuum`.
        """
        with self._db:
            cursor = self._db.execute(
                "DELETE FROM results WHERE campaign=?", (campaign,))
        return cursor.rowcount

    def vacuum(self) -> None:
        """Compact the database file after pruning (sqlite VACUUM).

        Runs outside any transaction (sqlite requires it) and blocks
        concurrent writers for the duration — call it from maintenance
        paths like ``python -m repro.harness --store-gc``, not from a
        live campaign.
        """
        self._db.execute("VACUUM")

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __len__(self) -> int:
        return self.count()

    def describe(self) -> str:
        """One-line summary for CLI output."""
        return (f"ResultStore({self.path}, {len(self)} points in "
                f"{len(self.campaigns())} campaigns, {self.hits} hits / "
                f"{self.misses} misses this session)")
