"""Regenerate every table and figure of the paper from the command line.

Usage::

    python -m repro.harness                 # everything, default scale
    python -m repro.harness --scale 0.25 --nodes 16 --out results/
    python -m repro.harness --only table2 figure7

Each artifact is printed and, with ``--out``, also written to
``<out>/<artifact>.txt``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.harness import experiments

#: artifact name -> callable(n_nodes, scale) -> object with .render().
ARTIFACTS = {
    "table1": lambda nodes, scale: experiments.table1_baseline_params(),
    "figure3": lambda nodes, scale: experiments.figure3_signature(),
    "table2": lambda nodes, scale: experiments.table2_calibration(),
    "table3": lambda nodes, scale: experiments.table3_baseline_runtimes(
        node_counts=(nodes // 2, nodes), scale=scale),
    "figure4": lambda nodes, scale: experiments.figure4_balance(
        n_nodes=nodes, scale=scale),
    "table4": lambda nodes, scale: experiments.table4_comm_summary(
        n_nodes=nodes, scale=scale),
    "figure5": lambda nodes, scale: experiments.figure5_overhead(
        n_nodes=nodes, scale=scale),
    "table5": lambda nodes, scale: experiments.table5_overhead_model(
        n_nodes=nodes, scale=scale),
    "figure6": lambda nodes, scale: experiments.figure6_gap(
        n_nodes=nodes, scale=scale),
    "table6": lambda nodes, scale: experiments.table6_gap_model(
        n_nodes=nodes, scale=scale),
    "figure7": lambda nodes, scale: experiments.figure7_latency(
        n_nodes=nodes, scale=scale),
    "figure8": lambda nodes, scale: experiments.figure8_bulk(
        n_nodes=nodes, scale=scale),
    "figure9": lambda nodes, scale: experiments.figure9_faults(
        n_nodes=nodes, scale=scale),
    "table7": lambda nodes, scale: experiments.table7_spike_decay(
        n_nodes=nodes, scale=scale),
    "figure10": lambda nodes, scale: experiments.figure10_collectives(
        n_nodes=nodes),
    "table8": lambda nodes, scale: experiments.table8_coll_tuner(
        n_nodes=nodes),
    "surface": lambda nodes, scale: _surface(nodes, scale),
}


def _surface(nodes, scale):
    from repro.harness.surface import overhead_gap_surface
    return overhead_gap_surface(n_nodes=min(nodes, 16), scale=scale)


def main(argv=None) -> int:
    """Parse arguments, regenerate the selected artifacts."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("--nodes", type=int, default=32,
                        help="cluster size (default 32, as the paper)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="input scale (default 0.5)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to write <artifact>.txt files")
    parser.add_argument("--only", nargs="*", default=None,
                        choices=sorted(ARTIFACTS),
                        help="subset of artifacts to regenerate")
    args = parser.parse_args(argv)

    selected = args.only if args.only else list(ARTIFACTS)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    for name in selected:
        started = time.time()
        artifact = ARTIFACTS[name](args.nodes, args.scale)
        text = artifact.render()
        elapsed = time.time() - started
        print(f"\n{'=' * 72}\n{name}  (regenerated in {elapsed:.1f}s)\n")
        print(text)
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
