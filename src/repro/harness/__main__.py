"""Regenerate every table and figure of the paper from the command line.

Usage::

    python -m repro.harness                 # everything, default scale
    python -m repro.harness --scale 0.25 --nodes 16 --out results/
    python -m repro.harness --only table2 figure7

Each artifact is printed and, with ``--out``, also written to
``<out>/<artifact>.txt``.

Campaign mode runs (or resumes) a :mod:`repro.harness.campaign` spec
from a JSON file against a sqlite result store instead::

    python -m repro.harness --campaign spec.json --store results.sqlite
    python -m repro.harness --campaign spec.json --store results.sqlite \\
        --render campaign.md --bench-out BENCH_campaign.json

Killing a campaign mid-run loses nothing: every completed point is
already in the store, and the same command resumes where it stopped.

Store maintenance prunes finished campaigns and compacts the file::

    python -m repro.harness --store-gc --store results.sqlite \\
        --prune old-campaign-1 old-campaign-2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.harness import experiments

#: artifact name -> callable(n_nodes, scale) -> object with .render().
ARTIFACTS = {
    "table1": lambda nodes, scale: experiments.table1_baseline_params(),
    "figure3": lambda nodes, scale: experiments.figure3_signature(),
    "table2": lambda nodes, scale: experiments.table2_calibration(),
    "table3": lambda nodes, scale: experiments.table3_baseline_runtimes(
        node_counts=(nodes // 2, nodes), scale=scale),
    "figure4": lambda nodes, scale: experiments.figure4_balance(
        n_nodes=nodes, scale=scale),
    "table4": lambda nodes, scale: experiments.table4_comm_summary(
        n_nodes=nodes, scale=scale),
    "figure5": lambda nodes, scale: experiments.figure5_overhead(
        n_nodes=nodes, scale=scale),
    "table5": lambda nodes, scale: experiments.table5_overhead_model(
        n_nodes=nodes, scale=scale),
    "figure6": lambda nodes, scale: experiments.figure6_gap(
        n_nodes=nodes, scale=scale),
    "table6": lambda nodes, scale: experiments.table6_gap_model(
        n_nodes=nodes, scale=scale),
    "figure7": lambda nodes, scale: experiments.figure7_latency(
        n_nodes=nodes, scale=scale),
    "figure8": lambda nodes, scale: experiments.figure8_bulk(
        n_nodes=nodes, scale=scale),
    "figure9": lambda nodes, scale: experiments.figure9_faults(
        n_nodes=nodes, scale=scale),
    "table7": lambda nodes, scale: experiments.table7_spike_decay(
        n_nodes=nodes, scale=scale),
    "figure10": lambda nodes, scale: experiments.figure10_collectives(
        n_nodes=nodes),
    "table8": lambda nodes, scale: experiments.table8_coll_tuner(
        n_nodes=nodes),
    "figure11": lambda nodes, scale: experiments.figure11_serving(
        n_nodes=nodes, scale=scale),
    "surface": lambda nodes, scale: _surface(nodes, scale),
    # simcost: the overhead sweep predicted from one recorded run per
    # app instead of one simulation per (app, value) point.
    "predict": lambda nodes, scale: experiments.predicted_sensitivity(
        n_nodes=nodes, scale=scale, parameter="overhead"),
}


def _surface(nodes, scale):
    from repro.harness.surface import overhead_gap_surface
    return overhead_gap_surface(n_nodes=min(nodes, 16), scale=scale)


def run_campaign_cli(args) -> int:
    """The ``--campaign`` mode: run/resume a spec file against a store."""
    from repro.harness import RunCache
    from repro.harness.campaign import (CampaignSpec, render_campaign,
                                        run_campaign)
    from repro.harness.store import ResultStore

    spec = CampaignSpec.from_json(args.campaign.read_text())
    cache = None if args.no_cache else RunCache(args.cache_dir)
    with ResultStore(args.store) as store:
        report = run_campaign(spec, store, cache=cache, jobs=args.jobs,
                              progress=print)
        print(store.describe())
        if args.bench_out is not None:
            args.bench_out.write_text(
                json.dumps(report.to_dict(), indent=2, sort_keys=True)
                + "\n")
            print(f"wrote {args.bench_out}")
        if args.render is not None:
            args.render.write_text(render_campaign([spec], store))
            print(f"wrote {args.render}")
    return 0


def store_gc_cli(args) -> int:
    """The ``--store-gc`` mode: prune campaigns and compact the store."""
    from repro.harness.store import ResultStore
    with ResultStore(args.store) as store:
        if args.prune:
            for campaign in args.prune:
                removed = store.prune(campaign)
                print(f"pruned {removed} point(s) of campaign "
                      f"{campaign!r}")
        store.vacuum()
        print(f"vacuumed {store.path}")
        print(store.describe())
    return 0


def main(argv=None) -> int:
    """Parse arguments, regenerate the selected artifacts."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("--nodes", type=int, default=32,
                        help="cluster size (default 32, as the paper)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="input scale (default 0.5)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to write <artifact>.txt files")
    parser.add_argument("--only", nargs="*", default=None,
                        choices=sorted(ARTIFACTS),
                        help="subset of artifacts to regenerate")
    campaign = parser.add_argument_group("campaign mode")
    campaign.add_argument("--campaign", type=pathlib.Path, default=None,
                          help="run/resume a CampaignSpec JSON file "
                          "instead of regenerating artifacts")
    campaign.add_argument("--store", type=pathlib.Path, default=None,
                          help="sqlite result store path (campaign mode)")
    campaign.add_argument("--jobs", type=int, default=None,
                          help="campaign worker processes "
                          "(default: one per core)")
    campaign.add_argument("--no-cache", action="store_true",
                          help="campaign mode: skip the on-disk run cache")
    campaign.add_argument("--cache-dir", default=None,
                          help="run cache directory (default "
                          "~/.cache/repro or $REPRO_CACHE_DIR)")
    campaign.add_argument("--render", type=pathlib.Path, default=None,
                          help="write store-generated campaign artifacts "
                          "to this markdown file")
    campaign.add_argument("--bench-out", type=pathlib.Path, default=None,
                          help="write the campaign's BENCH JSON here")
    campaign.add_argument("--store-gc", action="store_true",
                          help="garbage-collect the result store: prune "
                          "the campaigns named by --prune, then VACUUM")
    campaign.add_argument("--prune", nargs="*", default=None,
                          metavar="CAMPAIGN",
                          help="campaign names to delete during "
                          "--store-gc (omit to only VACUUM)")
    args = parser.parse_args(argv)

    if args.store_gc:
        if args.store is None:
            parser.error("--store-gc needs --store")
        return store_gc_cli(args)
    if args.campaign is not None:
        if args.store is None:
            parser.error("--campaign needs --store")
        return run_campaign_cli(args)

    selected = args.only if args.only else list(ARTIFACTS)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    for name in selected:
        started = time.time()
        artifact = ARTIFACTS[name](args.nodes, args.scale)
        text = artifact.render()
        elapsed = time.time() - started
        print(f"\n{'=' * 72}\n{name}  (regenerated in {elapsed:.1f}s)\n")
        print(text)
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
