"""Experiments beyond the paper's figures (extensions).

Three studies the paper motivates but does not plot:

* :func:`scaling_study` — how sensitivity to overhead changes with the
  number of processors (Section 5.1's parallel-efficiency observation:
  "speedup gets worse the greater the overhead" for programs with a
  serial portion).
* :func:`investment_study` — the closing trade-off of Section 5.5:
  double the CPUs or halve the communication costs?
* :func:`occupancy_study` — the Flash study's parameter (Section 6):
  how NIC occupancy compares against host overhead of the same
  magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.am.tuning import TuningKnobs
from repro.cluster.machine import Cluster
from repro.cluster.node import CostModel
from repro.harness.report import render_table
from repro.harness.suite import suite_for
from repro.network.loggp import LogGPParams

__all__ = ["scaling_study", "investment_study", "occupancy_study",
           "ScalingStudy", "InvestmentStudy", "OccupancyStudy"]


# ---------------------------------------------------------------------------
# Scaling: sensitivity vs P.
# ---------------------------------------------------------------------------

@dataclass
class ScalingStudy:
    """Per-P overhead sensitivity with the serial residual isolated.

    The residual — measured dialed runtime over the busiest-processor
    model's prediction (``r + 2·m·Δo``) — is the paper's serialization
    effect made into a number: it grows with P for a program whose
    serial phase is proportional to P (Radix's histogram), which is why
    "parallel efficiency will decrease as overhead increases".
    """

    app_name: str
    delta_o: float
    #: node count -> (base µs, dialed µs, max messages/proc at base).
    runtimes: Dict[int, tuple] = field(default_factory=dict)

    def slowdown(self, n_nodes: int) -> float:
        """Dialed over baseline runtime at one cluster size."""
        base, dialed, _m = self.runtimes[n_nodes]
        return dialed / base

    def serial_residual(self, n_nodes: int) -> float:
        """Measured over model-predicted runtime at Δo (>1 means the
        simple model under-predicts: serialized work exists)."""
        base, dialed, max_messages = self.runtimes[n_nodes]
        predicted = base + 2.0 * max_messages * self.delta_o
        return dialed / predicted

    def residual_growth(self) -> float:
        """Largest-P residual over smallest-P residual."""
        node_counts = sorted(self.runtimes)
        return (self.serial_residual(node_counts[-1])
                / self.serial_residual(node_counts[0]))

    def rows(self) -> List[dict]:
        """One dict row per cluster size."""
        return [{
            "nodes": n,
            "baseline (ms)": round(base / 1000, 2),
            f"+{self.delta_o}us o (ms)": round(dialed / 1000, 2),
            "slowdown": round(dialed / base, 2),
            "serial residual": round(self.serial_residual(n), 3),
        } for n, (base, dialed, _m) in sorted(self.runtimes.items())]

    def render(self) -> str:
        """ASCII rendering of the study."""
        return render_table(
            self.rows(),
            title=f"Scaling study: {self.app_name}, overhead "
                  f"sensitivity vs P (fixed total input)")


def scaling_study(app_name: str = "Radix",
                  node_counts: Sequence[int] = (8, 16, 32),
                  delta_o: float = 100.0, scale: float = 1.0,
                  seed: int = 0) -> ScalingStudy:
    """Run one app at several cluster sizes, fixed total input, with and
    without added overhead."""
    study = ScalingStudy(app_name=app_name, delta_o=delta_o)
    for n_nodes in node_counts:
        app, = suite_for(n_nodes, scale=scale, names=[app_name])
        base_cluster = Cluster(n_nodes=n_nodes, seed=seed)
        dialed_cluster = base_cluster.with_knobs(
            TuningKnobs.added_overhead(delta_o))
        base_result = base_cluster.run(app)
        # Rebuild the app so stale state never leaks between runs.
        app, = suite_for(n_nodes, scale=scale, names=[app_name])
        dialed = dialed_cluster.run(app).runtime_us
        study.runtimes[n_nodes] = (
            base_result.runtime_us, dialed,
            base_result.stats.max_messages_per_node)
    return study


# ---------------------------------------------------------------------------
# Investment: CPU vs communication.
# ---------------------------------------------------------------------------

@dataclass
class InvestmentStudy:
    app_name: str
    n_nodes: int
    runtimes: Dict[str, float] = field(default_factory=dict)  # µs

    def speedup(self, design: str) -> float:
        """Baseline runtime over a design's runtime."""
        return self.runtimes["baseline"] / self.runtimes[design]

    def rows(self) -> List[dict]:
        """One dict row per design point."""
        return [{
            "design": design,
            "runtime (ms)": round(runtime / 1000, 2),
            "speedup": round(self.speedup(design), 2),
        } for design, runtime in self.runtimes.items()]

    def render(self) -> str:
        """ASCII rendering of the study."""
        return render_table(
            self.rows(),
            title=f"Investment study ({self.app_name}, "
                  f"{self.n_nodes} nodes): CPU vs communication")


def investment_study(app_name: str = "Sample", n_nodes: int = 16,
                     scale: float = 1.0, seed: int = 0
                     ) -> InvestmentStudy:
    """Section 5.5's trade-off: 2× CPU vs halved (o, g)."""
    study = InvestmentStudy(app_name=app_name, n_nodes=n_nodes)
    now = LogGPParams.berkeley_now()
    designs = {
        "baseline": Cluster(n_nodes=n_nodes, seed=seed),
        "2x cpu": Cluster(n_nodes=n_nodes, seed=seed,
                          cost=CostModel().scaled(0.5)),
        "1/2 o and g": Cluster(
            n_nodes=n_nodes, seed=seed,
            params=now.with_changes(
                send_overhead=now.send_overhead / 2,
                recv_overhead=now.recv_overhead / 2,
                gap=now.gap / 2)),
    }
    for design, cluster in designs.items():
        app, = suite_for(n_nodes, scale=scale, names=[app_name])
        study.runtimes[design] = cluster.run(app).runtime_us
    return study


# ---------------------------------------------------------------------------
# Occupancy: the Flash study's parameter.
# ---------------------------------------------------------------------------

@dataclass
class OccupancyStudy:
    app_name: str
    n_nodes: int
    values_us: List[float] = field(default_factory=list)
    #: dial -> [runtime per value] (µs); dials: "occupancy", "overhead".
    runtimes: Dict[str, List[float]] = field(default_factory=dict)

    def slowdowns(self, dial: str) -> List[float]:
        """Per-value slowdown series for one dial."""
        series = self.runtimes[dial]
        return [r / series[0] for r in series]

    def rows(self) -> List[dict]:
        """One dict row per dialed value."""
        rows = []
        for index, value in enumerate(self.values_us):
            rows.append({
                "added (us)": value,
                "occupancy slowdown": round(
                    self.slowdowns("occupancy")[index], 2),
                "overhead slowdown": round(
                    self.slowdowns("overhead")[index], 2),
            })
        return rows

    def render(self) -> str:
        """ASCII rendering of the study."""
        return render_table(
            self.rows(),
            title=f"Occupancy vs overhead ({self.app_name}, "
                  f"{self.n_nodes} nodes)")


def occupancy_study(app_name: str = "EM3D(read)", n_nodes: int = 16,
                    values: Sequence[float] = (0.0, 10.0, 25.0, 50.0),
                    scale: float = 1.0, seed: int = 0) -> OccupancyStudy:
    """Sweep NIC occupancy and host overhead over the same grid."""
    study = OccupancyStudy(app_name=app_name, n_nodes=n_nodes,
                           values_us=list(values))
    for dial, knob_for in (
            ("occupancy", TuningKnobs.added_occupancy),
            ("overhead", TuningKnobs.added_overhead)):
        series = []
        for value in values:
            cluster = Cluster(n_nodes=n_nodes, seed=seed,
                              knobs=knob_for(value))
            app, = suite_for(n_nodes, scale=scale, names=[app_name])
            series.append(cluster.run(app).runtime_us)
        study.runtimes[dial] = series
    return study
