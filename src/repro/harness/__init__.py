"""The experiment harness: regenerates every table and figure.

* :mod:`repro.harness.suite` -- standard application suite construction
  with fixed-total-input scaling across cluster sizes (the paper runs
  the same inputs on 16 and 32 nodes).
* :mod:`repro.harness.sweeps` -- LogGP parameter sweeps producing
  slowdown curves (Figures 5-8).
* :mod:`repro.harness.parallel` -- process-pool fan-out of sweep points
  and whole experiments (bit-identical to serial execution).
* :mod:`repro.harness.runcache` -- content-addressed on-disk cache of
  completed runs, so regenerating artifacts skips known points.
* :mod:`repro.harness.store` / :mod:`repro.harness.campaign` -- the
  sqlite result store and the resumable campaign manager layered on
  the cache: argument-product specs, crash-safe execution, and
  query-side artifact generation.
* :mod:`repro.harness.experiments` -- one entry point per table/figure
  of the paper's evaluation (plus Figure 11, the open-system serving
  artifact over :mod:`repro.serve`).
* :mod:`repro.harness.report` -- ASCII tables and line plots.
"""

from repro.harness.suite import suite_for, REFERENCE_NODES
from repro.harness.sweeps import (SweepPoint, SweepResult, run_sweep,
                                  overhead_sweep, gap_sweep, latency_sweep,
                                  bulk_bandwidth_sweep, fault_sweep,
                                  spike_decay_sweep)
from repro.harness.parallel import (run_sweep_parallel,
                                    run_experiments_parallel)
from repro.harness.runcache import RunCache
from repro.harness.store import ResultStore
from repro.harness.campaign import (CampaignSpec, CampaignReport,
                                    CampaignInterrupted, EnsembleSweep,
                                    ensemble_from_store, run_campaign,
                                    sweep_from_store, figure_from_store,
                                    render_campaign, CAMPAIGN_DIALS,
                                    SERVING_CAMPAIGN_DIALS)
from repro.harness.report import ascii_plot, render_table
from repro.harness.config import ExperimentConfig
from repro.harness.surface import sensitivity_surface, overhead_gap_surface
from repro.harness.export import (write_matrix_csv, write_rows_csv,
                                  write_series_csv)

__all__ = ["suite_for", "REFERENCE_NODES", "SweepPoint", "SweepResult",
           "run_sweep", "overhead_sweep", "gap_sweep", "latency_sweep",
           "bulk_bandwidth_sweep", "fault_sweep", "spike_decay_sweep",
           "run_sweep_parallel",
           "run_experiments_parallel", "RunCache", "ResultStore",
           "CampaignSpec", "CampaignReport", "CampaignInterrupted",
           "run_campaign", "sweep_from_store", "figure_from_store",
           "CAMPAIGN_DIALS", "SERVING_CAMPAIGN_DIALS",
           "EnsembleSweep", "ensemble_from_store",
           "render_campaign", "ascii_plot",
           "render_table", "ExperimentConfig", "sensitivity_surface",
           "overhead_gap_surface", "write_rows_csv", "write_matrix_csv",
           "write_series_csv"]
