"""Content-addressed on-disk cache of completed simulation runs.

Every sweep point of the paper's evaluation is a *pure function* of its
configuration: (application + inputs, cluster shape, LogGP parameters,
tuning dials, seed, run limits) fully determine ``runtime_us`` and every
communication counter.  Regenerating a table or figure therefore only
needs to simulate points it has never seen.

The cache is one JSON file per run under a root directory (default
``~/.cache/repro``, overridable with the ``REPRO_CACHE_DIR`` environment
variable or the constructor), named by a SHA-256 of the canonical
key-spec JSON.  Entries store the full :class:`~repro.cluster.machine.
RunResult` counters — enough to rebuild figures *and* the Table 5/6
models — or the failure string for livelocked / over-budget points.
``output`` (the application's finalize payload) is not cached; restored
results carry ``output=None``.

Writes are atomic (temp file + rename) so concurrent sweep workers can
share one cache directory safely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
import re
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.am.tuning import TuningKnobs
from repro.cluster.machine import RunResult
from repro.cluster.node import CostModel
from repro.network.loggp import LogGPParams

__all__ = ["RunCache", "run_key_spec", "app_fingerprint",
           "constructor_params"]

#: Bump to invalidate every existing cache entry when the simulator's
#: event semantics change in a way that alters measured runtimes (or,
#: as in format 3, the serialized stats schema gains new counters).
CACHE_FORMAT = 3


def constructor_params(app_class: type) -> Tuple[str, ...]:
    """Named constructor parameters of ``app_class``, across its MRO.

    Walks every ``__init__`` in the class hierarchy (most-derived
    first) so a subclass that forwards ``**kwargs`` to its base still
    exposes the base's knobs — a subclass whose extra knobs ride on
    ``**kwargs`` must not silently shrink its cache identity.  ``self``
    and ``*args``/``**kwargs`` catch-alls are never parameters.
    """
    names = []
    for klass in app_class.__mro__:
        init = klass.__dict__.get("__init__")
        if init is None:
            continue
        for parameter in inspect.signature(init).parameters.values():
            if parameter.name == "self" or parameter.kind in (
                    inspect.Parameter.VAR_POSITIONAL,
                    inspect.Parameter.VAR_KEYWORD):
                continue
            if parameter.name not in names:
                names.append(parameter.name)
    return tuple(names)


def app_fingerprint(app: Any) -> Dict[str, Any]:
    """A stable description of an application instance's configuration.

    Mirrors :meth:`repro.harness.config.ExperimentConfig.from_run`: the
    constructor-signature parameters (across the MRO — see
    :func:`constructor_params`) that exist as instance attributes are
    the app's input configuration (all suite apps follow this
    convention).  Values that are not JSON types are keyed by ``repr``.
    """
    app_class = type(app)
    kwargs = {}
    for name in constructor_params(app_class):
        if hasattr(app, name):
            kwargs[name] = getattr(app, name)
    return {
        "class": f"{app_class.__module__}.{app_class.__qualname__}",
        "name": app.name,
        "kwargs": kwargs,
    }


def run_key_spec(app: Any, n_nodes: int,
                 params: LogGPParams, knobs: TuningKnobs,
                 seed: int,
                 run_limit_us: Optional[float] = None,
                 livelock_limit: int = 200_000,
                 window: int = 8,
                 window_scope: str = "per-destination",
                 fabric: str = "flat",
                 disks_per_node: int = 2,
                 cost: Optional[CostModel] = None,
                 faults: Optional["FaultPlan"] = None,  # noqa: F821
                 coll: Optional["CollConfig"] = None  # noqa: F821
                 ) -> Dict[str, Any]:
    """Everything that determines one run's outcome, as a JSON dict.

    A null (all-defaults) fault plan keys identically to no plan at
    all, matching the runtime guarantee that such runs are
    bit-identical — so they share one cache entry.  A default (fixed,
    no overrides) collective tuning config is normalised the same way.
    """
    if faults is not None and faults.is_null:
        faults = None
    if coll is not None and coll.is_default:
        coll = None
    return {
        "format": CACHE_FORMAT,
        "app": app_fingerprint(app),
        "n_nodes": n_nodes,
        "params": dataclasses.asdict(params),
        "knobs": dataclasses.asdict(knobs),
        "seed": seed,
        "run_limit_us": run_limit_us,
        "livelock_limit": livelock_limit,
        "window": window,
        "window_scope": window_scope,
        "fabric": fabric,
        "disks_per_node": disks_per_node,
        "cost": dataclasses.asdict(cost if cost is not None else CostModel()),
        "faults": dataclasses.asdict(faults) if faults is not None else None,
        "coll": dataclasses.asdict(coll) if coll is not None else None,
    }


#: The default ``object.__repr__`` (and most repr-less wrappers) embeds
#: the instance's memory address: ``<pkg.Thing object at 0x7f3a...>``.
#: Such a repr differs on every process, so a key derived from it would
#: never hit across workers or sessions — a silent 100% cache miss.
_ADDRESS_REPR = re.compile(r" at 0x[0-9a-fA-F]+\b")

#: JSON-native leaf types (serialized directly, never via ``repr``).
_JSON_LEAVES = (str, int, float, bool, type(None))


def _find_address_repr(value: Any, path: str) -> Optional[Tuple[str, str]]:
    """The spec path of the first value whose repr embeds an address.

    Walks the spec the way ``json.dumps(..., default=repr)`` serializes
    it: dicts and sequences recurse; any other leaf is keyed by its
    ``repr``.  Returns ``(path, repr)`` of the first offender, or None.
    """
    if isinstance(value, dict):
        for key, item in value.items():
            found = _find_address_repr(item, f"{path}.{key}")
            if found is not None:
                return found
        return None
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            found = _find_address_repr(item, f"{path}[{index}]")
            if found is not None:
                return found
        return None
    if isinstance(value, _JSON_LEAVES):
        return None
    text = repr(value)
    if _ADDRESS_REPR.search(text):
        return path, text
    return None


class RunCache:
    """Content-addressed store of run outcomes (results and failures)."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or \
                Path.home() / ".cache" / "repro"
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- keys --------------------------------------------------------------
    @staticmethod
    def key_for(spec: Dict[str, Any]) -> str:
        """SHA-256 of the canonical (sorted, repr-defaulted) spec JSON.

        Raises :class:`ValueError` when a spec value falls back to a
        repr that embeds a memory address (``<... object at 0x...>``):
        such a key differs on every process, so every lookup would be a
        silent miss.  Give the offending object a stable ``__repr__``
        (or pass JSON-native configuration) instead.
        """
        canonical = json.dumps(spec, sort_keys=True, default=repr)
        if _ADDRESS_REPR.search(canonical):
            found = _find_address_repr(spec, "spec")
            if found is not None:
                path, text = found
                raise ValueError(
                    f"cache key-spec value at {path} has an "
                    f"address-bearing repr ({text!r}); its key would "
                    "differ on every process (silent 100% cache miss) "
                    "— give it a stable __repr__ or use JSON-native "
                    "values")
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- lookup / store ----------------------------------------------------
    def get(self, spec: Dict[str, Any]
            ) -> Optional[Tuple[Optional[RunResult], Optional[str]]]:
        """The cached ``(result, failure)`` outcome, or None on a miss.

        Exactly one element of the pair is set: a completed run restores
        its :class:`RunResult`; a livelocked / over-budget run restores
        its failure string.  Unreadable or corrupt entries count as
        misses (and will be overwritten by the next :meth:`put`).
        """
        path = self._path(self.key_for(spec))
        try:
            data = json.loads(path.read_text())
            if data["spec"]["format"] != CACHE_FORMAT:
                raise ValueError("stale cache format")
            if data["failure"] is not None:
                outcome = (None, data["failure"])
            else:
                outcome = (RunResult.from_dict(data["result"]), None)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return outcome

    def put(self, spec: Dict[str, Any],
            result: Optional[RunResult] = None,
            failure: Optional[str] = None) -> None:
        """Store one outcome atomically (temp file + rename)."""
        if (result is None) == (failure is None):
            raise ValueError("exactly one of result/failure must be given")
        payload = {
            "spec": spec,
            "result": result.to_dict() if result is not None else None,
            "failure": failure,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(self.key_for(spec))
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, default=repr)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance -------------------------------------------------------
    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed.

        Also removes orphaned ``*.tmp`` files left behind by workers
        killed between ``mkstemp`` and the atomic rename — without
        this they accumulate forever (entries only ever land as
        ``*.json``).
        """
        removed = 0
        if self.root.is_dir():
            for pattern in ("*.json", "*.tmp"):
                for path in self.root.glob(pattern):
                    try:
                        path.unlink()
                    except OSError:
                        continue  # concurrent clear / rename race
                    removed += 1
        return removed

    def sweep_stale_tmps(self, older_than_s: float = 3600.0) -> int:
        """Remove orphaned ``*.tmp`` files; returns the number removed.

        A worker killed between ``mkstemp`` and ``os.replace`` leaves
        its temp file behind.  Only files older than ``older_than_s``
        are swept so a concurrent worker mid-``put`` is never raced;
        the campaign runner calls this on start, when no sibling
        workers of *this* campaign exist yet.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        cutoff = time.time() - older_than_s
        for path in self.root.glob("*.tmp"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue  # vanished under us (concurrent sweep/rename)
        return removed

    def describe(self) -> str:
        """One-line summary for CLI output."""
        return (f"RunCache({self.root}, {len(self)} entries, "
                f"{self.hits} hits / {self.misses} misses this session)")
