"""Two-dimensional sensitivity surfaces (an extension of Figures 5-8).

The paper dials one LogGP parameter at a time.  Real design points move
several at once (a slower NIC usually raises o *and* g), so this module
sweeps a grid over two dials and reports the slowdown surface, with an
ASCII heat map for a terminal-sized look at the interaction.

The interesting question the surface answers: are overhead and gap
*redundant* (both throttle the same messages, so the combined slowdown
is about the max of the two) or *additive* (separate resources, costs
stack)?  For CPU-bound message streams they largely overlap — the
processor is already slower than the NIC — while for bursty traffic
beyond the CPU rate they stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.am.tuning import TuningKnobs
from repro.cluster.machine import Cluster
from repro.harness.suite import suite_for
from repro.instruments.balance import GREYSCALE
from repro.network.loggp import LogGPParams

__all__ = ["SensitivitySurface", "overhead_gap_surface"]

#: Supported dial names and how a (name, value) pair becomes knobs.
_DIALS: Dict[str, Callable[[float], TuningKnobs]] = {
    "overhead": TuningKnobs.added_overhead,
    "gap": TuningKnobs.added_gap,
    "latency": TuningKnobs.added_latency,
    "occupancy": TuningKnobs.added_occupancy,
}


def _combine(x_dial: str, x: float, y_dial: str, y: float) -> TuningKnobs:
    knobs_x = _DIALS[x_dial](x)
    knobs_y = _DIALS[y_dial](y)
    merged = {}
    for name in ("delta_o", "delta_g", "delta_L", "delta_G",
                 "delta_occ"):
        merged[name] = getattr(knobs_x, name) + getattr(knobs_y, name)
    return TuningKnobs(**merged)


@dataclass
class SensitivitySurface:
    """Slowdown over a 2-D grid of added (x_dial, y_dial) values."""

    app_name: str
    n_nodes: int
    x_dial: str
    y_dial: str
    x_values: List[float]
    y_values: List[float]
    #: slowdown[(x, y)] relative to the (0, 0) corner.
    slowdown: Dict[Tuple[float, float], float] = field(
        default_factory=dict)

    def at(self, x: float, y: float) -> float:
        """Slowdown at one grid point."""
        return self.slowdown[(x, y)]

    def is_monotone(self, tolerance: float = 0.02) -> bool:
        """Non-decreasing along both axes, within a small relative
        ``tolerance`` (queueing jitter of a few tenths of a percent is
        expected when one dial hides behind the other)."""
        for j, y in enumerate(self.y_values):
            for i, x in enumerate(self.x_values):
                here = self.at(x, y)
                if i > 0:
                    left = self.at(self.x_values[i - 1], y)
                    if here < left * (1.0 - tolerance):
                        return False
                if j > 0:
                    below = self.at(x, self.y_values[j - 1])
                    if here < below * (1.0 - tolerance):
                        return False
        return True

    def interaction_excess(self, x: float, y: float) -> float:
        """Measured combined slowdown minus the independent-axes
        composition ``s(x,0) + s(0,y) - 1``; ~0 means the two dials act
        additively, negative means they overlap (redundant), positive
        means they compound."""
        independent = self.at(x, 0.0) + self.at(0.0, y) - 1.0
        return self.at(x, y) - independent

    def rows(self) -> List[dict]:
        """One dict row per y value (x values as columns)."""
        rows = []
        for y in self.y_values:
            row = {f"{self.y_dial} (us)": y}
            for x in self.x_values:
                row[f"+{self.x_dial} {x}"] = round(self.at(x, y), 2)
            rows.append(row)
        return rows

    def render(self) -> str:
        """ASCII heat map, dark = slow."""
        peak = max(self.slowdown.values())
        levels = len(GREYSCALE) - 1
        lines = [f"-- {self.app_name} slowdown surface "
                 f"({self.x_dial} across, {self.y_dial} down; "
                 f"@={peak:.1f}x) --"]
        header = " " * 8 + "".join(
            f"{x:>7.0f}" for x in self.x_values)
        lines.append(header)
        for y in reversed(self.y_values):
            cells = "".join(
                "{:>7}".format(
                    GREYSCALE[int(round(
                        (self.at(x, y) - 1.0)
                        / max(peak - 1.0, 1e-9) * levels))] * 3)
                for x in self.x_values)
            lines.append(f"{y:7.0f} {cells}")
        return "\n".join(lines)


def sensitivity_surface(app_name: str, n_nodes: int,
                        x_dial: str, x_values: Sequence[float],
                        y_dial: str, y_values: Sequence[float],
                        scale: float = 1.0, seed: int = 0,
                        params: Optional[LogGPParams] = None
                        ) -> SensitivitySurface:
    """Sweep the full (x, y) grid; (0, 0) is the baseline corner."""
    if x_dial not in _DIALS or y_dial not in _DIALS:
        known = ", ".join(sorted(_DIALS))
        raise ValueError(f"dials must be among: {known}")
    x_values = sorted(set([0.0] + list(x_values)))
    y_values = sorted(set([0.0] + list(y_values)))
    surface = SensitivitySurface(
        app_name=app_name, n_nodes=n_nodes, x_dial=x_dial,
        y_dial=y_dial, x_values=x_values, y_values=y_values)
    runtimes = {}
    for y in y_values:
        for x in x_values:
            knobs = _combine(x_dial, x, y_dial, y)
            cluster = Cluster(n_nodes=n_nodes, seed=seed, knobs=knobs,
                              params=params)
            app, = suite_for(n_nodes, scale=scale, names=[app_name])
            runtimes[(x, y)] = cluster.run(app).runtime_us
    base = runtimes[(0.0, 0.0)]
    surface.slowdown = {key: runtime / base
                        for key, runtime in runtimes.items()}
    return surface


def overhead_gap_surface(app_name: str = "Sample", n_nodes: int = 16,
                         values: Sequence[float] = (25.0, 50.0, 100.0),
                         scale: float = 1.0,
                         seed: int = 0) -> SensitivitySurface:
    """The headline surface: added overhead × added gap."""
    return sensitivity_surface(app_name, n_nodes, "overhead", values,
                               "gap", values, scale=scale, seed=seed)
