"""CSV export of experiment results.

Every experiment object exposes ``rows()`` (a list of flat dicts) or a
matrix; these helpers write them as CSV files so results can be loaded
into any plotting tool.  Only the standard library is used.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, List, Sequence, Union

import numpy as np

__all__ = ["write_rows_csv", "write_matrix_csv", "write_series_csv"]


def write_rows_csv(rows: Sequence[dict],
                   path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write dict rows to CSV; columns follow the first row's keys,
    with any extra keys from later rows appended."""
    path = pathlib.Path(path)
    if not rows:
        path.write_text("")
        return path
    columns: List[str] = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns,
                                restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def write_matrix_csv(matrix: np.ndarray,
                     path: Union[str, pathlib.Path],
                     label: str = "sender\\receiver") -> pathlib.Path:
    """Write a P×P balance matrix (Figure 4) with rank headers."""
    path = pathlib.Path(path)
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got {matrix.shape}")
    n_rows, n_cols = matrix.shape
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([label] + [str(j) for j in range(n_cols)])
        for i in range(n_rows):
            writer.writerow([str(i)] + [repr(float(v))
                                        for v in matrix[i]])
    return path


def write_series_csv(series: Dict[str, List[tuple]],
                     path: Union[str, pathlib.Path],
                     x_label: str = "x") -> pathlib.Path:
    """Write figure series ({label: [(x, y), ...]}) as long-form CSV
    with columns (series, x, y)."""
    path = pathlib.Path(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", x_label, "slowdown"])
        for label, points in series.items():
            for x, y in points:
                writer.writerow([label, repr(float(x)),
                                 repr(float(y))])
    return path
