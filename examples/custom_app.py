#!/usr/bin/env python3
"""Writing your own SPMD application against the public API.

Implements a small iterative stencil (1-D Jacobi heat diffusion) from
scratch on the Split-C-style global address space: distributed arrays,
pipelined boundary writes, barriers, and a global reduction for the
convergence test.  Then runs it at two machine design points to see
which LogGP parameter it cares about.

Run:  python examples/custom_app.py
"""

import numpy as np

from repro import Cluster, TuningKnobs
from repro.apps.base import Application


class HeatDiffusion(Application):
    """1-D Jacobi iteration with ghost-cell exchange per step."""

    name = "Heat-1D"

    def __init__(self, cells_per_proc: int = 64, steps: int = 20):
        self.cells_per_proc = cells_per_proc
        self.steps = steps
        self._n_nodes = 0

    def configure(self, n_nodes: int, seed: int) -> None:
        self._n_nodes = n_nodes

    def setup_rank(self, proc):
        total = self._n_nodes * self.cells_per_proc
        grid = proc.allocate(total, name="heat", dtype="float64",
                             item_bytes=8)
        # A hot spike in the middle of the global rod.
        local = proc.local(grid)
        start = grid.local_start(proc.rank)
        for i in range(len(local)):
            local[i] = 100.0 if start + i == total // 2 else 0.0
        proc.state["heat"] = {"grid": grid}
        return
        yield  # pragma: no cover

    def run_rank(self, proc):
        grid = proc.state["heat"]["grid"]
        total = grid.length
        start = grid.local_start(proc.rank)
        local = proc.local(grid)
        n = len(local)
        for _step in range(self.steps):
            # Exchange boundary cells with neighbours (remote writes of
            # my edge values into their ghost slots — modelled here as
            # blocking reads of the neighbours' edges for simplicity).
            left = 0.0
            right = 0.0
            if start > 0:
                left = yield from proc.read(grid, start - 1)
            if start + n < total:
                right = yield from proc.read(grid, start + n)
            # Local relaxation sweep.
            old = local.copy()
            padded = np.concatenate(([left], old, [right]))
            local[:] = 0.25 * padded[:-2] + 0.5 * old \
                + 0.25 * padded[2:]
            yield from proc.compute(proc.cost.ops(4 * n))
            yield from proc.barrier()
        # Global heat must be conserved: check with a reduction.
        heat = float(proc.local(grid).sum())
        total_heat = yield from proc.allreduce(heat, lambda a, b: a + b)
        proc.state["heat"]["total"] = total_heat

    def finalize(self, procs):
        totals = {round(p.state["heat"]["total"], 6) for p in procs}
        assert len(totals) == 1, "ranks disagree on total heat"
        return totals.pop()


def main() -> None:
    app = HeatDiffusion(cells_per_proc=64, steps=20)
    base = Cluster(n_nodes=8, seed=1)

    baseline = base.run(app)
    print(f"baseline:        {baseline.runtime_s * 1e3:8.2f} ms, "
          f"total heat = {baseline.output:.3f}")

    # This app does one blocking read per neighbour per step and sends
    # no bulk data: round-trip latency should matter; bulk bandwidth
    # should be completely irrelevant.
    from repro.network.loggp import LogGPParams
    slow_latency = base.with_knobs(TuningKnobs.added_latency(100.0))
    slow_bulk = base.with_knobs(TuningKnobs.bulk_bandwidth(
        1.0, LogGPParams.berkeley_now()))
    for label, cluster in (("+100us latency", slow_latency),
                           ("1 MB/s bulk", slow_bulk)):
        result = cluster.run(app)
        print(f"{label:15s}: {result.runtime_s * 1e3:8.2f} ms  "
              f"(slowdown {result.slowdown_vs(baseline):.2f}x)")

    print("\nA blocking-read stencil is round-trip bound (like the"
          "\npaper's EM3D(read)) and blind to bulk bandwidth (like"
          "\nevery short-message app in Figure 8).")


if __name__ == "__main__":
    main()
