#!/usr/bin/env python3
"""Tuning collective algorithms with the LogGP cost model.

Walks the full `repro.coll` tuning story on one machine:

1. price every registered algorithm for a bulk broadcast with the
   closed-form model and show the predicted crossover as the payload
   grows;
2. measure the same algorithms in the simulator and compare picks;
3. calibrate a measured decision table and run an application-level
   sweep under each policy (fixed / model / measured), showing where
   the tuned schedules pull ahead as bulk bandwidth collapses.

Run:  python examples/collective_tuning.py          (about a minute)
      python examples/collective_tuning.py --fast   (smaller grid)
"""

import sys

from repro.am.tuning import TuningKnobs
from repro.cluster.machine import Cluster
from repro.coll import CollConfig, build_decision_table
from repro.coll.algorithms import eligible_algorithms
from repro.coll.bench import CollectiveBench
from repro.coll.model import predicted_ranking
from repro.harness.report import render_table
from repro.network.loggp import LogGPParams

N_NODES = 16
#: A wire 38x slower than the baseline Myrinet: where crossovers live.
SLOW_MB_S = 1.0


def predicted_crossover(params, knobs, sizes):
    print(f"-- model: broadcast on {N_NODES} nodes,"
          f" bulk wire at {SLOW_MB_S} MB/s --")
    rows = []
    for size in sizes:
        ranking = predicted_ranking("broadcast", N_NODES, size, params,
                                    knobs, bulk=size > 64)
        rows.append({"bytes": size,
                     "model pick": ranking[0][1],
                     "predicted us": round(ranking[0][0], 1),
                     "runner-up": ranking[1][1],
                     "margin": round(ranking[1][0] / ranking[0][0], 2)})
    print(render_table(rows, title="predicted cheapest algorithm"))
    print()


def measured_picks(knobs, sizes, iterations):
    print("-- simulator: same grid, measured --")
    rows = []
    for size in sizes:
        times = {}
        for algo in eligible_algorithms("broadcast"):
            bench = CollectiveBench("broadcast", algo=algo, size=size,
                                    bulk=size > 64, iterations=iterations)
            result = Cluster(N_NODES, knobs=knobs, seed=9).run(bench)
            times[algo] = result.runtime_us
        best = min(times, key=times.get)
        rows.append({"bytes": size, "measured best": best,
                     **{algo: round(us, 1)
                        for algo, us in sorted(times.items())}})
    print(render_table(rows, title="measured runtimes (us)"))
    print()


def policy_shootout(params, knobs, iterations):
    print("-- policies: allreduce microbenchmark under each tuner --")
    table = build_decision_table(
        n_ranks=N_NODES, primitives=("allreduce",), knobs=knobs,
        iterations=iterations, seed=5)
    configs = [("fixed (legacy)", None),
               ("model", CollConfig(policy="model")),
               ("measured", CollConfig(policy="measured", table=table))]
    rows = []
    for label, coll in configs:
        bench = CollectiveBench("allreduce", size=65536, bulk=True,
                                iterations=iterations)
        result = Cluster(N_NODES, knobs=knobs, seed=9, coll=coll).run(bench)
        dispatched = sorted(key.split("/", 1)[1]
                            for key in result.stats.collective_calls
                            if key.startswith("allreduce/"))
        rows.append({"policy": label,
                     "runtime us": round(result.runtime_us, 1),
                     "dispatched": ",".join(dispatched)})
    print(render_table(rows, title="64 KiB allreduce, slow bulk wire"))
    baseline = rows[0]["runtime us"]
    tuned = min(row["runtime us"] for row in rows[1:])
    print(f"tuned vs legacy: {baseline / tuned:.2f}x faster")


def main() -> None:
    fast = "--fast" in sys.argv
    sizes = (32, 4096, 65536) if fast else (32, 1024, 16384, 65536)
    iterations = 2 if fast else 4

    params = LogGPParams.berkeley_now()
    knobs = TuningKnobs.bulk_bandwidth(SLOW_MB_S, params)

    predicted_crossover(params, knobs, sizes)
    measured_picks(knobs, sizes, iterations)
    policy_shootout(params, knobs, iterations)


if __name__ == "__main__":
    main()
