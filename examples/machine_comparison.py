#!/usr/bin/env python3
"""Machine design points, and the paper's closing trade-off.

Part 1 runs one application across the machine presets of Table 1
(Berkeley NOW, Intel Paragon, Meiko CS-2) plus a TCP/IP-LAN design
point, showing how far cluster communication had come by 1997.

Part 2 reproduces the conclusion of Section 5.5: "rather than making a
significant investment to double a machine's processing capacity, the
investment may be better directed toward improving the communication
system."  We compare doubling CPU speed against halving the
communication overhead for a frequently communicating application.

Run:  python examples/machine_comparison.py
"""

from repro import Cluster, CostModel, TuningKnobs
from repro.apps import SampleSort
from repro.cluster.presets import MACHINE_PRESETS
from repro.harness.report import render_table
from repro.network.loggp import LogGPParams


def part1_machines() -> None:
    app = SampleSort(keys_per_proc=512)
    rows = []
    for name, params in MACHINE_PRESETS.items():
        cluster = Cluster(n_nodes=16, params=params, seed=7)
        result = cluster.run(app)
        rows.append({
            "machine": name,
            "o (us)": round(params.overhead, 1),
            "g (us)": params.gap,
            "L (us)": params.latency,
            "runtime (ms)": round(result.runtime_s * 1000, 2),
        })
    print(render_table(rows, title="Sample sort across Table 1's "
                       "machines (16 nodes)"))
    print()


def part2_invest() -> None:
    app = SampleSort(keys_per_proc=512)
    now = LogGPParams.berkeley_now()
    base = Cluster(n_nodes=16, params=now, seed=7)
    baseline = base.run(app)

    # Option A: double the processor speed (halve every compute cost).
    fast_cpu = Cluster(n_nodes=16, params=now, seed=7,
                       cost=CostModel().scaled(0.5))
    # Option B: halve the communication costs (overhead AND the
    # per-message gap — halving o alone just moves the bottleneck to
    # the NIC, a LogGP effect worth seeing for yourself).
    fast_net = Cluster(
        n_nodes=16, seed=7,
        params=now.with_changes(send_overhead=now.send_overhead / 2,
                                recv_overhead=now.recv_overhead / 2,
                                gap=now.gap / 2))

    rows = [{"design": "baseline NOW",
             "runtime (ms)": round(baseline.runtime_s * 1000, 2),
             "speedup": 1.0}]
    for label, cluster in (("2x faster CPUs", fast_cpu),
                           ("1/2 o and g", fast_net)):
        result = cluster.run(app)
        rows.append({
            "design": label,
            "runtime (ms)": round(result.runtime_s * 1000, 2),
            "speedup": round(baseline.runtime_us / result.runtime_us, 2),
        })
    print(render_table(rows, title="where to invest (Section 5.5)"))
    print("\nFor a communication-intensive app, halving the "
          "communication costs\nbuys more than doubling the CPU.")


def main() -> None:
    part1_machines()
    part2_invest()


if __name__ == "__main__":
    main()
