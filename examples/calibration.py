#!/usr/bin/env python3
"""Calibrating the apparatus: Figure 3 and Table 2 from your terminal.

Reproduces the paper's Section 3.3 methodology:

* the LogP *signature* — average message initiation interval vs burst
  size for several inter-message compute delays Δ — from which o_send,
  o_recv, g and L are read off;
* the calibration table — dial each parameter, re-measure all of them,
  and confirm the dials are independent (including the two couplings
  the paper documents).

Run:  python examples/calibration.py
"""

from repro.calibrate import (calibrate_bulk_bandwidth, logp_signature,
                             measure_parameters, round_trip_time)
from repro.calibrate.calibration import (calibration_table,
                                         render_calibration)
from repro.am.tuning import TuningKnobs
from repro.network.loggp import LogGPParams


def main() -> None:
    params = LogGPParams.berkeley_now()

    # Figure 3: the signature with the gap dialed to 14 us, as in the
    # paper's example plot.
    knobs = TuningKnobs.added_gap(14.0 - params.gap)
    signature = logp_signature(params, knobs, deltas=(0.0, 10.0))
    print(signature.render())
    rtt = round_trip_time(params, knobs)
    print(f"round trip time = {rtt:.1f} us "
          "(the paper's figure annotates 21 us)\n")

    # What the microbenchmarks recover at baseline.
    measured = measure_parameters(params)
    print("baseline extraction:", measured.as_row())
    print(f"  o_send = {measured.send_overhead:.2f} us, "
          f"o_recv = {measured.recv_overhead:.2f} us\n")

    # Bulk bandwidth saturation (how the paper calibrates G).
    bulk = calibrate_bulk_bandwidth(params)
    print("bulk bandwidth vs message size:")
    for size, mb in zip(bulk.sizes, bulk.bandwidths_mb_s):
        bar = "#" * int(mb)
        print(f"  {size:6d} B  {mb:6.1f} MB/s  {bar}")
    print(f"  saturated: {bulk.saturated_mb_s:.1f} MB/s "
          f"(machine: {params.bulk_bandwidth_mb_s:.0f})\n")

    # Table 2, abridged.
    print(render_calibration(calibration_table(
        desired_o=(2.9, 12.9, 52.9, 102.9),
        desired_g=(5.8, 15.0, 55.0, 105.0),
        desired_L=(5.0, 15.0, 55.0, 105.0))))
    print("\nNote the two couplings the paper itself reports: large o"
          "\nmakes the processor the gap bottleneck (g -> 2o), and"
          "\nlarge L throttles the fixed window (g -> RTT/8).")


if __name__ == "__main__":
    main()
