#!/usr/bin/env python3
"""Dissecting message latency with the built-in tracer.

Every message in the simulator passes four observable points — host
send, NIC injection, NIC delivery, host handling — which decompose its
latency into the LogGP components: transmit queueing (gap/backlog),
wire time (L, plus the delay queue when dialed), and receive queueing
(how long the polling host left it waiting).

This example traces EM3D(read) under three machines and shows where the
microseconds go — and how the *same* added 50 µs lands in a different
component depending on which dial produced it.

Run:  python examples/message_anatomy.py
"""

from repro import Cluster, TuningKnobs
from repro.apps import EM3D
from repro.harness.report import render_table
from repro.instruments.trace import MessageTracer


def trace_run(knobs: TuningKnobs) -> dict:
    tracer = MessageTracer()
    cluster = Cluster(n_nodes=8, seed=11, knobs=knobs)
    cluster.run(EM3D(nodes_per_proc=10, steps=2, variant="read"),
                tracer=tracer)
    breakdown = tracer.component_breakdown()
    stats = tracer.latency_stats()
    return {
        "machine": knobs.describe(),
        "messages": stats["count"],
        "mean total (us)": round(stats["mean_us"], 1),
        "tx queueing": round(breakdown["tx_queueing"], 1),
        "wire": round(breakdown["wire"], 1),
        "rx queueing": round(breakdown["rx_queueing"], 1),
    }


def main() -> None:
    rows = [
        trace_run(TuningKnobs()),
        trace_run(TuningKnobs.added_latency(50.0)),
        trace_run(TuningKnobs.added_gap(50.0)),
        trace_run(TuningKnobs.added_occupancy(50.0)),
    ]
    print(render_table(rows, title="where a message's time goes "
                                   "(EM3D(read), 8 nodes)"))
    print("""
Reading the table:
 * +L lands squarely in the wire stage (the NIC delay queue);
 * +g shows up as transmit queueing - packets wait behind the
   injection stall;
 * +occupancy splits between the transmit path and the wire stage
   (the receive context serialises before deposit).
The host-side o does not appear here at all: it is charged to the
*processor*, which is exactly why the paper treats o and L/g/G as
independent axes.""")


if __name__ == "__main__":
    main()
