#!/usr/bin/env python3
"""A miniature version of the paper's whole evaluation (Section 5).

Sweeps each of the four LogGP dials over a subset of the benchmark
suite and prints slowdown curves as ASCII plots, reproducing the
qualitative content of Figures 5-8:

* overhead hurts everyone, linearly, frequent communicators most;
* gap hurts only the frequent communicators (bursty traffic);
* latency hurts only the read-based applications;
* bulk bandwidth barely matters until it drops below ~15 MB/s.

Run:  python examples/sensitivity_study.py          (a few minutes)
      python examples/sensitivity_study.py --fast   (smaller inputs)
"""

import sys

from repro.harness.experiments import (figure5_overhead, figure6_gap,
                                       figure7_latency, figure8_bulk)
from repro.harness.report import render_table

APPS = ["Radix", "EM3D(write)", "EM3D(read)", "Sample", "NOW-sort",
        "Radb"]
N_NODES = 16


def summarize(figure) -> None:
    print(figure.render())
    rows = [{"app": name,
             "max slowdown": round(figure.max_slowdown(name), 2)}
            for name in figure.sweeps]
    rows.sort(key=lambda r: -r["max slowdown"])
    print(render_table(rows, title="worst-case slowdowns"))
    print()


def main() -> None:
    scale = 0.25 if "--fast" in sys.argv else 0.5

    print("=" * 72)
    summarize(figure5_overhead(
        n_nodes=N_NODES, scale=scale, names=APPS,
        overheads=(2.9, 12.9, 52.9, 102.9)))

    print("=" * 72)
    summarize(figure6_gap(
        n_nodes=N_NODES, scale=scale, names=APPS,
        gaps=(5.8, 15.0, 55.0, 105.0)))

    print("=" * 72)
    summarize(figure7_latency(
        n_nodes=N_NODES, scale=scale, names=APPS,
        latencies=(5.0, 15.0, 55.0, 105.0)))

    print("=" * 72)
    summarize(figure8_bulk(
        n_nodes=N_NODES, scale=scale, names=APPS,
        bandwidths=(38.0, 15.0, 5.5, 1.0)))

    print("Compare with the paper: overhead >> gap >> latency ~ "
          "bulk bandwidth.")


if __name__ == "__main__":
    main()
