#!/usr/bin/env python3
"""Quickstart: build a cluster, dial the network, watch an app react.

This walks the library's core loop in under a minute:

1. build a simulated Berkeley-NOW-class cluster;
2. run one application (radix sort) and look at its runtime and
   communication profile (a Table-4-style row);
3. dial the communication overhead up to TCP/IP-stack territory
   (~100 µs) and measure the slowdown — the paper's headline effect.

Run:  python examples/quickstart.py
"""

from repro import Cluster, LogGPParams, TuningKnobs
from repro.apps import RadixSort
from repro.harness.report import render_table


def main() -> None:
    params = LogGPParams.berkeley_now()
    print(f"Machine: {params.describe()}")
    print(f"Model round trip: {params.round_trip_time():.1f} us "
          "(the paper's Figure 3 annotates 21 us)\n")

    # A 16-node cluster with the unmodified communication layer.
    cluster = Cluster(n_nodes=16, params=params, seed=42)
    app = RadixSort(keys_per_proc=512)

    baseline = cluster.run(app)
    print(f"Radix sort of {16 * 512} keys on 16 nodes: "
          f"{baseline.runtime_s * 1000:.2f} ms simulated")
    print(render_table([baseline.summary().as_row()],
                       title="communication profile"))
    print()

    # Now dial the overhead from 2.9 us up to ~103 us (a mid-90s
    # TCP/IP stack) and watch the same program.
    rows = []
    for added in (0.0, 10.0, 50.0, 100.0):
        dialed = cluster.with_knobs(TuningKnobs.added_overhead(added))
        result = dialed.run(app)
        rows.append({
            "overhead (us)": round(params.overhead + added, 1),
            "runtime (ms)": round(result.runtime_s * 1000, 2),
            "slowdown": round(result.slowdown_vs(baseline), 2),
        })
    print(render_table(rows, title="sensitivity to overhead"))
    print("\nLinear in overhead, exactly as the paper's Figure 5.")


if __name__ == "__main__":
    main()
