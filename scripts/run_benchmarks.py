#!/usr/bin/env python3
"""Measure event-kernel throughput and emit machine-readable BENCH JSON.

Runs the two storm workloads from ``benchmarks/test_engine_throughput``
on each scheduling tier and writes per-tier events/second plus the
speedup matrix to a committed JSON trajectory file (``BENCH_6.json``):

* ``naive``    — the heap engine driven one ``step()`` call per event:
  the pre-optimisation kernel shape (no hoisting, per-event dispatch).
* ``heap``     — the reference engine's inlined ``run()`` loop.
* ``calendar`` — the raw-speed tier (``repro.sim.fastengine``).

Methodology (the box is noisy, so all of this matters): every
measurement runs in its own freshly forked interpreter; tiers are
interleaved at the process level so thermal/background drift hits all
tiers equally; each process does one untimed warmup run, then ``gc``
collects before each timed iteration (gc stays *enabled* during timing
— that is the production configuration); the reported figure is the
best iteration across all processes.  Event counts are asserted
identical across tiers — the tiers are bit-identical by contract, so a
count mismatch fails the whole benchmark run.

Usage:
    python scripts/run_benchmarks.py [--out BENCH_6.json] [--procs 3]
        [--inner 7] [--tiers naive,heap,calendar]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
_SRC = os.path.join(_ROOT, "src")
_BENCH = os.path.join(_ROOT, "benchmarks")

STORMS = ("event_storm", "am_storm")
TIERS = ("naive", "heap", "calendar")


# ---------------------------------------------------------------------------
# Worker: one process, one (tier, storm), N timed iterations.
# ---------------------------------------------------------------------------

def _naive_run(self, until=None, stop_event=None):
    """The pre-inlining kernel: one ``step()`` method call per event.

    Together with ``_naive_timeout`` and ``_naive_resume`` below this
    reconstructs the kernel before the ARCHITECTURE §7 hot-path work
    (per-event dispatch, generic event construction, raising property
    reads) — the denominator of the committed speedup trajectory.
    """
    if stop_event is not None:
        if stop_event.processed:
            if stop_event.ok:
                return stop_event.value
            raise stop_event.value
        stop_event._defused = True
        stop_event.add_callback(self._stop_callback)
    while self._heap:
        if until is not None and self._heap[0][0] > until:
            self._now = until
            break
        self.step()
        if self._stop_requested is not None:
            stopped = self._stop_requested
            self._stop_requested = None
            if stopped._ok is False:
                raise stopped.value
            return stopped.value
    if stop_event is not None:
        raise TimeoutError(
            f"simulation ended at t={self._now} before "
            f"{stop_event!r} triggered")
    if until is not None and self._now < until:
        self._now = until
    return None


def _naive_timeout(self, delay, value=None):
    """Timeout via the generic constructor (pre-§7 construction path)."""
    from repro.sim.events import Timeout
    return Timeout(self, delay, value)


def _naive_resume(self, event):
    """Process wakeup through the raising ``ok``/``value`` properties
    instead of direct slot reads (the pre-§7 resume path)."""
    if event is not self._waiting_on:
        return
    self._waiting_on = None
    try:
        if event.ok:
            target = self._generator.send(event.value)
        else:
            event._defused = True
            target = self._generator.throw(event.value)
    except StopIteration as stop:
        self.succeed(stop.value)
        return
    except BaseException as exc:  # noqa: BLE001
        # simlint: disable=broad-except - mirrors Process._resume.
        self.fail(exc)
        return
    self._wait_on(target)


def _worker(tier: str, storm: str, inner: int) -> None:
    import gc
    import time

    sys.path.insert(0, _SRC)
    sys.path.insert(0, _BENCH)

    from repro.sim import engine as engine_mod
    from repro.sim import set_default_engine
    from repro.sim.process import Process

    if tier == "calendar":
        set_default_engine("calendar")
    elif tier == "naive":
        engine_mod.Simulator.run = _naive_run
        engine_mod.Simulator.timeout = _naive_timeout
        Process._resume = _naive_resume
    elif tier != "heap":
        raise SystemExit(f"unknown tier {tier!r}")

    from test_engine_throughput import run_am_storm, run_event_storm
    run = run_event_storm if storm == "event_storm" else run_am_storm

    events = run()  # untimed warmup
    best = None
    for _ in range(inner):
        gc.collect()
        start = time.perf_counter()
        got = run()
        elapsed = time.perf_counter() - start
        assert got == events, f"event count drifted: {got} != {events}"
        if best is None or elapsed < best:
            best = elapsed
    print(json.dumps({"events": events, "best_seconds": best}))


# ---------------------------------------------------------------------------
# Parent: interleave worker processes, aggregate, emit JSON.
# ---------------------------------------------------------------------------

def _spawn(tier: str, storm: str, inner: int) -> dict:
    out = subprocess.run(
        [sys.executable, os.path.abspath(__file__),
         "--worker", tier, storm, "--inner", str(inner)],
        capture_output=True, text=True, cwd=_ROOT)
    if out.returncode != 0:
        raise RuntimeError(
            f"worker {tier}/{storm} failed:\n{out.stderr}")
    return json.loads(out.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default=os.path.join(_ROOT,
                                                      "BENCH_6.json"))
    parser.add_argument("--procs", type=int, default=3,
                        help="worker processes per (tier, storm) pair")
    parser.add_argument("--inner", type=int, default=7,
                        help="timed iterations inside each worker")
    parser.add_argument("--tiers", default=",".join(TIERS))
    parser.add_argument("--worker", nargs=2, metavar=("TIER", "STORM"),
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker:
        _worker(args.worker[0], args.worker[1], args.inner)
        return 0

    tiers = tuple(t.strip() for t in args.tiers.split(",") if t.strip())
    samples = {(tier, storm): [] for tier in tiers for storm in STORMS}
    for proc in range(args.procs):
        # Interleaved: every tier measures under the same box
        # conditions within each pass.
        for storm in STORMS:
            for tier in tiers:
                result = _spawn(tier, storm, args.inner)
                samples[(tier, storm)].append(result)
                rate = result["events"] / result["best_seconds"]
                print(f"pass {proc + 1}/{args.procs} {storm:11s} "
                      f"{tier:8s} {rate:10.0f} events/s", flush=True)

    report = {
        "schema": "repro-bench-v1",
        "workloads": "benchmarks/test_engine_throughput.py",
        "method": {
            "isolation": "one forked interpreter per measurement, "
                         "tiers interleaved per pass",
            "passes": args.procs,
            "iterations_per_pass": args.inner,
            "statistic": "best iteration over all passes",
            "gc": "enabled during timing, collected before each "
                  "iteration",
            "python": sys.version.split()[0],
        },
        "tiers": {
            "naive": "heap engine with the pre-optimisation kernel "
                     "shape reconstructed: step()-per-event dispatch, "
                     "generic Timeout construction, property-based "
                     "process resume",
            "heap": "reference engine, inlined run() loop",
            "calendar": "raw-speed tier (repro.sim.fastengine)",
        },
        "storms": {},
    }
    for storm in STORMS:
        entry = {"tiers": {}}
        counts = set()
        for tier in tiers:
            runs = samples[(tier, storm)]
            counts.update(run["events"] for run in runs)
            best = min(run["best_seconds"] for run in runs)
            entry["tiers"][tier] = {
                "events": runs[0]["events"],
                "best_seconds": round(best, 6),
                "events_per_s": round(runs[0]["events"] / best),
                "per_pass_events_per_s": [
                    round(run["events"] / run["best_seconds"])
                    for run in runs],
            }
        if len(counts) != 1:
            raise SystemExit(
                f"bit-identity violated on {storm}: event counts "
                f"diverged across tiers: {sorted(counts)}")
        entry["events"] = counts.pop()
        speedups = {}
        for base in ("naive", "heap"):
            if base not in entry["tiers"]:
                continue
            base_rate = entry["tiers"][base]["events_per_s"]
            speedups[f"vs_{base}"] = {
                tier: round(entry["tiers"][tier]["events_per_s"]
                            / base_rate, 2)
                for tier in tiers}
        entry["speedup"] = speedups
        report["storms"][storm] = entry

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {args.out}")
    for storm, entry in report["storms"].items():
        summary = ", ".join(
            f"{tier} {entry['tiers'][tier]['events_per_s']:,}/s"
            for tier in tiers)
        print(f"  {storm}: {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
