#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every artifact.

Runs the complete evaluation at the benchmark scale and writes a
markdown report pairing each of the paper's headline numbers with this
reproduction's measurements.

The artifacts are independent, so they are computed upfront — fanned
across ``--jobs`` worker processes — and rendered afterwards.  Completed
sweep points are memoised in the on-disk run cache (``~/.cache/repro``
unless ``REPRO_CACHE_DIR`` / ``--cache-dir`` says otherwise), so
re-running the script only simulates configurations it has never seen.

Campaign mode (``--campaign NAME --store DB``) instead drives the
sensitivity grid through the resumable campaign manager: points land in
a sqlite result store as they finish, a killed run resumes exactly
where it stopped, and the figure artifacts are generated *from the
store* — no point is ever simulated twice.  A per-campaign
``BENCH_*.json`` records points/sec, store hits, and resume statistics.

Usage:
    python scripts/generate_experiments.py [--scale 0.5] [--out EXPERIMENTS.md]
        [--jobs N] [--no-cache] [--cache-dir DIR] [--apps Radix,Sample,...]
        [--engine heap|calendar] [--profile]
    python scripts/generate_experiments.py --campaign nightly \\
        --store results.sqlite [--dials overhead,gap] [--bench-out B.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.calibrate import calibrate_bulk_bandwidth
from repro.harness import RunCache
from repro.harness.parallel import run_experiments_parallel
from repro.sim import ENGINES, set_default_engine


def _run_profiled(requests):
    """Run experiments serially, cProfiling ``execute_point`` calls.

    After each experiment completes, the top 25 cumulative-time entries
    collected from its sweep points are dumped to stderr and the
    profiler is reset, so each dump covers exactly one experiment.
    Experiments that never reach ``execute_point`` (pure calibration
    tables) produce no dump.
    """
    import cProfile
    import pstats

    from repro.harness import parallel

    box = {"profiler": cProfile.Profile()}
    original = parallel.execute_point

    def profiled(task):
        profiler = box["profiler"]
        profiler.enable()
        try:
            return original(task)
        finally:
            profiler.disable()

    parallel.execute_point = profiled
    try:
        results = []
        for name, kwargs in requests:
            results.append(
                run_experiments_parallel([(name, kwargs)], jobs=1)[0])
            if box["profiler"].getstats():
                print(f"--- profile: {name} "
                      "(execute_point, top 25 by cumulative time) ---",
                      file=sys.stderr)
                stats = pstats.Stats(box["profiler"], stream=sys.stderr)
                stats.sort_stats("cumulative").print_stats(25)
                box["profiler"] = cProfile.Profile()
        return results
    finally:
        parallel.execute_point = original


def fmt(value, digits=2):
    if value is None:
        return "N/A"
    return f"{value:.{digits}f}"


#: The reduced sensitivity grids the EXPERIMENTS report sweeps, dial →
#: value sequence (baseline first) — shared by the classic path and
#: campaign mode so their points are cache-compatible.
SWEEP_GRIDS = {
    "overhead": (2.9, 12.9, 52.9, 102.9),
    "gap": (5.8, 15.0, 55.0, 105.0),
    "latency": (5.0, 15.0, 55.0, 105.0),
    "bulk_mb_s": (38.0, 15.0, 10.0, 5.5, 1.0),
    "drop_rate": (0.0, 0.005, 0.02),
}


#: Dial → the 32-node simulated figure it is validated against in
#: :func:`predicted_sections` (classic results, no extra simulations).
PREDICTED_DIALS = ("overhead", "gap", "latency", "bulk_mb_s")


def predicted_sections(scale, selected, simulated_figures, seed=0):
    """The ``--predict`` report sections + the simcost BENCH payload.

    One *recording* per application (a single instrumented baseline
    simulation) predicts every machine-dial sweep analytically; the
    classic sections' already-simulated 32-node figures provide ground
    truth, so validation adds zero simulations.  Returns ``(lines,
    bench)`` where ``bench`` carries the simulations-avoided
    accounting written to ``BENCH_simcost.json``.
    """
    import statistics

    from repro.cost.predict import latency_tolerance, predict_sweep
    from repro.cost.recorder import record_run
    from repro.harness.experiments import SensitivityFigure
    from repro.harness.suite import suite_for

    out = []
    w = out.append
    graphs = {}
    for app in suite_for(32, scale=scale, names=selected):
        graph, _result = record_run(app, 32, seed=seed)
        graphs[app.name] = graph

    w("## Predicted sweeps — simcost (beyond the paper)\n")
    w("Each application was simulated **once** at the baseline with "
      "the dependency\nrecorder on; every dial sweep below is predicted "
      "by symbolic longest-path\nreplay of that one recorded DAG "
      "(`repro.cost`), then compared per point against\nthe simulated "
      "figures above.\n")

    medians = {}
    predicted_points = 0
    for dial in PREDICTED_DIALS:
        sim_figure = simulated_figures[dial]
        figure = SensitivityFigure(
            title=f"Predicted sensitivity to {dial} (32 nodes, simcost)",
            x_label=dial)
        errors = []
        rows = []
        for name, graph in graphs.items():
            predicted = predict_sweep(graph, dial, SWEEP_GRIDS[dial])
            figure.sweeps[name] = predicted
            predicted_points += len(predicted.points)
            sim_sweep = sim_figure.sweeps.get(name)
            if sim_sweep is None:
                continue
            pred_slow = predicted.slowdowns()
            sim_slow = sim_sweep.slowdowns()
            for value, pred, sim in zip(SWEEP_GRIDS[dial], pred_slow,
                                        sim_slow):
                err = None if sim is None else abs(pred - sim) / sim
                if err is not None:
                    errors.append(err)
                rows.append((name, value, sim, pred, err))
        medians[dial] = statistics.median(errors) if errors else None
        w(f"### Predicted figure — {dial}\n")
        w("```\n" + figure.render() + "\n```")
        w(f"| app | {dial} | simulated | predicted | rel err |")
        w("|---|---|---|---|---|")
        for name, value, sim, pred, err in rows:
            w(f"| {name} | {value:g} | {fmt(sim)} | {fmt(pred)} | "
              f"{fmt(err * 100, 1) + '%' if err is not None else 'N/A'} |")
        w(f"\nMedian relative error vs the simulated {dial} sweep: "
          f"{fmt(medians[dial] * 100, 1)}%.\n")

    w("### Latency tolerance — dial value at 2x predicted slowdown\n")
    w("| app | " + " | ".join(PREDICTED_DIALS) + " |")
    w("|---|" + "---|" * len(PREDICTED_DIALS))
    for name, graph in graphs.items():
        cells = []
        for dial in PREDICTED_DIALS:
            crossing = latency_tolerance(graph, dial, threshold=2.0)
            cells.append("never" if crossing is None
                         else f"{crossing:.1f}")
        w(f"| {name} | " + " | ".join(cells) + " |")
    w("\nEach cell is where the app crosses 2x slowdown (µs for "
      "overhead/gap/latency,\nMB/s for bulk — bandwidth *falls* to the "
      "crossing); `never` means the dial never\ndoubles the runtime "
      "within the searched range.  Larger is more tolerant on the\n"
      "time dials; smaller is more tolerant on bandwidth.\n")

    recordings = len(graphs)
    classic = recordings * sum(len(SWEEP_GRIDS[d])
                               for d in PREDICTED_DIALS)
    bench = {
        "schema": "repro-simcost-bench-v1",
        "n_nodes": 32,
        "scale": scale,
        "recordings": recordings,
        "predicted_points": predicted_points,
        "simulations_classic": classic,
        "simulations_avoided_ratio": (round(classic / recordings, 2)
                                      if recordings else None),
        "median_rel_err": {
            dial: (None if med is None else round(med, 4))
            for dial, med in medians.items()},
    }
    w(f"Simulations-avoided accounting: {recordings} recordings stand "
      f"in for the {classic}\nsimulations of the classic four-dial "
      f"sweep path — a {bench['simulations_avoided_ratio']}x "
      f"reduction\n(`BENCH_simcost.json`).\n")
    return out, bench


def run_campaign_mode(args, cache, selected) -> int:
    """Drive the sensitivity grid through the resumable campaign manager.

    Two sub-campaigns mirror the classic report's sweep sections:
    ``<name>/p16`` runs the overhead dial at 16 nodes (Figure 5a) and
    ``<name>/p32`` runs every selected dial at 32 nodes (Figures
    5b-9).  Both resume from ``--store``; artifacts are then generated
    from the store alone, so an interrupted-and-resumed invocation
    writes byte-identical output to an uninterrupted one.
    """
    from repro.apps import SUITE_ORDER
    from repro.harness.campaign import (CampaignSpec, _merge_reports,
                                        render_campaign, run_campaign)
    from repro.harness.store import ResultStore

    apps = tuple(selected) if selected is not None else SUITE_ORDER
    dials = [d.strip() for d in args.dials.split(",") if d.strip()]
    unknown = [d for d in dials if d not in SWEEP_GRIDS]
    if unknown:
        print(f"unknown dials {unknown}; one of {sorted(SWEEP_GRIDS)}",
              file=sys.stderr)
        return 2
    specs = []
    if "overhead" in dials:
        specs.append(CampaignSpec(
            name=f"{args.campaign}/p16", apps=apps, node_counts=(16,),
            dials=(("overhead", SWEEP_GRIDS["overhead"]),),
            scale=args.scale, engine=args.engine))
    specs.append(CampaignSpec(
        name=f"{args.campaign}/p32", apps=apps, node_counts=(32,),
        dials=tuple((dial, SWEEP_GRIDS[dial]) for dial in dials),
        scale=args.scale, engine=args.engine))

    with ResultStore(args.store) as store:
        reports = [run_campaign(spec, store, cache=cache,
                                jobs=max(1, args.jobs), progress=print)
                   for spec in specs]
        report = _merge_reports(args.campaign, reports)
        text = render_campaign(specs, store)
        print(store.describe())

    out = pathlib.Path(args.out)
    out.write_text(text)
    bench_path = pathlib.Path(args.bench_out) if args.bench_out else \
        out.parent / f"BENCH_campaign_{args.campaign.replace('/', '_')}.json"
    bench_path.write_text(
        json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
    message = f"wrote {out} and {bench_path} [{report.describe()}]"
    if cache is not None:
        message += f" [{cache.describe()}]"
    print(message)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the experiment fan-out "
                        "(default 1: serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk run cache")
    parser.add_argument("--cache-dir", default=None,
                        help="run cache directory (default ~/.cache/repro "
                        "or $REPRO_CACHE_DIR)")
    parser.add_argument("--apps", default=None,
                        help="comma-separated subset of Table 3 app names "
                        "(reduced grid for smoke runs)")
    parser.add_argument("--engine", default=None,
                        choices=(*ENGINES, "fast"),
                        help="Simulator scheduling engine for every run; "
                        "engines are bit-identical, so the report and the "
                        "run-cache keys do not depend on this")
    parser.add_argument("--predict", action="store_true",
                        help="append simcost predicted-sweep sections: "
                        "record one instrumented run per app, predict "
                        "all four machine dials, validate per point "
                        "against the simulated figures, and write "
                        "BENCH_simcost.json")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile execute_point and dump the top 25 "
                        "cumulative entries per experiment to stderr "
                        "(forces --jobs 1)")
    parser.add_argument("--campaign", default=None, metavar="NAME",
                        help="run the sensitivity grid as a resumable "
                        "campaign of this name and build the artifacts "
                        "from the result store (needs --store)")
    parser.add_argument("--store", default=None,
                        help="sqlite result store for --campaign")
    parser.add_argument("--dials", default="overhead,gap,latency,"
                        "bulk_mb_s,drop_rate",
                        help="comma-separated dials for --campaign "
                        "(default: all five)")
    parser.add_argument("--bench-out", default=None,
                        help="--campaign: path for the BENCH JSON "
                        "(default BENCH_campaign_<name>.json next to "
                        "--out)")
    args = parser.parse_args(argv)
    if args.engine is not None:
        # Before any pools: forked sweep workers inherit the default.
        set_default_engine(args.engine)
    if args.profile and args.jobs != 1:
        print("--profile runs in-process; forcing --jobs 1",
              file=sys.stderr)
        args.jobs = 1
    scale = args.scale
    cache = None if args.no_cache else RunCache(args.cache_dir)
    selected = None if args.apps is None else \
        [name.strip() for name in args.apps.split(",") if name.strip()]

    if args.campaign is not None:
        if args.store is None:
            parser.error("--campaign needs --store")
        return run_campaign_mode(args, cache, selected)

    def pick(*names):
        """Intersect a hard-coded app list with the --apps selection."""
        if selected is None:
            return list(names)
        return [name for name in names if name in selected]

    started = time.time()

    # Sweep-based experiments consult/extend the run cache; with an
    # experiment-level pool active, inner sweeps stay serial (jobs=1)
    # to avoid nested pools.
    sweep_kwargs = {"names": selected, "cache": cache}
    overheads = SWEEP_GRIDS["overhead"]
    gaps = SWEEP_GRIDS["gap"]
    latencies = SWEEP_GRIDS["latency"]
    bandwidths = SWEEP_GRIDS["bulk_mb_s"]
    drop_rates = SWEEP_GRIDS["drop_rate"]
    requests = [
        ("table1_baseline_params", {}),
        ("figure3_signature", {"desired_gap": 14.0}),
        ("table2_calibration", {"desired_o": (2.9, 12.9, 52.9, 102.9),
                                "desired_g": (5.8, 15.0, 55.0, 105.0),
                                "desired_L": (5.0, 15.0, 55.0, 105.0)}),
        ("table3_baseline_runtimes", {"node_counts": (16, 32),
                                      "scale": scale, "names": selected}),
        ("table4_comm_summary", {"n_nodes": 32, "scale": scale,
                                 "names": selected}),
        ("figure4_balance", {"n_nodes": 32, "scale": scale,
                             "names": pick("Radix", "EM3D(write)",
                                           "Sample", "NOW-sort")}),
        ("figure5_overhead", {"n_nodes": 16, "scale": scale,
                              "overheads": overheads, **sweep_kwargs}),
        ("figure5_overhead", {"n_nodes": 32, "scale": scale,
                              "overheads": overheads, **sweep_kwargs}),
        ("table5_overhead_model", {"n_nodes": 32, "scale": scale,
                                   "overheads": overheads, "cache": cache,
                                   "names": pick("Radix", "EM3D(write)",
                                                 "Sample", "NOW-sort",
                                                 "Radb")}),
        ("figure6_gap", {"n_nodes": 32, "scale": scale, "gaps": gaps,
                         **sweep_kwargs}),
        ("table6_gap_model", {"n_nodes": 32, "scale": scale, "gaps": gaps,
                              "cache": cache,
                              "names": pick("Radix", "EM3D(write)",
                                            "Sample", "NOW-sort",
                                            "Connect")}),
        ("figure7_latency", {"n_nodes": 32, "scale": scale,
                             "latencies": latencies, **sweep_kwargs}),
        ("figure8_bulk", {"n_nodes": 32, "scale": scale,
                          "bandwidths": bandwidths, **sweep_kwargs}),
        ("figure9_faults", {"n_nodes": 32, "scale": scale,
                            "drop_rates": drop_rates, **sweep_kwargs}),
        ("table7_spike_decay", {"n_nodes": 32, "scale": scale,
                                "duration_us": 500.0,
                                "starts": (0.0, 500.0, 2000.0),
                                "cache": cache,
                                "names": pick("Radix", "EM3D(write)",
                                              "Sample", "NOW-sort")}),
        ("figure10_collectives", {"n_nodes": 32,
                                  "primitives": ("broadcast", "allreduce"),
                                  "parameter": "bulk_mb_s",
                                  "values": (38.0, 15.0, 5.5, 1.0),
                                  "size": 16384, "iterations": 2,
                                  "cache": cache}),
        ("table8_coll_tuner", {"n_nodes": 32,
                               "sizes": (32, 1024, 16384, 65536),
                               "iterations": 2, "cache": cache}),
        ("figure11_serving", {"n_nodes": 32, "scale": scale,
                              "cache": cache}),
    ]
    if args.profile:
        results = _run_profiled(requests)
    else:
        results = run_experiments_parallel(requests, jobs=args.jobs)
    (t1, sig, t2, t3, t4, fig4, fig5_16, fig5_32, t5, fig6, t6, fig7,
     fig8, fig9, t7, fig10, t8, fig11) = results

    out = []
    w = out.append

    w("# EXPERIMENTS — paper vs. this reproduction\n")
    w("Regenerated with `python scripts/generate_experiments.py "
      f"--scale {scale}`.")
    w("All measurements are from the discrete-event substrate at the "
      "reduced input scale\n(the benchmark default); absolute times are "
      "not comparable to the 1997 testbed, so\neach entry compares the "
      "*shape*: orderings, factors, linearity, crossovers.\n")

    # ---- Table 1 ---------------------------------------------------------
    w("## Table 1 — baseline LogGP parameters\n")
    w("| platform | paper (o, g, L, MB/s) | measured (o, g, L, MB/s) |")
    w("|---|---|---|")
    paper_t1 = {"berkeley-now": (2.9, 5.8, 5.0, 38),
                "intel-paragon": (1.8, 7.6, 6.5, 141),
                "meiko-cs2": (1.7, 13.6, 7.5, 47)}
    for row in t1.rows():
        name = row["Platform"]
        p = paper_t1[name]
        w(f"| {name} | {p[0]}, {p[1]}, {p[2]}, {p[3]} | "
          f"{row['o (us)']}, {row['g (us)']}, {row['L (us)']}, "
          f"{row['MB/s (1/G)']} |")
    w("\nVerdict: the microbenchmarks recover every machine's dialed "
      "parameters; g reads\nslightly low from finite bursts, as the "
      "paper also observed.\n")

    # ---- Figure 3 --------------------------------------------------------
    w("## Figure 3 — LogP signature (g dialed to 14 µs)\n")
    w("```\n" + sig.render() + "\n```")
    w(f"- paper: o_send ≈ 1.8 µs; measured: "
      f"{fmt(sig.send_overhead())} µs")
    w(f"- paper: steady-state g ≈ 12.8 µs (desired 14); measured: "
      f"{fmt(sig.steady_state(0.0))} µs")
    w(f"- paper: Δ=10 plateau at o_send+o_recv+Δ ≈ 15.8 µs; measured: "
      f"{fmt(sig.steady_state(10.0))} µs\n")

    # ---- Table 2 ---------------------------------------------------------
    w("## Table 2 — calibration of the dials\n")
    w("```\n" + t2.render() + "\n```")
    w("Shape checks (all reproduce the paper):")
    w("- each dial hits its target; the other parameters hold still;")
    w("- large o drives effective g toward 2·o (processor becomes the "
      "bottleneck);")
    w("- large L drives effective g toward RTT/window (fixed "
      "flow-control capacity —\n  the paper's 27.7 µs at L=105; ours: "
      f"{fmt([r for r in t2.rows_ if r.dialed == 'L'][-1].measured.gap)}"
      " µs).\n")

    # ---- Table 3 ---------------------------------------------------------
    w("## Table 3 — base runtimes, fixed input, 16 vs 32 nodes\n")
    w("| program | paper 16/32-node (s) | measured 16/32-node (ms) | "
      "measured speedup |")
    w("|---|---|---|---|")
    paper_t3 = {"Radix": (13.66, 7.76), "EM3D(write)": (88.59, 37.98),
                "EM3D(read)": (230.0, 114.0), "Sample": (24.65, 13.23),
                "Barnes": (77.89, 43.24), "P-Ray": (23.47, 17.91),
                "Murphi": (67.68, 35.33), "Connect": (2.29, 1.17),
                "NOW-sort": (127.2, 56.87), "Radb": (6.96, 3.73)}
    for name, by_nodes in t3.runtimes.items():
        p16, p32 = paper_t3[name]
        m16 = by_nodes[16] / 1000.0
        m32 = by_nodes[32] / 1000.0
        w(f"| {name} | {p16} / {p32} | {fmt(m16)} / {fmt(m32)} | "
          f"{fmt(m16 / m32)}x |")
    w("\nVerdict: all ten applications complete with validated outputs "
      "at both sizes; the\ndata-parallel apps speed up going 16→32 "
      "while Radix's histogram serialization\n(∝ radix × P) caps its "
      "speedup at reduced key counts — the Section 5.1 effect.\n")

    # ---- Figure 4 / Table 4 ----------------------------------------------
    w("## Table 4 — communication summary (32 nodes)\n")
    w("```\n" + t4.render() + "\n```")
    w("Paper-vs-measured orderings that hold: Radix/EM3D(write)/Sample "
      "are the most\nfrequent communicators and NOW-sort the least; "
      "EM3D(read)/P-Ray/Connect are\nread-dominated (paper: 97/96/67%); "
      "P-Ray/Barnes/NOW-sort/Radb carry the bulk\ntraffic (paper: "
      "48/23/50/35%).\n")

    w("## Figure 4 — communication balance (selected matrices)\n")
    for name, result in fig4.results.items():
        w("```\n" + result.render_balance() + "\n```")
    w("Reproduced features: Radix's dark off-diagonal ring (the "
      "pipelined cyclic-shift\nhistogram) over a balanced background; "
      "EM3D's near-diagonal swath; Sample's\nuneven columns; NOW-sort's "
      "solid balanced square.\n")

    # ---- Figures 5-8 + Tables 5-6 ------------------------------------------
    w("## Figure 5 — sensitivity to overhead\n")
    w("```\n" + fig5_32.render() + "\n```")
    w("| app | paper max slowdown (32n, o≈103) | measured 16n | "
      "measured 32n |")
    w("|---|---|---|---|")
    paper_f5 = {"Radix": "57x", "EM3D(write)": "27x",
                "EM3D(read)": "22x", "Sample": "21x", "Barnes": "N/A "
                "(livelock past o≈7)", "P-Ray": "6.4x", "Murphi": "3.1x",
                "Connect": "2.2x", "NOW-sort": "1.25x", "Radb": "1.7x"}
    for name in fig5_32.sweeps:
        w(f"| {name} | {paper_f5[name]} | "
          f"{fmt(fig5_16.max_slowdown(name))}x | "
          f"{fmt(fig5_32.max_slowdown(name))}x |")
    if "Radix" in fig5_32.sweeps:
        from repro.models import OverheadModel

        def radix_residual(figure):
            sweep = figure.sweeps["Radix"]
            base = sweep.baseline.result
            model = OverheadModel(
                base_runtime_us=base.runtime_us,
                max_messages_per_proc=base.stats.max_messages_per_node)
            top = sweep.points[-1]
            return top.runtime_us / model.predict_runtime(
                top.value - sweep.points[0].value)

        residual16 = radix_residual(fig5_16)
        residual32 = radix_residual(fig5_32)
        w(f"\nSerialization effect: the 2·m·Δo model under-predicts Radix "
          f"by {fmt((residual16 - 1) * 100, 0)}% on 16\nnodes and "
          f"{fmt((residual32 - 1) * 100, 0)}% on 32 nodes — the serial "
          "residual grows with P, the paper's\nSection 5.1 analysis.  (At "
          "the paper's 16M keys the effect also flips the raw\nslowdown "
          "ratio, 57x vs ~25x; at reduced key counts the distribution "
          "term shrinks\nfaster than at full scale, so only the residual "
          "direction reproduces.)  Response\nis linear for every app, as "
          "in the paper.\nDivergence: our Barnes completes "
          "under high overhead (lock retries are paced by\nfull round "
          "trips, so the retry storm stays bounded at our body counts); "
          "the\nfailed-lock-attempt counter and the livelock budget "
          "reproduce the paper's\ndiagnostic, but the emergent livelock "
          "itself needs the paper's 1M-body scale.\n")

    w("## Table 5 — overhead model (r + 2·m·Δo)\n")
    w("```\n" + t5.render() + "\n```")
    w("As in the paper: accurate for the frequently communicating, "
      "well-parallelised\napps (Sample, EM3D(write)); under-predicts "
      "Radix at high overhead (the serial\nhistogram phase the "
      "busiest-processor model cannot see).\n")

    w("## Figure 6 — sensitivity to gap\n")
    w("```\n" + fig6.render() + "\n```")
    w("| app | paper slowdown at g=105 | measured |")
    w("|---|---|---|")
    paper_f6 = {"Radix": "17.2x", "EM3D(write)": "13.6x",
                "EM3D(read)": "8.7x", "Sample": "10.6x",
                "Barnes": "4.8x", "P-Ray": "2.0x", "Murphi": "1.1x",
                "Connect": "1.6x", "NOW-sort": "1.0x", "Radb": "1.1x"}
    for name in fig6.sweeps:
        w(f"| {name} | {paper_f6[name]} | "
          f"{fmt(fig6.max_slowdown(name))}x |")
    w("\nFrequent communicators are hit hard; light communicators "
      "shrug — and the\nresponse is linear (bursty traffic), which is "
      "why the burst model fits.\n")

    w("## Table 6 — burst gap model (r + m·Δg)\n")
    w("```\n" + t6.render() + "\n```")
    w("Tracks the heavy communicators; over-predicts overall since not "
      "every message\nis sent inside a burst — both as in the paper.\n")

    w("## Figure 7 — sensitivity to latency\n")
    w("```\n" + fig7.render() + "\n```")
    w("| app | paper slowdown at L=105 | measured |")
    w("|---|---|---|")
    paper_f7 = {"EM3D(read)": "8.7x", "Barnes": "4.8x", "P-Ray": "3.4x",
                "EM3D(write)": "2.2x", "Radix": "1.8x", "Sample": "1.6x",
                "Murphi": "1.1x", "Connect": "3.9x", "NOW-sort": "1.0x",
                "Radb": "1.1x"}
    for name in fig7.sweeps:
        w(f"| {name} | {paper_f7[name]} | "
          f"{fmt(fig7.max_slowdown(name))}x |")
    w("\nThe ordering flips from message frequency to *read* frequency: "
      "EM3D(read) tops\nthe chart, the write-based sorts barely react. "
      "Latency matters least of the four\nparameters, as the paper "
      "concludes.\n")

    w("## Figure 8 — sensitivity to bulk bandwidth\n")
    w("```\n" + fig8.render() + "\n```")
    w("| app | measured slowdown at 1 MB/s |")
    w("|---|---|")
    for name in fig8.sweeps:
        w(f"| {name} | {fmt(fig8.max_slowdown(name))}x |")
    if "NOW-sort" in fig8.sweeps:
        nowsort = dict(fig8.sweeps["NOW-sort"].series())
        w(f"\nPaper headlines reproduced: nothing reacts until ~15 MB/s; "
          f"no slowdown beyond\n~3x even at 1 MB/s; NOW-sort is "
          f"disk-limited (at 5.5 MB/s it is {fmt(nowsort[5.5])}x, only "
          f"at\n1 MB/s does it reach {fmt(nowsort[1.0])}x).\n")

    # ---- Predicted sweeps (simcost) -----------------------------------------
    if args.predict:
        predicted, bench = predicted_sections(
            scale, selected,
            {"overhead": fig5_32, "gap": fig6, "latency": fig7,
             "bulk_mb_s": fig8})
        out.extend(predicted)
        bench_path = pathlib.Path(args.out).parent / "BENCH_simcost.json"
        bench_path.write_text(
            json.dumps(bench, indent=2, sort_keys=True) + "\n")

    # ---- Figure 9 / Table 7 (beyond the paper) ------------------------------
    w("## Figure 9 — sensitivity to packet loss (beyond the paper)\n")
    w("```\n" + fig9.render() + "\n```")
    w("| app | slowdown at 2% drop | retransmits |")
    w("|---|---|---|")
    fig9_retx = {}
    for name, sweep in fig9.sweeps.items():
        top = sweep.points[-1]
        retx = (top.result.stats.total_retransmissions
                if top.completed else None)
        fig9_retx[name] = retx
        w(f"| {name} | {fmt(fig9.max_slowdown(name))}x | "
          f"{retx if retx is not None else 'N/A'} |")
    w("\nSeeded drops exercise the AM reliability protocol "
      "(sequence numbers, sender-held\nretransmission with exponential "
      "backoff, receiver duplicate suppression).  Every\napplication "
      "completes with validated output under loss; cost scales with "
      "message\nfrequency, like the overhead/gap sweeps, because every "
      "lost packet costs at\nleast one retransmission timeout on the "
      "critical path.\n")

    w("## Table 7 — delay-spike propagation (beyond the paper)\n")
    w("```\n" + t7.render() + "\n```")
    w("A one-off 500 µs delay spike holds every packet arriving at "
      "node 0 during its\nwindow, so its cost depends on what the "
      "window intersects: EM3D(write)'s steady\npacket stream "
      "propagates most of the spike straight into the runtime "
      "(propagated\n≈ 0.8-0.9 — the barrier at the end of each step "
      "cannot proceed until the frozen\nnode catches up), while apps "
      "sitting in a local-compute phase at the spike's\nstart "
      "(Radix's histogramming, Sample's local sort) absorb it "
      "entirely: no\npackets target the frozen node, so nothing is "
      "delayed.  Spikes landing in the\nuntimed setup phase shift "
      "alignment by a few tens of µs either way.  This is\nthe Afzal-"
      "style decay experiment: delay propagates through "
      "communication\ndependences, not wall-clock.\n")

    # ---- Figure 10 / Table 8 (beyond the paper) -----------------------------
    w("## Figure 10 — collective algorithm sensitivity "
      "(beyond the paper)\n")
    w("```\n" + fig10.render() + "\n```")
    w("Each series is one (primitive, algorithm) pair from "
      "`repro.coll`, swept across\nbulk bandwidth with 16 KB payloads. "
      "Where series of the same primitive cross is\nwhere a tuned "
      "machine should switch schedules: as bandwidth collapses, "
      "schedules\nthat move fewer total bytes (ring allreduce, "
      "pipelined-chain broadcast) pull\nahead of the latency-optimised "
      "binomial trees.\n")

    w("## Table 8 — LogGP-model-driven algorithm selection "
      "(beyond the paper)\n")
    w("```\n" + t8.render() + "\n```")
    agree = [row for row in t8.rows() if row["within_10pct"] == "ok"]
    w(f"\nThe closed-form LogGP cost model picks the measured-cheapest "
      f"algorithm (or one\nwithin 10% of it) for {len(agree)} of "
      f"{len(t8.rows())} (primitive, size) cells — the agreement "
      f"rate\n`benchmarks/test_coll_tuner.py` asserts stays at or "
      f"above 80%.  The `measured`\npolicy closes the remaining gap by "
      f"calibrating on the machine itself (decision\ntables are "
      f"cached, deterministic, and bit-stable across reruns).\n")

    # ---- Figure 11 (beyond the paper) ---------------------------------------
    w("## Figure 11 — open-system serving tail latency "
      "(beyond the paper)\n")
    w("```\n" + fig11.render() + "\n```")
    from repro.serve.sweep import serving_rows
    o_rows = serving_rows(fig11.dial_sweeps["overhead"])
    knees = fig11.knees()
    knee_cells = ", ".join(
        f"o={o:g} µs → " + (f"{int(k):,} req/s" if k is not None
                            else "none")
        for o, k in sorted(knees.items()))
    w(f"\nAn open-system KV tier (1M simulated users, Poisson "
      f"arrivals, {fmt(fig11.slo_us, 0)} µs p999 SLO) replaces the "
      "closed SPMD suite: requests keep arriving whether or not "
      "servers keep up, so the dials move *tail latency and goodput* "
      "instead of runtime.  Send overhead dominates — p999 goes "
      f"{o_rows[0]['p999_us']} → {o_rows[-1]['p999_us']} µs from "
      f"o={o_rows[0]['value']:g} to o={o_rows[-1]['value']:g} µs while "
      "goodput collapses, because every request pays 2·o per RPC hop "
      "at *every* queue visit, and queueing amplifies what a closed "
      "bulk-synchronous app would absorb into slack.  Latency only "
      "shifts the tail by roughly the added round trips, and seeded "
      "drops surface as retransmission-delayed stragglers in the "
      "p999.  The SLO knee — the largest offered load that still "
      f"meets p999 ≤ {fmt(fig11.slo_us, 0)} µs — collapses with "
      f"overhead: {knee_cells}.\n")

    # ---- bulk calibration footnote ------------------------------------------
    bulk = calibrate_bulk_bandwidth()
    w("## Appendix — bulk bandwidth calibration\n")
    w("Bandwidth saturates with message size at "
      f"{fmt(bulk.saturated_mb_s, 1)} MB/s (machine: 38), as the "
      "paper's\ncalibration saturates at 2 KB messages.\n")

    elapsed = time.time() - started
    w(f"---\n*Generated in {elapsed:.0f} s of wall-clock simulation.*")

    with open(args.out, "w") as fh:
        fh.write("\n".join(out) + "\n")
    message = f"wrote {args.out} in {elapsed:.0f}s"
    if cache is not None:
        message += f" [{cache.describe()}]"
    print(message)
    return 0


if __name__ == "__main__":
    sys.exit(main())
