#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every artifact.

Runs the complete evaluation at the benchmark scale and writes a
markdown report pairing each of the paper's headline numbers with this
reproduction's measurements.

Usage:  python scripts/generate_experiments.py [--scale 0.5] [--out EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.calibrate import calibrate_bulk_bandwidth
from repro.harness import experiments


def fmt(value, digits=2):
    if value is None:
        return "N/A"
    return f"{value:.{digits}f}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    scale = args.scale
    started = time.time()
    out = []
    w = out.append

    w("# EXPERIMENTS — paper vs. this reproduction\n")
    w("Regenerated with `python scripts/generate_experiments.py "
      f"--scale {scale}`.")
    w("All measurements are from the discrete-event substrate at the "
      "reduced input scale\n(the benchmark default); absolute times are "
      "not comparable to the 1997 testbed, so\neach entry compares the "
      "*shape*: orderings, factors, linearity, crossovers.\n")

    # ---- Table 1 ---------------------------------------------------------
    t1 = experiments.table1_baseline_params()
    w("## Table 1 — baseline LogGP parameters\n")
    w("| platform | paper (o, g, L, MB/s) | measured (o, g, L, MB/s) |")
    w("|---|---|---|")
    paper_t1 = {"berkeley-now": (2.9, 5.8, 5.0, 38),
                "intel-paragon": (1.8, 7.6, 6.5, 141),
                "meiko-cs2": (1.7, 13.6, 7.5, 47)}
    for row in t1.rows():
        name = row["Platform"]
        p = paper_t1[name]
        w(f"| {name} | {p[0]}, {p[1]}, {p[2]}, {p[3]} | "
          f"{row['o (us)']}, {row['g (us)']}, {row['L (us)']}, "
          f"{row['MB/s (1/G)']} |")
    w("\nVerdict: the microbenchmarks recover every machine's dialed "
      "parameters; g reads\nslightly low from finite bursts, as the "
      "paper also observed.\n")

    # ---- Figure 3 --------------------------------------------------------
    sig = experiments.figure3_signature(14.0)
    w("## Figure 3 — LogP signature (g dialed to 14 µs)\n")
    w("```\n" + sig.render() + "\n```")
    w(f"- paper: o_send ≈ 1.8 µs; measured: "
      f"{fmt(sig.send_overhead())} µs")
    w(f"- paper: steady-state g ≈ 12.8 µs (desired 14); measured: "
      f"{fmt(sig.steady_state(0.0))} µs")
    w(f"- paper: Δ=10 plateau at o_send+o_recv+Δ ≈ 15.8 µs; measured: "
      f"{fmt(sig.steady_state(10.0))} µs\n")

    # ---- Table 2 ---------------------------------------------------------
    t2 = experiments.table2_calibration(
        desired_o=(2.9, 12.9, 52.9, 102.9),
        desired_g=(5.8, 15.0, 55.0, 105.0),
        desired_L=(5.0, 15.0, 55.0, 105.0))
    w("## Table 2 — calibration of the dials\n")
    w("```\n" + t2.render() + "\n```")
    w("Shape checks (all reproduce the paper):")
    w("- each dial hits its target; the other parameters hold still;")
    w("- large o drives effective g toward 2·o (processor becomes the "
      "bottleneck);")
    w("- large L drives effective g toward RTT/window (fixed "
      "flow-control capacity —\n  the paper's 27.7 µs at L=105; ours: "
      f"{fmt([r for r in t2.rows_ if r.dialed == 'L'][-1].measured.gap)}"
      " µs).\n")

    # ---- Table 3 ---------------------------------------------------------
    t3 = experiments.table3_baseline_runtimes(node_counts=(16, 32),
                                              scale=scale)
    w("## Table 3 — base runtimes, fixed input, 16 vs 32 nodes\n")
    w("| program | paper 16/32-node (s) | measured 16/32-node (ms) | "
      "measured speedup |")
    w("|---|---|---|---|")
    paper_t3 = {"Radix": (13.66, 7.76), "EM3D(write)": (88.59, 37.98),
                "EM3D(read)": (230.0, 114.0), "Sample": (24.65, 13.23),
                "Barnes": (77.89, 43.24), "P-Ray": (23.47, 17.91),
                "Murphi": (67.68, 35.33), "Connect": (2.29, 1.17),
                "NOW-sort": (127.2, 56.87), "Radb": (6.96, 3.73)}
    for name, by_nodes in t3.runtimes.items():
        p16, p32 = paper_t3[name]
        m16 = by_nodes[16] / 1000.0
        m32 = by_nodes[32] / 1000.0
        w(f"| {name} | {p16} / {p32} | {fmt(m16)} / {fmt(m32)} | "
          f"{fmt(m16 / m32)}x |")
    w("\nVerdict: all ten applications complete with validated outputs "
      "at both sizes; the\ndata-parallel apps speed up going 16→32 "
      "while Radix's histogram serialization\n(∝ radix × P) caps its "
      "speedup at reduced key counts — the Section 5.1 effect.\n")

    # ---- Figure 4 / Table 4 ----------------------------------------------
    t4 = experiments.table4_comm_summary(n_nodes=32, scale=scale)
    w("## Table 4 — communication summary (32 nodes)\n")
    w("```\n" + t4.render() + "\n```")
    w("Paper-vs-measured orderings that hold: Radix/EM3D(write)/Sample "
      "are the most\nfrequent communicators and NOW-sort the least; "
      "EM3D(read)/P-Ray/Connect are\nread-dominated (paper: 97/96/67%); "
      "P-Ray/Barnes/NOW-sort/Radb carry the bulk\ntraffic (paper: "
      "48/23/50/35%).\n")

    fig4 = experiments.figure4_balance(
        n_nodes=32, scale=scale,
        names=["Radix", "EM3D(write)", "Sample", "NOW-sort"])
    w("## Figure 4 — communication balance (selected matrices)\n")
    for name, result in fig4.results.items():
        w("```\n" + result.render_balance() + "\n```")
    w("Reproduced features: Radix's dark off-diagonal ring (the "
      "pipelined cyclic-shift\nhistogram) over a balanced background; "
      "EM3D's near-diagonal swath; Sample's\nuneven columns; NOW-sort's "
      "solid balanced square.\n")

    # ---- Figures 5-8 + Tables 5-6 ------------------------------------------
    overheads = (2.9, 12.9, 52.9, 102.9)
    fig5_16 = experiments.figure5_overhead(n_nodes=16, scale=scale,
                                           overheads=overheads)
    fig5_32 = experiments.figure5_overhead(n_nodes=32, scale=scale,
                                           overheads=overheads)
    w("## Figure 5 — sensitivity to overhead\n")
    w("```\n" + fig5_32.render() + "\n```")
    w("| app | paper max slowdown (32n, o≈103) | measured 16n | "
      "measured 32n |")
    w("|---|---|---|---|")
    paper_f5 = {"Radix": "57x", "EM3D(write)": "27x",
                "EM3D(read)": "22x", "Sample": "21x", "Barnes": "N/A "
                "(livelock past o≈7)", "P-Ray": "6.4x", "Murphi": "3.1x",
                "Connect": "2.2x", "NOW-sort": "1.25x", "Radb": "1.7x"}
    for name in fig5_32.sweeps:
        w(f"| {name} | {paper_f5[name]} | "
          f"{fmt(fig5_16.max_slowdown(name))}x | "
          f"{fmt(fig5_32.max_slowdown(name))}x |")
    from repro.models import OverheadModel

    def radix_residual(figure):
        sweep = figure.sweeps["Radix"]
        base = sweep.baseline.result
        model = OverheadModel(
            base_runtime_us=base.runtime_us,
            max_messages_per_proc=base.stats.max_messages_per_node)
        top = sweep.points[-1]
        return top.runtime_us / model.predict_runtime(
            top.value - sweep.points[0].value)

    residual16 = radix_residual(fig5_16)
    residual32 = radix_residual(fig5_32)
    w(f"\nSerialization effect: the 2·m·Δo model under-predicts Radix "
      f"by {fmt((residual16 - 1) * 100, 0)}% on 16\nnodes and "
      f"{fmt((residual32 - 1) * 100, 0)}% on 32 nodes — the serial "
      "residual grows with P, the paper's\nSection 5.1 analysis.  (At "
      "the paper's 16M keys the effect also flips the raw\nslowdown "
      "ratio, 57x vs ~25x; at reduced key counts the distribution "
      "term shrinks\nfaster than at full scale, so only the residual "
      "direction reproduces.)  Response\nis linear for every app, as "
      "in the paper.\nDivergence: our Barnes completes "
      "under high overhead (lock retries are paced by\nfull round "
      "trips, so the retry storm stays bounded at our body counts); "
      "the\nfailed-lock-attempt counter and the livelock budget "
      "reproduce the paper's\ndiagnostic, but the emergent livelock "
      "itself needs the paper's 1M-body scale.\n")

    t5 = experiments.table5_overhead_model(
        n_nodes=32, scale=scale, overheads=overheads,
        names=["Radix", "EM3D(write)", "Sample", "NOW-sort", "Radb"])
    w("## Table 5 — overhead model (r + 2·m·Δo)\n")
    w("```\n" + t5.render() + "\n```")
    w("As in the paper: accurate for the frequently communicating, "
      "well-parallelised\napps (Sample, EM3D(write)); under-predicts "
      "Radix at high overhead (the serial\nhistogram phase the "
      "busiest-processor model cannot see).\n")

    gaps = (5.8, 15.0, 55.0, 105.0)
    fig6 = experiments.figure6_gap(n_nodes=32, scale=scale, gaps=gaps)
    w("## Figure 6 — sensitivity to gap\n")
    w("```\n" + fig6.render() + "\n```")
    w("| app | paper slowdown at g=105 | measured |")
    w("|---|---|---|")
    paper_f6 = {"Radix": "17.2x", "EM3D(write)": "13.6x",
                "EM3D(read)": "8.7x", "Sample": "10.6x",
                "Barnes": "4.8x", "P-Ray": "2.0x", "Murphi": "1.1x",
                "Connect": "1.6x", "NOW-sort": "1.0x", "Radb": "1.1x"}
    for name in fig6.sweeps:
        w(f"| {name} | {paper_f6[name]} | "
          f"{fmt(fig6.max_slowdown(name))}x |")
    w("\nFrequent communicators are hit hard; light communicators "
      "shrug — and the\nresponse is linear (bursty traffic), which is "
      "why the burst model fits.\n")

    t6 = experiments.table6_gap_model(
        n_nodes=32, scale=scale, gaps=gaps,
        names=["Radix", "EM3D(write)", "Sample", "NOW-sort", "Connect"])
    w("## Table 6 — burst gap model (r + m·Δg)\n")
    w("```\n" + t6.render() + "\n```")
    w("Tracks the heavy communicators; over-predicts overall since not "
      "every message\nis sent inside a burst — both as in the paper.\n")

    latencies = (5.0, 15.0, 55.0, 105.0)
    fig7 = experiments.figure7_latency(n_nodes=32, scale=scale,
                                       latencies=latencies)
    w("## Figure 7 — sensitivity to latency\n")
    w("```\n" + fig7.render() + "\n```")
    w("| app | paper slowdown at L=105 | measured |")
    w("|---|---|---|")
    paper_f7 = {"EM3D(read)": "8.7x", "Barnes": "4.8x", "P-Ray": "3.4x",
                "EM3D(write)": "2.2x", "Radix": "1.8x", "Sample": "1.6x",
                "Murphi": "1.1x", "Connect": "3.9x", "NOW-sort": "1.0x",
                "Radb": "1.1x"}
    for name in fig7.sweeps:
        w(f"| {name} | {paper_f7[name]} | "
          f"{fmt(fig7.max_slowdown(name))}x |")
    w("\nThe ordering flips from message frequency to *read* frequency: "
      "EM3D(read) tops\nthe chart, the write-based sorts barely react. "
      "Latency matters least of the four\nparameters, as the paper "
      "concludes.\n")

    bandwidths = (38.0, 15.0, 10.0, 5.5, 1.0)
    fig8 = experiments.figure8_bulk(n_nodes=32, scale=scale,
                                    bandwidths=bandwidths)
    w("## Figure 8 — sensitivity to bulk bandwidth\n")
    w("```\n" + fig8.render() + "\n```")
    w("| app | measured slowdown at 1 MB/s |")
    w("|---|---|")
    for name in fig8.sweeps:
        w(f"| {name} | {fmt(fig8.max_slowdown(name))}x |")
    nowsort = dict(fig8.sweeps["NOW-sort"].series())
    w(f"\nPaper headlines reproduced: nothing reacts until ~15 MB/s; "
      f"no slowdown beyond\n~3x even at 1 MB/s; NOW-sort is disk-limited "
      f"(at 5.5 MB/s it is {fmt(nowsort[5.5])}x, only at\n1 MB/s does "
      f"it reach {fmt(nowsort[1.0])}x).\n")

    # ---- bulk calibration footnote ------------------------------------------
    bulk = calibrate_bulk_bandwidth()
    w("## Appendix — bulk bandwidth calibration\n")
    w("Bandwidth saturates with message size at "
      f"{fmt(bulk.saturated_mb_s, 1)} MB/s (machine: 38), as the "
      "paper's\ncalibration saturates at 2 KB messages.\n")

    elapsed = time.time() - started
    w(f"---\n*Generated in {elapsed:.0f} s of wall-clock simulation.*")

    with open(args.out, "w") as fh:
        fh.write("\n".join(out) + "\n")
    print(f"wrote {args.out} in {elapsed:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
