"""Harness integration of the serving workload (Figure 11 plumbing).

The serving tier must be a first-class citizen of every harness layer
built for the closed suite: sweeps cache by content, campaigns resume
from the store, ``sweep_from_store`` rebuilds byte-identical series,
the store garbage-collects finished campaigns, and the ``figure11``
artifact renders from all of it.  Each test here runs a deliberately
tiny scenario — the contracts, not the numbers, are under test.
"""

import json

import pytest

from repro.cluster.machine import Cluster
from repro.harness import (CampaignSpec, ResultStore, RunCache,
                           run_campaign, sweep_from_store)
from repro.harness.experiments import figure11_serving
from repro.serve import KVServe, serving_rows, serving_sweep
from repro.serve.sweep import SERVING_DIALS


def tiny_kv(**overrides):
    knobs = dict(offered_rps=200_000.0, n_users=5_000,
                 duration_us=8_000.0, max_requests=120,
                 service_us=4.0, key_space=256)
    knobs.update(overrides)
    return KVServe(**knobs)


WORKLOAD = {"app": "kvserve", "offered_rps": 200_000.0,
            "n_users": 5_000, "duration_us": 8_000.0,
            "max_requests": 120, "service_us": 4.0, "key_space": 256}


# ---------------------------------------------------------------------------
# 1. serving_sweep: axes, caching, bit-identity.
# ---------------------------------------------------------------------------

def test_serving_sweep_rejects_unknown_axes():
    with pytest.raises(ValueError, match="parameter"):
        serving_sweep(tiny_kv(), 4, "clock_speed", (1.0,))
    assert "offered_rps" in SERVING_DIALS
    assert "drop_rate" in SERVING_DIALS


def test_serving_sweep_is_cache_served_and_bit_identical(tmp_path):
    """Acceptance probe: rerunning the sweep must be answered from the
    cache and produce byte-identical rows."""
    values = (2.9, 25.0)
    cache = RunCache(tmp_path / "cache")
    first = serving_sweep(tiny_kv(), 4, "overhead", values, cache=cache)
    assert cache.misses == len(values) and cache.hits == 0
    rows_first = json.dumps(serving_rows(first), sort_keys=True,
                            default=str)
    cache2 = RunCache(tmp_path / "cache")
    second = serving_sweep(tiny_kv(), 4, "overhead", values, cache=cache2)
    assert cache2.hits == len(values) and cache2.misses == 0
    assert json.dumps(serving_rows(second), sort_keys=True,
                      default=str) == rows_first


def test_offered_load_axis_rebuilds_the_app_per_point(tmp_path):
    """The offered_rps axis sweeps the client tier, not the machine —
    and the per-point apps must hash to distinct cache keys."""
    cache = RunCache(tmp_path / "cache")
    sweep = serving_sweep(tiny_kv(), 4, "offered_rps",
                          (100_000.0, 1_500_000.0), cache=cache)
    rows = serving_rows(sweep)
    assert cache.misses == 2  # distinct keys, no accidental sharing
    light, heavy = rows
    assert light["verdict"] == "ok"
    assert heavy["p99_us"] > light["p99_us"]


def test_drop_rate_axis_inflates_the_tail():
    clean, lossy = serving_rows(serving_sweep(
        tiny_kv(), 4, "drop_rate", (0.0, 0.05)))
    assert clean["verdict"] == "ok"
    assert lossy["p999_us"] > clean["p999_us"]


# ---------------------------------------------------------------------------
# 2. Figure 11 artifact.
# ---------------------------------------------------------------------------

def test_figure11_smoke_renders_all_axes_and_knees(tmp_path):
    cache = RunCache(tmp_path / "cache")
    figure = figure11_serving(
        n_nodes=4, scale=0.1, overheads=(2.9, 25.0), latencies=(5.7,),
        drop_rates=(0.0,), offered=(100_000.0,),
        knee_overheads=(2.9,), cache=cache,
        n_users=5_000, duration_us=8_000.0)
    text = figure.render()
    for axis in ("overhead", "latency", "drop_rate", "offered_rps"):
        assert f"serving tail vs {axis}" in text
        assert axis in figure.dial_sweeps
    knees = figure.knees()
    assert set(knees) == {2.9}
    assert knees[2.9] in (None, 100_000.0)
    assert any(row["axis"] == "offered_rps@o=2.9"
               for row in figure.rows())


# ---------------------------------------------------------------------------
# 3. Campaigns over a serving workload.
# ---------------------------------------------------------------------------

def serving_spec(name="serve-test"):
    return CampaignSpec(
        name=name, apps=("kvserve",), node_counts=(4,),
        dials=(("overhead", (2.9, 25.0)),
               ("offered_rps", (100_000.0, 400_000.0))),
        workload=WORKLOAD)


def test_workload_spec_round_trips_through_json():
    spec = serving_spec()
    restored = CampaignSpec.from_json(spec.to_json())
    assert restored == spec
    assert dict(restored.workload) == WORKLOAD


def test_workload_spec_validation():
    with pytest.raises(ValueError, match="app"):
        CampaignSpec(name="x", apps=("kvserve",), node_counts=(4,),
                     dials=(("overhead", (2.9,)),),
                     workload={"offered_rps": 1.0})
    with pytest.raises(ValueError, match="apps"):
        CampaignSpec(name="x", apps=("Radix",), node_counts=(4,),
                     dials=(("overhead", (2.9,)),),
                     workload=WORKLOAD)
    with pytest.raises(ValueError, match="dial"):
        CampaignSpec(name="x", apps=("Radix",), node_counts=(4,),
                     dials=(("offered_rps", (1.0,)),))


def test_serving_campaign_runs_resumes_and_rebuilds(tmp_path):
    spec = serving_spec()
    store_path = tmp_path / "results.sqlite"
    with ResultStore(store_path) as store:
        report = run_campaign(spec, store, jobs=1)
        assert report.total_points == 4
        assert report.computed_points + report.cache_hits == 4
        assert report.na_points == 0
        # Store-side reconstruction carries the serving metrics.
        sweep = sweep_from_store(store, spec, "kvserve", 4, "offered_rps")
        rows = serving_rows(sweep)
        assert [row["value"] for row in rows] == [100_000.0, 400_000.0]
        assert all(row["verdict"] == "ok" for row in rows)
        first = json.dumps(rows, sort_keys=True, default=str)
    with ResultStore(store_path) as store:
        # Resume: everything already stored, nothing re-executed.
        report = run_campaign(spec, store, jobs=1)
        assert report.computed_points == 0 and report.resumed_points == 4
        sweep = sweep_from_store(store, spec, "kvserve", 4, "offered_rps")
        assert json.dumps(serving_rows(sweep), sort_keys=True,
                          default=str) == first


# ---------------------------------------------------------------------------
# 4. Store garbage collection (+ its CLI).
# ---------------------------------------------------------------------------

def seed_store(store):
    """Two one-point campaigns sharing a store."""
    result = Cluster(n_nodes=2, seed=0).run(tiny_kv(max_requests=40))
    for campaign in ("keep", "drop"):
        store.put(campaign, f"{campaign}-key", app="kvserve", n_nodes=2,
                  parameter="overhead", value=2.9, seed=0,
                  spec={"probe": campaign}, result=result)


def test_prune_removes_exactly_one_campaign(tmp_path):
    with ResultStore(tmp_path / "gc.sqlite") as store:
        seed_store(store)
        assert store.count() == 2
        assert store.prune("drop") == 1
        assert store.prune("drop") == 0  # idempotent
        assert store.campaigns() == ["keep"]
        assert store.count("keep") == 1
        store.vacuum()
        assert store.get("keep", "keep-key") is not None


def test_store_gc_cli(tmp_path, capsys):
    from repro.harness.__main__ import main
    path = tmp_path / "gc.sqlite"
    with ResultStore(path) as store:
        seed_store(store)
    assert main(["--store-gc", "--store", str(path),
                 "--prune", "drop"]) == 0
    out = capsys.readouterr().out
    assert "pruned 1 point(s)" in out
    assert "vacuumed" in out
    with ResultStore(path) as store:
        assert store.campaigns() == ["keep"]


def test_store_gc_cli_requires_a_store():
    from repro.harness.__main__ import main
    with pytest.raises(SystemExit):
        main(["--store-gc"])
